"""Input encodings for the spiking domain.

The paper's ZYNQ PS performs "frame data conversion for non-spiking
inputs" (§IV): real-valued images are presented to the first layer at
every timestep (direct/constant-current encoding), which is the standard
choice for low-latency ANN-to-SNN conversion (Bu et al. 2023).  A rate
encoder is also provided for event-driven input experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.snn.spikes import SpikeStream


def direct_encode(x: np.ndarray, timesteps: int) -> np.ndarray:
    """Repeat the analog frame at every timestep.

    Returns an array of shape ``(T,) + x.shape``.  The first convolution
    then plays the role of the spike generator: its IF neurons integrate
    the constant input current and emit the spikes consumed by deeper
    layers — exactly the accelerator's frame-input mode.
    """
    if timesteps < 1:
        raise ValueError("timesteps must be >= 1")
    return np.broadcast_to(x, (timesteps,) + x.shape).copy()


def rate_encode(
    x: np.ndarray,
    timesteps: int,
    rng: Optional[np.random.Generator] = None,
    max_rate: float = 1.0,
) -> np.ndarray:
    """Bernoulli rate coding of non-negative intensities into {0,1} spikes.

    Intensities are min-max normalised to [0, max_rate] and each timestep
    draws an independent Bernoulli spike.  Shape: ``(T,) + x.shape``,
    dtype uint8.  This is the encoding used for the event-driven input
    path of the accelerator.
    """
    if timesteps < 1:
        raise ValueError("timesteps must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(0)
    lo, hi = float(x.min()), float(x.max())
    span = hi - lo
    p = np.zeros_like(x, dtype=np.float32) if span == 0 else (x - lo) / span * max_rate
    draws = rng.random((timesteps,) + x.shape)
    return (draws < p).astype(np.uint8)


def direct_encode_stream(x: np.ndarray, timesteps: int) -> SpikeStream:
    """:func:`direct_encode` as a COO :class:`SpikeStream`.

    The analog frame's nonzero coordinates are extracted once and
    repeated per timestep with their float amplitudes as per-event
    values, so ``stream.to_dense()`` reproduces ``direct_encode(x, T)``
    bit-for-bit without ever materialising the ``(T,) + x.shape``
    broadcast here.
    """
    if timesteps < 1:
        raise ValueError("timesteps must be >= 1")
    x = np.asarray(x)
    where = np.nonzero(x)
    coords = np.stack(where, axis=1).astype(np.int64)
    events = coords.shape[0]
    values = x[where]
    return SpikeStream(
        coords=np.tile(coords, (timesteps, 1)),
        timestep=np.repeat(np.arange(timesteps, dtype=np.int64), events),
        shape=x.shape,
        timesteps=timesteps,
        values=np.tile(values, timesteps),
    )


def rate_encode_stream(
    x: np.ndarray,
    timesteps: int,
    rng: Optional[np.random.Generator] = None,
    max_rate: float = 1.0,
) -> SpikeStream:
    """:func:`rate_encode` emitted directly as a COO :class:`SpikeStream`.

    Draws the same Bernoulli spikes (identical ``rng`` consumption, so
    ``stream.to_dense()`` equals ``rate_encode(x, T, rng)``) but hands
    back coordinates instead of a dense ``(T,) + x.shape`` plane — the
    event-driven input format the accelerator ingests natively.
    """
    frames = rate_encode(x, timesteps, rng=rng, max_rate=max_rate)
    where = np.nonzero(frames)
    return SpikeStream(
        coords=np.stack(where[1:], axis=1).astype(np.int64),
        timestep=where[0].astype(np.int64),
        shape=frames.shape[1:],
        timesteps=timesteps,
    )
