"""Input encodings for the spiking domain.

The paper's ZYNQ PS performs "frame data conversion for non-spiking
inputs" (§IV): real-valued images are presented to the first layer at
every timestep (direct/constant-current encoding), which is the standard
choice for low-latency ANN-to-SNN conversion (Bu et al. 2023).  A rate
encoder is also provided for event-driven input experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def direct_encode(x: np.ndarray, timesteps: int) -> np.ndarray:
    """Repeat the analog frame at every timestep.

    Returns an array of shape ``(T,) + x.shape``.  The first convolution
    then plays the role of the spike generator: its IF neurons integrate
    the constant input current and emit the spikes consumed by deeper
    layers — exactly the accelerator's frame-input mode.
    """
    if timesteps < 1:
        raise ValueError("timesteps must be >= 1")
    return np.broadcast_to(x, (timesteps,) + x.shape).copy()


def rate_encode(
    x: np.ndarray,
    timesteps: int,
    rng: Optional[np.random.Generator] = None,
    max_rate: float = 1.0,
) -> np.ndarray:
    """Bernoulli rate coding of non-negative intensities into {0,1} spikes.

    Intensities are min-max normalised to [0, max_rate] and each timestep
    draws an independent Bernoulli spike.  Shape: ``(T,) + x.shape``,
    dtype uint8.  This is the encoding used for the event-driven input
    path of the accelerator.
    """
    if timesteps < 1:
        raise ValueError("timesteps must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(0)
    lo, hi = float(x.min()), float(x.max())
    span = hi - lo
    p = np.zeros_like(x, dtype=np.float32) if span == 0 else (x - lo) / span * max_rate
    draws = rng.random((timesteps,) + x.shape)
    return (draws < p).astype(np.uint8)
