"""Synthetic event-driven (DVS-style) input streams.

The SIA accepts event-driven data streams directly (paper §IV: the PS
"can transfer event-driven data streams directly to the SIA"; the
motivating prior work [23], [24] is evaluated on event-driven MNIST).
With no DVS recordings available offline, this module synthesises
moving-pattern event streams with the defining statistics of DVS data:
per-pixel binary events, polarity channels, temporal sparsity, and
motion-induced spatio-temporal correlation.

An :class:`EventStream` has shape (T, 2, H, W) uint8 — ON and OFF
polarity planes per timestep — and converts to the accelerator's input
format (binary spike planes per timestep) trivially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.snn.spikes import SpikeStream

NUM_GESTURES = 4  # right, left, down, diagonal


@dataclass(frozen=True)
class EventStream:
    """One event recording: (T, 2, H, W) polarity spike planes."""

    events: np.ndarray
    label: int

    @property
    def timesteps(self) -> int:
        return self.events.shape[0]

    @property
    def event_rate(self) -> float:
        """Mean events per pixel per timestep (both polarities)."""
        return float(self.events.mean())

    def as_spike_frames(self) -> np.ndarray:
        """(T, 2, H, W) float32 binary frames for the spiking input path."""
        return self.events.astype(np.float32)

    def to_spike_stream(self) -> SpikeStream:
        """This recording as a batch-1 COO :class:`SpikeStream`.

        Coordinates are extracted straight from the event planes — no
        float densification — so the stream is the exact event-driven
        payload the PS would transfer to the SIA (§IV).
        """
        t, c, h, w = self.events.shape
        where = np.nonzero(self.events)
        coords = np.stack(
            [np.zeros_like(where[0]), where[1], where[2], where[3]], axis=1
        )
        return SpikeStream(
            coords=coords,
            timestep=where[0],
            shape=(1, c, h, w),
            timesteps=t,
        )


def _motion_for_label(label: int) -> Tuple[int, int]:
    return [(0, 1), (0, -1), (1, 0), (1, 1)][label % NUM_GESTURES]


@dataclass
class SyntheticDVS:
    """Deterministic moving-bar event dataset (4 motion classes).

    Each sample is a bright bar drifting in a class-specific direction
    over a noisy background; events fire where the intensity changes
    between consecutive frames (ON for increases, OFF for decreases),
    exactly how a DVS sensor quantises temporal contrast.
    """

    num_train: int = 200
    num_test: int = 50
    height: int = 32
    width: int = 32
    timesteps: int = 16
    noise_rate: float = 0.002
    seed: int = 0
    num_classes: int = NUM_GESTURES
    train: list = field(init=False, repr=False)
    test: list = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.timesteps < 2:
            raise ValueError("need at least 2 timesteps to generate events")
        if not 0.0 <= self.noise_rate < 1.0:
            raise ValueError("noise_rate must be in [0, 1)")
        rng = np.random.default_rng(self.seed)
        self.train = [self._sample(rng) for _ in range(self.num_train)]
        self.test = [self._sample(rng) for _ in range(self.num_test)]

    def _sample(self, rng: np.random.Generator) -> EventStream:
        label = int(rng.integers(0, self.num_classes))
        dy, dx = _motion_for_label(label)
        h, w, t_steps = self.height, self.width, self.timesteps

        # Render intensity frames of a drifting rectangular blob (finite
        # in both axes so every motion direction is visible).
        start_y = int(rng.integers(0, h))
        start_x = int(rng.integers(0, w))
        size_y = int(rng.integers(3, 6))
        size_x = int(rng.integers(3, 6))
        frames = np.zeros((t_steps + 1, h, w), dtype=np.float32)
        ys, xs = np.mgrid[0:h, 0:w]
        for t in range(t_steps + 1):
            offset_y = (start_y + dy * t) % h
            offset_x = (start_x + dx * t) % w
            mask = ((ys - offset_y) % h < size_y) & ((xs - offset_x) % w < size_x)
            frames[t][mask] = 1.0

        # Temporal-contrast events: ON where intensity rose, OFF where it fell.
        diff = np.diff(frames, axis=0)
        on = (diff > 0.5).astype(np.uint8)
        off = (diff < -0.5).astype(np.uint8)
        events = np.stack([on, off], axis=1)  # (T, 2, H, W)

        # Shot noise.
        if self.noise_rate > 0:
            noise = (rng.random(events.shape) < self.noise_rate).astype(np.uint8)
            events = np.clip(events + noise, 0, 1).astype(np.uint8)
        return EventStream(events=events, label=label)

    # ------------------------------------------------------------------
    def split_arrays(self, split: str = "train") -> Tuple[np.ndarray, np.ndarray]:
        """(N, T, 2, H, W) events and (N,) labels for a split."""
        samples = self.train if split == "train" else self.test
        events = np.stack([s.events for s in samples])
        labels = np.array([s.label for s in samples], dtype=np.int64)
        return events, labels

    def mean_event_rate(self) -> float:
        return float(np.mean([s.event_rate for s in self.train]))

    def spike_stream(self, split: str = "train") -> Tuple[SpikeStream, np.ndarray]:
        """One batched COO :class:`SpikeStream` (+ labels) for a split.

        Per-sample coordinate blocks are concatenated with the batch
        index prepended — the whole split travels as a single
        event-driven payload, never as a dense (N, T, 2, H, W) stack.
        """
        samples: List[EventStream] = self.train if split == "train" else self.test
        coord_blocks, step_blocks = [], []
        for n, sample in enumerate(samples):
            where = np.nonzero(sample.events)
            coord_blocks.append(
                np.stack(
                    [np.full_like(where[0], n), where[1], where[2], where[3]],
                    axis=1,
                )
            )
            step_blocks.append(where[0])
        stream = SpikeStream(
            coords=np.concatenate(coord_blocks, axis=0),
            timestep=np.concatenate(step_blocks),
            shape=(len(samples), 2, self.height, self.width),
            timesteps=self.timesteps,
        )
        labels = np.array([s.label for s in samples], dtype=np.int64)
        return stream, labels


def accumulate_events(events: np.ndarray, bins: int) -> np.ndarray:
    """Re-bin an event stream (T, 2, H, W) into ``bins`` coarser frames.

    Standard DVS pre-processing: sum events within each bin and clip to
    binary (the accelerator's input spikes are single-bit).
    """
    t = events.shape[0]
    if bins < 1 or bins > t:
        raise ValueError("bins must be in [1, T]")
    edges = np.linspace(0, t, bins + 1).astype(int)
    binned = np.stack(
        [events[a:b].sum(axis=0) for a, b in zip(edges[:-1], edges[1:])]
    )
    return np.clip(binned, 0, 1).astype(np.uint8)
