"""Synthetic CIFAR-10 stand-in.

Each class is defined by a random low-frequency spatial prototype plus a
class-specific oriented texture; samples are drawn by jittering the
prototype (random translation, per-channel gain, additive Gaussian
noise).  The task is hard enough that linear models underperform deep
CNNs, but small CNNs trained for a handful of epochs reach high accuracy
— exactly the regime we need to study ANN-to-SNN conversion fidelity
(which is about *matching* the ANN, not about absolute accuracy).

Everything is driven by an explicit integer seed; the same seed always
produces the same arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

NUM_CLASSES = 10
IMAGE_SHAPE = (3, 32, 32)


def _class_prototypes(
    rng: np.random.Generator, num_classes: int, shape: Tuple[int, int, int]
) -> np.ndarray:
    """Build one smooth prototype image per class.

    Prototypes combine (i) a low-frequency random field (class identity
    lives in coarse structure, like natural image categories) and (ii) an
    oriented sinusoidal texture at a class-specific angle/frequency.
    """
    c, h, w = shape
    protos = np.zeros((num_classes, c, h, w), dtype=np.float32)
    ys, xs = np.mgrid[0:h, 0:w].astype(np.float32)
    for k in range(num_classes):
        # Low-frequency field: upsampled 4x4 noise.
        coarse = rng.normal(0.0, 1.0, size=(c, 4, 4)).astype(np.float32)
        field = np.repeat(np.repeat(coarse, h // 4, axis=1), w // 4, axis=2)
        # Oriented texture.
        angle = np.pi * k / num_classes
        freq = 2.0 * np.pi * (1.5 + 0.5 * (k % 3)) / w
        phase = rng.uniform(0, 2 * np.pi)
        wave = np.sin(freq * (np.cos(angle) * xs + np.sin(angle) * ys) + phase)
        texture = np.stack([wave * (0.5 + 0.5 * rng.random()) for _ in range(c)])
        protos[k] = 0.8 * field + 0.7 * texture
    return protos


@dataclass
class SyntheticCIFAR:
    """Deterministic 10-class 32x32x3 image classification dataset.

    Parameters
    ----------
    num_train / num_test:
        Sample counts for each split.
    noise:
        Std-dev of additive pixel noise (raises task difficulty).
    max_shift:
        Maximum absolute translation (pixels) applied per sample.
    class_overlap:
        In [0, 1). Each sample is blended with a random *other* class
        prototype by a factor drawn from U(0, class_overlap).  Unlike
        iid pixel noise (which deep CNNs average away), prototype
        mixing creates genuinely ambiguous samples and therefore an
        irreducible error floor — use ~0.8 to land accuracies in the
        paper's 90-96% band instead of at the ceiling.
    seed:
        Master seed for prototypes and both splits.

    Attributes
    ----------
    train_x, test_x:
        float32 arrays (N, 3, 32, 32), roughly zero-mean unit-range.
    train_y, test_y:
        int64 label arrays (N,).
    """

    num_train: int = 2000
    num_test: int = 500
    noise: float = 0.35
    max_shift: int = 2
    class_overlap: float = 0.0
    seed: int = 0
    num_classes: int = NUM_CLASSES
    train_x: np.ndarray = field(init=False, repr=False)
    train_y: np.ndarray = field(init=False, repr=False)
    test_x: np.ndarray = field(init=False, repr=False)
    test_y: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.class_overlap < 1.0:
            raise ValueError("class_overlap must be in [0, 1)")
        rng = np.random.default_rng(self.seed)
        self._prototypes = _class_prototypes(rng, self.num_classes, IMAGE_SHAPE)
        self.train_x, self.train_y = self._sample(rng, self.num_train)
        self.test_x, self.test_y = self._sample(rng, self.num_test)

    def _sample(
        self, rng: np.random.Generator, count: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, self.num_classes, size=count)
        images = self._prototypes[labels].copy()
        if self.class_overlap > 0.0:
            others = (
                labels + rng.integers(1, self.num_classes, size=count)
            ) % self.num_classes
            alphas = rng.uniform(0.0, self.class_overlap, size=(count, 1, 1, 1)).astype(
                np.float32
            )
            images = (1.0 - alphas) * images + alphas * self._prototypes[others]
        # Random translation (wrap-around roll keeps energy constant).
        if self.max_shift > 0:
            shifts = rng.integers(-self.max_shift, self.max_shift + 1, size=(count, 2))
            for i, (dy, dx) in enumerate(shifts):
                images[i] = np.roll(images[i], (int(dy), int(dx)), axis=(1, 2))
        # Per-channel gain jitter.
        gains = rng.uniform(0.85, 1.15, size=(count, 3, 1, 1)).astype(np.float32)
        images *= gains
        # Additive noise.
        images += rng.normal(0.0, self.noise, size=images.shape).astype(np.float32)
        return images.astype(np.float32), labels.astype(np.int64)

    # ------------------------------------------------------------------
    def train_split(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.train_x, self.train_y

    def test_split(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.test_x, self.test_y

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return IMAGE_SHAPE


def train_test_split(
    x: np.ndarray, y: np.ndarray, test_fraction: float = 0.2, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split arrays into train/test partitions."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(x))
    cut = int(len(x) * (1.0 - test_fraction))
    train_idx, test_idx = order[:cut], order[cut:]
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]
