"""Minibatch iteration over in-memory arrays."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np


class DataLoader:
    """Iterate over (x, y) arrays in minibatches.

    Parameters
    ----------
    x, y:
        Full dataset arrays with matching first dimension.
    batch_size:
        Number of samples per batch (the final batch may be smaller
        unless ``drop_last``).
    shuffle:
        Reshuffle at the start of every epoch using ``rng``.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int = 64,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if len(x) != len(y):
            raise ValueError(f"x and y length mismatch: {len(x)} vs {len(y)}")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.x = x
        self.y = y
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        n = len(self.x)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.x)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        limit = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, limit, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.x[idx], self.y[idx]
