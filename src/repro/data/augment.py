"""Training-time data augmentation (random crop with padding, flips, cutout).

The standard CIFAR recipe; used by the trainer through
:class:`Augmenter` to close part of the generalisation gap of small
synthetic training sets.  All transforms operate on (N, C, H, W) float
batches and take an explicit generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def random_horizontal_flip(
    x: np.ndarray, rng: np.random.Generator, probability: float = 0.5
) -> np.ndarray:
    """Flip each sample left-right with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    out = x.copy()
    flips = rng.random(len(x)) < probability
    out[flips] = out[flips, :, :, ::-1]
    return out


def random_crop(
    x: np.ndarray, rng: np.random.Generator, padding: int = 4
) -> np.ndarray:
    """Pad reflectively by ``padding`` then crop back at a random offset."""
    if padding < 1:
        raise ValueError("padding must be >= 1")
    n, c, h, w = x.shape
    padded = np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="reflect"
    )
    out = np.empty_like(x)
    tops = rng.integers(0, 2 * padding + 1, size=n)
    lefts = rng.integers(0, 2 * padding + 1, size=n)
    for i, (top, left) in enumerate(zip(tops, lefts)):
        out[i] = padded[i, :, top : top + h, left : left + w]
    return out


def cutout(
    x: np.ndarray, rng: np.random.Generator, size: int = 8
) -> np.ndarray:
    """Zero a random square patch per sample (DeVries & Taylor 2017)."""
    if size < 1:
        raise ValueError("size must be >= 1")
    n, c, h, w = x.shape
    out = x.copy()
    ys = rng.integers(0, h, size=n)
    xs = rng.integers(0, w, size=n)
    half = size // 2
    for i in range(n):
        y0, y1 = max(0, ys[i] - half), min(h, ys[i] + half)
        x0, x1 = max(0, xs[i] - half), min(w, xs[i] + half)
        out[i, :, y0:y1, x0:x1] = 0.0
    return out


@dataclass
class Augmenter:
    """Composable augmentation policy applied per training batch."""

    flip: bool = True
    crop_padding: int = 4
    cutout_size: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = x
        if self.crop_padding > 0:
            out = random_crop(out, self._rng, self.crop_padding)
        if self.flip:
            out = random_horizontal_flip(out, self._rng)
        if self.cutout_size > 0:
            out = cutout(out, self._rng, self.cutout_size)
        return out
