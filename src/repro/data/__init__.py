"""Datasets, loaders and spike encoders.

The paper evaluates on CIFAR-10; this offline reproduction substitutes
:class:`SyntheticCIFAR` — a deterministic, structured 10-class 32x32x3
image distribution with the same geometry — so every layer shape, memory
map and latency figure is computed for the exact tensor sizes the paper
uses (see DESIGN.md §2 for the substitution rationale).
"""

from repro.data.datasets import SyntheticCIFAR, train_test_split
from repro.data.loaders import DataLoader
from repro.data.encodings import (
    direct_encode,
    direct_encode_stream,
    rate_encode,
    rate_encode_stream,
)
from repro.data.events import EventStream, SyntheticDVS, accumulate_events
from repro.data.augment import Augmenter, cutout, random_crop, random_horizontal_flip

__all__ = [
    "SyntheticCIFAR",
    "train_test_split",
    "DataLoader",
    "direct_encode",
    "EventStream",
    "SyntheticDVS",
    "accumulate_events",
    "Augmenter",
    "random_crop",
    "random_horizontal_flip",
    "cutout",
    "rate_encode",
    "rate_encode_stream",
    "direct_encode_stream",
]
