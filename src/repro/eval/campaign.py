"""Resumable parameter-grid campaigns over the supervised substrate.

The hardware-model extension experiments (weight/threshold fault
sweeps, DSE grids, quantisation levels, T sweeps, model x engine x
shard-mode matrices) are all the same shape: a deterministic function
evaluated over a cartesian parameter grid, one JSON record per point.
This module makes that shape a first-class, failure-tolerant workload:

* **Deterministic points.**  :class:`CampaignSpec` expands its grid in
  a stable order and derives every point's RNG seed from
  ``sha256(campaign seed, point id)`` — a point's result depends only
  on its own parameters, never on execution order, so partial runs,
  parallel shards and resumed campaigns reproduce bit-identical
  records.
* **Atomic records.**  Each completed point is written to
  ``<out_dir>/points/<id>.json`` via temp-file + ``os.replace`` with
  fsync (:func:`repro.utils.io.atomic_write_json`), under a
  ``manifest.json`` describing the full grid.  A process killed
  mid-write can truncate nothing — and a machine crash cannot leave a
  zero-length record, because data and rename are flushed before the
  write reports success.  At worst the point is simply missing and
  re-runs.  Records carry the supervision trail too:
  ``shard_failures`` counts the failed attempts behind the point's
  eventual success and ``degraded_shard_mode`` names the substrate the
  fork→thread→serial chain had to finish on (0/"" for clean points).
* **Resume.**  Re-invoking a killed campaign loads the manifest,
  verifies it matches the spec, and completes only the missing points
  — records that are corrupt, truncated or schema-mismatched are
  discarded (one warning) and re-run.  The merged result equals an
  uninterrupted run.
* **Supervised execution.**  Points fan out across the same
  fork/thread/serial substrate as batch shards
  (:func:`repro.snn.engines.sharding.run_supervised`), inheriting
  per-point exception capture, wall-clock deadlines, bounded
  retry/backoff and the degradation chain.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.snn.engines.sharding import (
    ShardFailure,
    ShardPolicy,
    resolve_shard_mode,
    run_supervised,
)
from repro.utils.io import atomic_write_json

logger = logging.getLogger(__name__)

#: On-disk format tags (manifest and per-point records).
CAMPAIGN_FORMAT = "repro-campaign/v1"
POINT_FORMAT = "repro-campaign-point/v1"

#: Execution substrates a campaign accepts; ``serial`` is first-class
#: here (a campaign of heavyweight points often wants no parallelism),
#: ``auto`` resolves like the engine layer's shard modes.
CAMPAIGN_MODES = ("auto", "fork", "thread", "serial")


def point_id(params: Mapping) -> str:
    """Stable, filesystem-safe identifier for one grid point.

    Human-readable for small grids (``rate=0.001,trial=0``) with a
    short content hash appended, so ids stay unique even when two
    parameter values collapse to the same sanitised text.
    """
    text = ",".join(f"{k}={params[k]}" for k in sorted(params))
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:8]
    safe = "".join(c if (c.isalnum() or c in ".=,+-") else "_" for c in text)
    return f"{safe[:80]}-{digest}"


def point_seed(campaign_seed: int, pid: str) -> int:
    """The point's own RNG seed: a stable 64-bit digest, order-free."""
    digest = hashlib.sha256(f"{campaign_seed}:{pid}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class CampaignPoint:
    """One expanded grid point: parameters plus its derived seed."""

    id: str
    params: Mapping
    seed: int


@dataclass
class CampaignSpec:
    """A named parameter grid with a base seed.

    ``grid`` maps axis name to the sequence of values it sweeps; points
    are the cartesian product, expanded with the *last* axis varying
    fastest (``itertools.product`` order), which is stable across runs
    because dict insertion order is part of the spec.
    """

    name: str
    grid: Dict[str, Sequence]
    seed: int = 0
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if not self.grid:
            raise ValueError("campaign grid must have at least one axis")
        for axis, values in self.grid.items():
            if not list(values):
                raise ValueError(f"grid axis {axis!r} has no values")

    def points(self) -> List[CampaignPoint]:
        axes = list(self.grid)
        combos = itertools.product(*(self.grid[a] for a in axes))
        points = []
        for combo in combos:
            params = dict(zip(axes, combo))
            pid = point_id(params)
            points.append(
                CampaignPoint(id=pid, params=params, seed=point_seed(self.seed, pid))
            )
        return points

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "format": CAMPAIGN_FORMAT,
            "name": self.name,
            "seed": int(self.seed),
            "grid": {axis: list(values) for axis, values in self.grid.items()},
            "metadata": dict(self.metadata),
            "points": [p.id for p in self.points()],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CampaignSpec":
        if payload.get("format") != CAMPAIGN_FORMAT:
            raise ValueError(
                f"not a campaign manifest (format {payload.get('format')!r}, "
                f"expected {CAMPAIGN_FORMAT!r})"
            )
        return cls(
            name=str(payload["name"]),
            grid={axis: list(vals) for axis, vals in payload["grid"].items()},
            seed=int(payload["seed"]),
            metadata=dict(payload.get("metadata", {})),
        )


@dataclass
class CampaignResult:
    """The merged state of a campaign directory after a run."""

    spec: CampaignSpec
    out_dir: Path
    records: Dict[str, dict]               # point id -> record payload
    failures: List[ShardFailure] = field(default_factory=list)
    executed: int = 0                      # points run by *this* invocation

    @property
    def complete(self) -> bool:
        return all(p.id in self.records for p in self.spec.points())

    @property
    def missing(self) -> List[str]:
        return [p.id for p in self.spec.points() if p.id not in self.records]

    def results(self) -> List[dict]:
        """Per-point ``result`` payloads in grid order (completed only)."""
        return [
            self.records[p.id]["result"]
            for p in self.spec.points()
            if p.id in self.records
        ]


class CampaignRunner:
    """Drive a :class:`CampaignSpec` to completion, resumably.

    Parameters
    ----------
    spec:
        The parameter grid.
    point_fn:
        ``point_fn(params, seed) -> dict`` evaluates one point; the
        returned dict must be JSON-serialisable and deterministic given
        ``(params, seed)`` — that is the whole resume contract.
    out_dir:
        Campaign directory: ``manifest.json`` plus one
        ``points/<id>.json`` per completed point.
    policy:
        Per-point retry/timeout/backoff knobs
        (:class:`repro.snn.engines.sharding.ShardPolicy`).
    workers:
        Points evaluated concurrently (1 = serial).
    mode:
        Execution substrate: ``"serial"``, ``"fork"``, ``"thread"`` or
        ``"auto"`` (fork where available, threads otherwise; only
        consulted when ``workers > 1``).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        point_fn: Callable[[Mapping, int], dict],
        out_dir: Union[str, Path],
        policy: Optional[ShardPolicy] = None,
        workers: int = 1,
        mode: str = "serial",
    ) -> None:
        if mode not in CAMPAIGN_MODES:
            raise ValueError(
                f"unknown campaign mode {mode!r}; choose from {CAMPAIGN_MODES}"
            )
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.point_fn = point_fn
        self.out_dir = Path(out_dir)
        self.policy = policy
        self.workers = int(workers)
        self.mode = mode

    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.out_dir / "manifest.json"

    @property
    def points_dir(self) -> Path:
        return self.out_dir / "points"

    def _record_path(self, pid: str) -> Path:
        return self.points_dir / f"{pid}.json"

    def _write_manifest(self) -> None:
        payload = self.spec.to_payload()
        if self.manifest_path.exists():
            try:
                existing = json.loads(self.manifest_path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                raise RuntimeError(
                    f"{self.manifest_path} exists but is unreadable "
                    f"({error}); refusing to resume into a directory whose "
                    f"provenance is unknown — pick a fresh out_dir"
                ) from None
            if existing != payload:
                raise RuntimeError(
                    f"{self.manifest_path} describes a different campaign "
                    f"(name/grid/seed mismatch); refusing to mix results — "
                    f"pick a fresh out_dir"
                )
            return
        self.out_dir.mkdir(parents=True, exist_ok=True)
        # fsync: the manifest is the resume contract — a machine crash
        # must not leave a zero-length manifest over completed points.
        atomic_write_json(self.manifest_path, payload, fsync=True)

    # ------------------------------------------------------------------
    def _load_record(self, point: CampaignPoint) -> Optional[dict]:
        """A point's persisted record, or None when it must (re-)run.

        A record that is missing, unparsable (killed mid-write on a
        filesystem without atomic rename), schema-mismatched or from a
        different campaign/seed is treated as absent — one warning, and
        the point re-runs; the eventual rewrite atomically replaces the
        bad file.
        """
        path = self._record_path(point.id)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as error:
            logger.warning(
                "campaign %s: discarding unusable point record %s (%s); "
                "the point will re-run",
                self.spec.name,
                path.name,
                error,
            )
            return None
        if (
            payload.get("format") != POINT_FORMAT
            or payload.get("campaign") != self.spec.name
            or payload.get("id") != point.id
            or payload.get("seed") != point.seed
            or "result" not in payload
        ):
            logger.warning(
                "campaign %s: point record %s does not match the manifest "
                "(stale schema or foreign campaign); the point will re-run",
                self.spec.name,
                path.name,
            )
            return None
        return payload

    def completed_records(self) -> Dict[str, dict]:
        """All valid persisted records, keyed by point id."""
        records = {}
        for point in self.spec.points():
            payload = self._load_record(point)
            if payload is not None:
                records[point.id] = payload
        return records

    # ------------------------------------------------------------------
    def _execute_point(self, point: CampaignPoint) -> dict:
        """Evaluate one point and persist its record atomically.

        Runs inside the supervised substrate — possibly in a fork child,
        where the atomic write still lands the record on disk even if
        the parent dies before collecting the result.
        """
        result = self.point_fn(point.params, point.seed)
        payload = {
            "format": POINT_FORMAT,
            "campaign": self.spec.name,
            "id": point.id,
            "params": dict(point.params),
            "seed": point.seed,
            "result": result,
            # Supervision trail, re-annotated by the parent after the
            # wave when this point actually failed attempts (the child
            # executing the point cannot see its own earlier failures).
            # Written as 0/"" here so clean serial, parallel and resumed
            # runs stay byte-identical record for record.
            "shard_failures": 0,
            "degraded_shard_mode": "",
        }
        self.points_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_json(self._record_path(point.id), payload, fsync=True)
        return payload

    def _annotate_failures(
        self,
        records: Dict[str, dict],
        pending: Sequence[CampaignPoint],
        failures: Sequence[ShardFailure],
        degraded_mode: str,
    ) -> None:
        """Fold the wave's supervision trail into the affected records.

        A point that needed retries (or rode the degradation chain)
        still writes its record from whichever attempt succeeded; only
        the parent sees the full :class:`ShardFailure` list, so it
        rewrites those records — atomically, like the original write —
        with the failed-attempt count and the substrate the chain
        degraded to.  Clean points keep their single first write.
        """
        counts: Dict[str, int] = {}
        for failure in failures:
            pid = pending[failure.index].id
            counts[pid] = counts.get(pid, 0) + 1
        for pid, count in counts.items():
            payload = records.get(pid)
            if payload is None:
                continue  # point exhausted every substrate; no record
            annotated = dict(payload)
            annotated["shard_failures"] = count
            annotated["degraded_shard_mode"] = degraded_mode
            atomic_write_json(self._record_path(pid), annotated, fsync=True)
            records[pid] = annotated

    def run(self, max_points: Optional[int] = None) -> CampaignResult:
        """Complete the campaign's missing points; return merged state.

        ``max_points`` bounds how many missing points this invocation
        executes — the hook the kill/resume tests and the CI smoke job
        use to simulate an interrupted campaign deterministically.
        """
        self._write_manifest()
        done = self.completed_records()
        pending = [p for p in self.spec.points() if p.id not in done]
        if max_points is not None:
            pending = pending[: max(int(max_points), 0)]
        failures: List[ShardFailure] = []
        if pending:
            mode = "serial"
            if self.workers > 1 and self.mode != "serial":
                mode = resolve_shard_mode(self.mode)
            outcome = run_supervised(
                count=len(pending),
                mode=mode,
                policy=self.policy,
                serial_fn=lambda i: self._execute_point(pending[i]),
                label=f"campaign[{self.spec.name}]",
            )
            failures = outcome.failures
            # Re-read from disk: fork children persisted their records
            # independently of the pickled return values, and the files
            # are the ground truth a resume would see.
            done = self.completed_records()
            if failures:
                self._annotate_failures(
                    done, pending, failures, outcome.degraded_mode
                )
        return CampaignResult(
            spec=self.spec,
            out_dir=self.out_dir,
            records=done,
            failures=failures,
            executed=len(pending),
        )
