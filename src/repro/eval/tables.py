"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def render_table(rows: Sequence[Dict[str, Any]], columns: Sequence[str]) -> str:
    """Render dict rows as an aligned text table with a header."""
    if not rows:
        return "(empty table)"
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            text = f"{value:.4g}" if isinstance(value, float) else str(value)
            widths[col] = max(widths[col], len(text))
            cells.append(text)
        rendered.append(cells)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    divider = "  ".join("-" * widths[c] for c in columns)
    lines = [header, divider]
    for cells in rendered:
        lines.append("  ".join(cell.ljust(widths[col]) for cell, col in zip(cells, columns)))
    return "\n".join(lines)
