"""Markdown report generation for reproduction runs.

``build_hardware_report`` renders the instantly-computable artefacts
(Tables I-IV, ASIC, DSE) into one markdown document with
paper-vs-measured columns — the programmatic counterpart of
EXPERIMENTS.md, usable in CI to detect drift in the calibrated models.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.eval.experiments import (
    asic_projection_experiment,
    table1_experiment,
    table2_experiment,
    table3_experiment,
    table4_experiment,
)

PAPER_TABLE1 = {
    "resnet18": {
        ("Conv (3x3,64)", "32x32"): 4.73,
        ("Conv (3x3,128)", "16x16"): 3.58,
        ("Conv (3x3,256)", "8x8"): 3.58,
        ("Conv (3x3,512)", "4x4"): 3.57,
        ("FC (512)", "512x10"): 58.929,
    },
    "vgg11": {
        ("Conv (3x3,64)", "32x32"): 0.94,
        ("Conv (3x3,128)", "16x16"): 0.89,
        ("Conv (3x3,256)", "8x8"): 2.68,
        ("Conv (3x3,512)", "4x4"): 2.67,
        ("FC (512)", "512x10"): 58.72,
    },
}
PAPER_TABLE2 = {3: 0.9479, 5: 0.95, 7: 0.9677, 11: 0.9839}
PAPER_TABLE3 = {
    "LUT": 11932, "FF": 8157, "DSP": 17, "BRAM": 95, "LUTRAM": 158, "BUFG": 1,
}
PAPER_ASIC = {"gops": 192.0, "area_mm2": 11.0, "power_watts": 2.17}


def _md_table(headers: List[str], rows: List[List[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def table1_section() -> str:
    result = table1_experiment()
    parts = ["## Table I — layer-wise latency"]
    for name, rows in result.items():
        body = []
        for row in rows:
            key = (row["label"], row["output_size"])
            paper = PAPER_TABLE1[name].get(key)
            body.append(
                [
                    f"{row['label']} x{row['count']}",
                    row["output_size"],
                    f"{paper:.3f}" if paper is not None else "-",
                    f"{row['latency_ms']:.3f}",
                ]
            )
        parts.append(f"\n### {name}\n")
        parts.append(_md_table(["layer group", "output", "paper (ms)", "measured (ms)"], body))
    return "\n".join(parts)


def table2_section() -> str:
    rows = table2_experiment()
    body = []
    for row in rows:
        k = int(row["layer"].split("(")[1].split("x")[0])
        body.append(
            [row["layer"], f"{PAPER_TABLE2[k]:.4f}", f"{row['latency_ms']:.4f}",
             row["kernel_cycles"]]
        )
    return "## Table II — latency vs kernel size\n\n" + _md_table(
        ["layer", "paper (ms)", "measured (ms)", "PE cycles/kernel"], body
    )


def table3_section() -> str:
    rows = table3_experiment()
    body = [
        [r["parameter"], PAPER_TABLE3[r["parameter"]], r["utilized"],
         r["available"], f"{r['percentage']:.2f}%"]
        for r in rows
    ]
    return "## Table III — FPGA resources\n\n" + _md_table(
        ["parameter", "paper", "measured", "available", "%"], body
    )


def table4_section() -> str:
    result = table4_experiment()
    body = [
        [r["paper"], r["platform"], r["gops"], r["gops_per_pe"],
         r["gops_per_watt"], r["dsp"], r["gops_per_dsp"]]
        for r in result["rows"]
    ]
    table = _md_table(
        ["work", "platform", "GOPS", "GOPS/PE", "GOPS/W", "DSP", "GOPS/DSP"], body
    )
    gains = (
        f"PE-efficiency gain {result['pe_efficiency_gain']:.2f}x "
        f"(paper ~2x); DSP-efficiency gain "
        f"{result['dsp_efficiency_gain']:.2f}x (paper ~4.5x)."
    )
    return "## Table IV — prior-art comparison\n\n" + table + "\n\n" + gains


def asic_section() -> str:
    report = asic_projection_experiment()
    body = [
        ["throughput (GOPS)", PAPER_ASIC["gops"], report.gops],
        ["area (mm^2)", PAPER_ASIC["area_mm2"], report.area_mm2],
        ["power (W)", PAPER_ASIC["power_watts"], report.power_watts],
    ]
    return "## ASIC projection (40 nm, 500 MHz)\n\n" + _md_table(
        ["quantity", "paper", "measured"], body
    )


def build_hardware_report(title: Optional[str] = None) -> str:
    """The full hardware-artefact report as one markdown string."""
    sections = [
        title or "# SIA hardware-artefact reproduction report",
        table1_section(),
        table2_section(),
        table3_section(),
        table4_section(),
        asic_section(),
    ]
    return "\n\n".join(sections) + "\n"


def write_hardware_report(path, title: Optional[str] = None) -> str:
    """Write the report to ``path``; returns the rendered text."""
    from pathlib import Path

    text = build_hardware_report(title)
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(text, encoding="utf-8")
    return text
