"""One driver per paper artefact (Figs. 6-9, Tables I-IV, ASIC note).

Accuracy experiments (Figs. 7/9) run the full three-stage pipeline on
the synthetic dataset at a reduced width (the numpy substrate trains in
minutes, not GPU-days); hardware experiments (Tables I-IV) use the
paper's *full-width* layer geometry, which needs no training — latency,
resources and throughput are functions of shapes and architecture only.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro import nn
from repro.data.datasets import SyntheticCIFAR
from repro.eval.prior_art import PRIOR_ART, best_prior
from repro.hw.asic import AsicProjection, AsicReport
from repro.hw.config import ArchConfig, LayerConfig, LayerKind, PYNQ_Z2
from repro.hw.latency import LatencyModel, group_latencies_like_table1
from repro.hw.mapper import MappedNetwork, map_network
from repro.hw.power import PowerModel
from repro.hw.resources import ResourceModel, ThroughputModel
from repro.models import build_model
from repro.pipeline.conversion import (
    ConversionResult,
    build_quantized_twin,
    run_conversion_pipeline,
)
from repro.pipeline.trainer import TrainConfig
from repro.snn import SpikingNetwork, collect_spike_stats, convert_to_snn
from repro.snn.metrics import SpikeStats
from repro.snn.spikes import SpikeTrace
from repro.snn.stats import RunStats, resolve_layer_rates

# A measured-activity source for the hardware latency/power models:
# the RunStats of an actual simulated run (its per-layer input rates
# are derived via RunStats.input_spike_rates), a portable SpikeTrace
# (RunStats.spike_trace() — observed densities sourced from SpikeStream
# metadata on stream runs), or an explicit per-synapse-layer
# input-rate sequence.
RateSource = Union[RunStats, SpikeTrace, Sequence[float]]

#: Valid input formats for the spike-rate experiments.
INPUT_FORMATS = ("frames", "events")


# ----------------------------------------------------------------------
# Figs. 7 and 9: accuracy vs timesteps
# ----------------------------------------------------------------------
@dataclass
class AccuracyCurve:
    """Everything plotted in paper Fig. 7 / Fig. 9."""

    model_name: str
    ann_accuracy: float
    quant_accuracy: float
    per_step_accuracy: List[float]
    timesteps_to_match_quant: Optional[int]
    result: ConversionResult = field(repr=False, default=None)

    def within_of_ann(self, margin: float = 0.01) -> Optional[int]:
        """First timestep whose accuracy is within ``margin`` of the ANN."""
        for t, acc in enumerate(self.per_step_accuracy, start=1):
            if acc >= self.ann_accuracy - margin:
                return t
        return None


def accuracy_vs_timesteps_experiment(
    model_name: str,
    dataset: Optional[SyntheticCIFAR] = None,
    width: float = 0.25,
    levels: int = 2,
    max_timesteps: int = 32,
    ann_epochs: int = 8,
    finetune_epochs: int = 6,
    seed: int = 0,
    engine: str = "dense",
    workers: int = 1,
    shard_mode: str = "auto",
) -> AccuracyCurve:
    """Run the full pipeline and return the accuracy-vs-T curve.

    ``engine`` selects the SNN simulation backend (``"dense"``,
    ``"event"``, ``"batched"`` or the adaptive ``"auto"``); accuracy is
    backend-independent, wall clock is not — the batched and auto
    backends compute the whole accuracy-vs-T curve from one
    layer-sequential pass.  ``workers`` shards evaluation batches
    across forked processes or threads (``shard_mode``).
    """
    dataset = dataset or SyntheticCIFAR(num_train=2000, num_test=500, noise=1.0, seed=seed)
    result = run_conversion_pipeline(
        model_name,
        dataset,
        width=width,
        levels=levels,
        timesteps=8,
        max_timesteps=max_timesteps,
        ann_config=TrainConfig(epochs=ann_epochs, seed=seed),
        finetune_config=TrainConfig(epochs=finetune_epochs, lr=5e-4, seed=seed + 1),
        seed=seed,
        engine=engine,
        workers=workers,
        shard_mode=shard_mode,
    )
    match_t = None
    for t, acc in enumerate(result.snn_accuracy_per_step, start=1):
        if acc >= result.quant_accuracy:
            match_t = t
            break
    return AccuracyCurve(
        model_name=model_name,
        ann_accuracy=result.ann_accuracy,
        quant_accuracy=result.quant_accuracy,
        per_step_accuracy=result.snn_accuracy_per_step,
        timesteps_to_match_quant=match_t,
        result=result,
    )


# ----------------------------------------------------------------------
# Figs. 6 and 8: per-layer spike rates
# ----------------------------------------------------------------------
def spike_rate_experiment(
    curve: AccuracyCurve,
    dataset: SyntheticCIFAR,
    timesteps: int = 8,
    max_samples: int = 256,
    input_format: str = "frames",
) -> SpikeStats:
    """Per-layer average spike rate of the converted network (Fig. 6/8).

    ``input_format="frames"`` presents the direct-coded analog frames
    (the PS frame-conversion mode); ``"events"`` rate-encodes the same
    images into a binary COO :class:`repro.snn.spikes.SpikeStream` and
    runs the network on the event stream (the accelerator's
    event-driven input mode), so the reported rates reflect genuinely
    event-driven input statistics.
    """
    if input_format not in INPUT_FORMATS:
        raise ValueError(
            f"unknown input_format {input_format!r}; choose from {INPUT_FORMATS}"
        )
    network: SpikingNetwork = curve.result.snn
    x = dataset.test_x[:max_samples]
    if input_format == "events":
        from repro.data.encodings import rate_encode_stream

        x = rate_encode_stream(x, timesteps, rng=np.random.default_rng(0))
    return collect_spike_stats(network, x, timesteps=timesteps)


# ----------------------------------------------------------------------
# Geometry-only network builders for the hardware experiments
# ----------------------------------------------------------------------
def build_geometry_network(
    model_name: str,
    width: float = 1.0,
    levels: int = 2,
    seed: int = 0,
    arch: ArchConfig = PYNQ_Z2,
) -> MappedNetwork:
    """Map an untrained full-width network (shapes are all that matter).

    The hardware experiments (Tables I and II) depend only on layer
    geometry, the memory map and the clock — not on trained weights —
    so the network is instantiated, converted with its freshly
    initialised thresholds, and mapped.
    """
    model = build_quantized_twin(
        model_name, width=width, num_classes=10, levels=levels, seed=seed
    )
    convert_to_snn(model)
    return map_network(model, input_shape=(3, 32, 32), arch=arch)


# ----------------------------------------------------------------------
# Table I: layer-wise latency
# ----------------------------------------------------------------------
def _layer_input_rates(source: RateSource, n_layers: int) -> List[float]:
    """Resolve a measured-rate source into one input rate per synapse layer.

    The latency model bills each layer by the activity of the spike
    plane *feeding* it; resolution (RunStats / SpikeTrace / explicit
    sequence, with the mapper's shortcut-folding fallback) is the
    shared :func:`repro.snn.stats.resolve_layer_rates`, the same
    resolver the traffic model uses.
    """
    return resolve_layer_rates(source, n_layers)


def table1_experiment(
    timesteps: int = 8,
    spike_rate: float = 0.12,
    arch: ArchConfig = PYNQ_Z2,
    width: float = 1.0,
    measured: Optional[Mapping[str, RateSource]] = None,
) -> Dict[str, List[dict]]:
    """Layer-wise latency rows for ResNet-18 and VGG-11 (paper Table I).

    ``measured`` optionally maps a model name (``"resnet18"`` /
    ``"vgg11"``) to the :class:`RunStats` of a simulated run (e.g.
    ``SpikingNetwork.last_run_stats``) or an explicit per-layer
    input-rate list; those layers are then billed at the *observed*
    activity instead of the flat assumed ``spike_rate``.  Width-scaled
    simulation stats are fine: layer count, not layer width, must match.
    """
    model = LatencyModel(arch)
    out: Dict[str, List[dict]] = {}
    unknown = set(measured or {}) - {"resnet18", "vgg11"}
    if unknown:
        raise ValueError(
            f"unknown model names in measured rates: {sorted(unknown)}; "
            "expected 'resnet18' and/or 'vgg11'"
        )
    for name in ("resnet18", "vgg11"):
        mapped = build_geometry_network(name, width=width, arch=arch)
        configs = [layer.config for layer in mapped.layers]
        source = (measured or {}).get(name)
        if source is None:
            rates = [spike_rate] * len(configs)
        else:
            rates = _layer_input_rates(source, len(configs))
        latencies = model.network_latency(
            configs, timesteps=timesteps, spike_rates=rates
        )
        out[name] = group_latencies_like_table1(latencies, configs)
    return out


# ----------------------------------------------------------------------
# Table II: latency vs kernel size
# ----------------------------------------------------------------------
def table2_experiment(
    kernel_sizes=(3, 5, 7, 11),
    timesteps: int = 8,
    arch: ArchConfig = PYNQ_Z2,
) -> List[dict]:
    """Latency of Conv(kxk, 64) @ 32x32 for each kernel size."""
    model = LatencyModel(arch)
    rows = []
    for k in kernel_sizes:
        cfg = LayerConfig(
            kind=LayerKind.CONV,
            in_channels=3,
            out_channels=64,
            in_height=32,
            in_width=32,
            kernel_size=k,
            stride=1,
            padding=k // 2,
            name=f"Conv ({k}x{k},64)",
        )
        lat = model.layer_latency(cfg, timesteps=timesteps, frame_input=True)
        rows.append(
            {
                "layer": cfg.name,
                "output_size": f"{cfg.out_height}x{cfg.out_width}",
                "latency_ms": round(lat.milliseconds, 4),
                "pl_cycles": lat.pl_cycles,
                "kernel_cycles": arch.kernel_cycles(k),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table III: resource utilisation
# ----------------------------------------------------------------------
def table3_experiment(arch: ArchConfig = PYNQ_Z2) -> List[dict]:
    """FPGA resource rows (paper Table III)."""
    return ResourceModel(arch).report().rows()


# ----------------------------------------------------------------------
# Table IV: comparison with prior art
# ----------------------------------------------------------------------
def table4_experiment(
    arch: ArchConfig = PYNQ_Z2,
    power_watts: float = 1.54,
    run_stats: Optional[Union[RunStats, SpikeTrace]] = None,
) -> Dict[str, object]:
    """This-work column + prior art + the 2x / 4.5x headline ratios.

    ``run_stats`` (a simulated run's :class:`RunStats` or its portable
    :class:`repro.snn.spikes.SpikeTrace`) additionally reports the
    *measured* event-driven throughput: the core executes only the
    performed synaptic ops but delivers the dense network's work, so
    the dense-equivalent rate is ``peak GOPS x dense/performed ops`` —
    the quantity the paper's event-driven thesis says should beat a
    dense accelerator of the same PE budget.
    """
    ours = ThroughputModel(arch, power_watts=power_watts).report()
    rows = [
        {
            "paper": row.name,
            "platform": row.platform,
            "pes": row.num_pes if row.num_pes is not None else "N/A",
            "clock_mhz": row.clock_mhz,
            "gops": row.gops,
            "gops_per_pe": row.gops_per_pe if row.gops_per_pe is not None else "N/A",
            "gops_per_watt": (
                row.energy_eff_gops_per_watt
                if row.energy_eff_gops_per_watt is not None
                else "N/A"
            ),
            "dsp": row.dsp if row.dsp is not None else "N/A",
            "gops_per_dsp": row.gops_per_dsp if row.gops_per_dsp is not None else "N/A",
        }
        for row in PRIOR_ART
    ]
    rows.append(
        {
            "paper": "This Work",
            "platform": ours.platform,
            "pes": ours.num_pes,
            "clock_mhz": ours.clock_mhz,
            "gops": ours.gops,
            "gops_per_pe": ours.gops_per_pe,
            "gops_per_watt": ours.gops_per_watt,
            "dsp": ours.dsp,
            "gops_per_dsp": ours.gops_per_dsp,
        }
    )
    result: Dict[str, object] = {
        "rows": rows,
        "pe_efficiency_gain": ours.gops_per_pe / best_prior("gops_per_pe"),
        "dsp_efficiency_gain": ours.gops_per_dsp / best_prior("gops_per_dsp"),
        "energy_efficiency_gain": ours.gops_per_watt
        / best_prior("energy_eff_gops_per_watt"),
    }
    if run_stats is not None:
        performed = max(run_stats.total_synaptic_ops, 1)
        scale = run_stats.total_dense_synaptic_ops / performed
        result["measured_spike_rate"] = run_stats.overall_spike_rate
        result["measured_op_saving"] = run_stats.synaptic_op_saving
        result["dense_equivalent_gops"] = round(ours.gops * scale, 2)
        result["dense_equivalent_gops_per_watt"] = round(
            ours.gops * scale / power_watts, 2
        )
    return result


# ----------------------------------------------------------------------
# ASIC projection (paper §V)
# ----------------------------------------------------------------------
def asic_projection_experiment(
    arch: ArchConfig = PYNQ_Z2, clock_hz: float = 500e6
) -> AsicReport:
    return AsicProjection(arch, clock_hz=clock_hz).report()
