"""Experiment drivers regenerating every figure and table of the paper.

Each public function corresponds to one paper artefact (see DESIGN.md's
experiment index) and returns plain dataclasses/dicts that the
benchmarks print in the paper's row/series format.
"""

from repro.eval.experiments import (
    AccuracyCurve,
    accuracy_vs_timesteps_experiment,
    asic_projection_experiment,
    build_geometry_network,
    spike_rate_experiment,
    table1_experiment,
    table2_experiment,
    table3_experiment,
    table4_experiment,
)
from repro.eval.campaign import (
    CampaignPoint,
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    point_id,
    point_seed,
)
from repro.eval.prior_art import PRIOR_ART, PriorArtRow
from repro.eval.tables import render_table
from repro.eval.report import build_hardware_report, write_hardware_report

__all__ = [
    "CampaignPoint",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "point_id",
    "point_seed",
    "AccuracyCurve",
    "accuracy_vs_timesteps_experiment",
    "spike_rate_experiment",
    "table1_experiment",
    "table2_experiment",
    "table3_experiment",
    "table4_experiment",
    "asic_projection_experiment",
    "build_geometry_network",
    "PRIOR_ART",
    "PriorArtRow",
    "render_table",
    "build_hardware_report",
    "write_hardware_report",
]
