"""Published prior-art accelerator numbers (paper Table IV).

These rows are *data quoted from the paper* (which in turn quotes the
cited works), kept verbatim so the comparison benchmark reproduces the
table, including the derived GOPS/PE and GOPS/DSP columns and the
2x / 4.5x utilisation-efficiency headline claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class PriorArtRow:
    """One column of the paper's Table IV."""

    name: str
    platform: str
    num_pes: Optional[int]
    clock_mhz: float
    gops: float
    gops_per_pe: Optional[float]
    energy_eff_gops_per_watt: Optional[float]
    dsp: Optional[int]
    gops_per_dsp: Optional[float]


PRIOR_ART: List[PriorArtRow] = [
    PriorArtRow("[18] Gilan 2019", "ZC706", 576, 200, 198.1, 0.343, None, 576, 0.34),
    PriorArtRow("[19] Qiu 2016", "ZC706", 780, 150, 187.8, 0.241, 14.22, 780, 0.24),
    PriorArtRow("[20] Chen 2020", "VC707", 64, 200, 12.5, 0.195, None, None, None),
    PriorArtRow("[21] Li 2021", "VC709", 664, 200, 220.0, 0.331, 22.9, 664, 0.33),
    PriorArtRow("[22] Guo 2017", "XC7Z020", 12, 200, 187.80, None, 19.50, 400, 0.46),
]


def best_prior(metric: str) -> float:
    """Best (max) prior-art value of a metric, ignoring missing entries."""
    values = [getattr(row, metric) for row in PRIOR_ART]
    values = [v for v in values if v is not None]
    if not values:
        raise ValueError(f"no prior-art data for {metric!r}")
    return max(values)
