"""repro — reproduction of the SOCC 2024 reconfigurable Spiking Inference
Accelerator (SIA) hardware-software co-optimisation methodology.

Layout
------
``repro.tensor``   numpy autograd engine (training substrate)
``repro.nn``       CNN + quantisation layers (QuantReLU / INT8 weights)
``repro.optim``    SGD / Adam and LR schedules
``repro.data``     synthetic CIFAR-10 stand-in, loaders, spike encoders
``repro.models``   ResNet-18 / VGG-11 builders
``repro.snn``      IF/LIF neurons, ANN->SNN conversion, spiking runtime
``repro.hw``       cycle-level SIA model: PE array, aggregation core,
                   ping-pong memory, AXI, mapper, latency/resource/power
``repro.eval``     experiment drivers for every paper figure and table
"""

__version__ = "1.0.0"

from repro.tensor import Tensor, no_grad

__all__ = ["Tensor", "no_grad", "__version__"]
