"""Conversion-error analysis: where does ANN-to-SNN fidelity go?

Diagnostics used while co-optimising (and in the repository's tests and
ablation benchmarks):

* :func:`layerwise_rate_error` — compares each spiking layer's
  time-averaged output against the quantised ANN's activation on the
  same input, layer by layer, so error injection/compounding across
  depth is visible;
* :func:`conversion_error_curve` — network-level output error vs T,
  the quantity whose decay makes the paper's 8-timestep operating
  point work;
* :func:`threshold_sweep` — accuracy sensitivity to mis-scaled
  thresholds (why the *learned* step matters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.nn.module import Module
from repro.nn.quant import QuantReLU
from repro.snn.convert import reset_network_state, spiking_layers
from repro.snn.network import SpikingNetwork
from repro.tensor import Tensor, no_grad


@dataclass(frozen=True)
class LayerError:
    name: str
    relative_error: float
    ann_mean_activation: float
    snn_mean_rate_output: float


def _quant_activations(model: Module, x: np.ndarray) -> List[np.ndarray]:
    """Record every QuantReLU output of a quantised ANN in eval mode."""
    records: List[np.ndarray] = []
    quants = [m for m in model.modules() if isinstance(m, QuantReLU)]
    originals = [q.forward for q in quants]

    def wrap(q: QuantReLU, original):
        def hooked(t: Tensor) -> Tensor:
            out = original(t)
            records.append(out.data.copy())
            return out

        return hooked

    for q, orig in zip(quants, originals):
        q.forward = wrap(q, orig)
    try:
        model.eval()
        with no_grad():
            model(Tensor(x))
    finally:
        for q, orig in zip(quants, originals):
            q.forward = orig
    return records


def _snn_rate_outputs(
    model: Module, x: np.ndarray, timesteps: int
) -> List[np.ndarray]:
    """Time-averaged output of every spiking layer over T steps."""
    layers = spiking_layers(model)
    sums: Dict[int, np.ndarray] = {}
    originals = [l.forward for l in layers]

    def wrap(idx: int, layer, original):
        def hooked(t: Tensor) -> Tensor:
            out = original(t)
            if idx in sums:
                sums[idx] = sums[idx] + out.data
            else:
                sums[idx] = out.data.copy()
            return out

        return hooked

    for idx, (layer, orig) in enumerate(zip(layers, originals)):
        layer.forward = wrap(idx, layer, orig)
    try:
        reset_network_state(model)
        model.eval()
        with no_grad():
            inp = Tensor(x)
            for _ in range(timesteps):
                model(inp)
    finally:
        for layer, orig in zip(layers, originals):
            layer.forward = orig
    return [sums[i] / timesteps for i in range(len(layers))]


def layerwise_rate_error(
    quant_model: Module,
    snn_model: Module,
    x: np.ndarray,
    timesteps: int = 8,
) -> List[LayerError]:
    """Per-layer relative error between SNN rates and ANN activations.

    ``quant_model`` and ``snn_model`` must share parameters (the usual
    twin construction); both are evaluated on the same batch.
    """
    ann_acts = _quant_activations(quant_model, x)
    snn_rates = _snn_rate_outputs(snn_model, x, timesteps)
    if len(ann_acts) != len(snn_rates):
        raise ValueError(
            f"layer count mismatch: {len(ann_acts)} quant vs {len(snn_rates)} spiking"
        )
    errors: List[LayerError] = []
    for idx, (ann, snn) in enumerate(zip(ann_acts, snn_rates)):
        denom = float(np.abs(ann).mean()) + 1e-9
        errors.append(
            LayerError(
                name=f"layer{idx + 1}",
                relative_error=float(np.abs(snn - ann).mean()) / denom,
                ann_mean_activation=float(ann.mean()),
                snn_mean_rate_output=float(snn.mean()),
            )
        )
    return errors


def conversion_error_curve(
    quant_model: Module,
    network: SpikingNetwork,
    x: np.ndarray,
    timesteps: Sequence[int] = (1, 2, 4, 8, 16),
) -> Dict[int, float]:
    """Relative output (logit) error vs number of timesteps."""
    quant_model.eval()
    with no_grad():
        ref = quant_model(Tensor(x)).data
    scale = float(np.abs(ref).mean()) + 1e-9
    curve: Dict[int, float] = {}
    max_t = max(timesteps)
    outs = network.forward_per_step(x, max_t)
    for t in timesteps:
        avg = outs[t - 1] / t
        curve[t] = float(np.abs(avg - ref).mean()) / scale
    return curve


def threshold_sweep(
    network: SpikingNetwork,
    x: np.ndarray,
    y: np.ndarray,
    scales: Sequence[float] = (0.5, 0.75, 1.0, 1.5, 2.0),
    timesteps: int = 8,
) -> Dict[float, float]:
    """Accuracy vs a global multiplicative threshold mis-scaling.

    Scaling every learned threshold by ``s != 1`` emulates skipping the
    paper's threshold learning; accuracy should peak at (or near) 1.0.
    Thresholds are restored afterwards.
    """
    layers = spiking_layers(network.model)
    originals = [l.threshold for l in layers]
    results: Dict[float, float] = {}
    try:
        for scale in scales:
            for layer, base in zip(layers, originals):
                layer.threshold = base * scale
            results[scale] = network.accuracy(x, y, timesteps=timesteps)
    finally:
        for layer, base in zip(layers, originals):
            layer.threshold = base
    return results
