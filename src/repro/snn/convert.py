"""ANN-to-SNN conversion by in-place module surgery.

This is step 3 of the paper's pipeline (Fig. 1): after a network has
been fine-tuned with :class:`repro.nn.QuantReLU` activations, each
QuantReLU is replaced by an IF (or LIF) neuron whose threshold is that
layer's *learned* step size.  Weights, batch-norm parameters and biases
are untouched — the hardware mapper quantises them separately when
building the accelerator image.
"""

from __future__ import annotations

from typing import List, Optional

from repro.nn.module import Module
from repro.nn.quant import QuantReLU
from repro.snn.neurons import IFNeuron, LIFNeuron, ResetMode


def convert_to_snn(
    model: Module,
    neuron: str = "if",
    reset: ResetMode = ResetMode.SUBTRACT,
    v_init_fraction: float = 0.5,
    leak: float = 0.9375,
) -> Module:
    """Replace every QuantReLU in ``model`` with a spiking neuron, in place.

    Parameters
    ----------
    model:
        A network whose activations are :class:`repro.nn.QuantReLU`
        (i.e. the output of the quantisation fine-tuning stage).
    neuron:
        ``"if"`` or ``"lif"`` — the accelerator's activation mode bit.
    reset:
        Reset mode (paper: reset-by-subtraction).
    v_init_fraction:
        Initial membrane potential / threshold (QCFS optimum: 0.5).
    leak:
        LIF leak factor (ignored for IF).

    Returns
    -------
    The same model object, now stateful and spiking.  Raises ValueError
    if the model contains no QuantReLU (converting a plain-ReLU network
    is almost certainly a bug in the calling pipeline).
    """
    if neuron not in ("if", "lif"):
        raise ValueError(f"neuron must be 'if' or 'lif', got {neuron!r}")
    replaced = 0
    for module in model.modules():
        for name, child in list(module._modules.items()):
            if isinstance(child, QuantReLU):
                threshold = child.threshold
                if neuron == "if":
                    spiking = IFNeuron(
                        threshold, reset=reset, v_init_fraction=v_init_fraction
                    )
                else:
                    spiking = LIFNeuron(
                        threshold,
                        leak=leak,
                        reset=reset,
                        v_init_fraction=v_init_fraction,
                    )
                setattr(module, name, spiking)
                replaced += 1
    if replaced == 0:
        raise ValueError(
            "model contains no QuantReLU activations; run quantisation "
            "fine-tuning before conversion"
        )
    return model


def spiking_layers(model: Module) -> List[IFNeuron]:
    """All spiking neuron layers of a converted model, in graph order."""
    return [m for m in model.modules() if isinstance(m, IFNeuron)]


def reset_network_state(model: Module) -> None:
    """Re-arm every neuron's membrane potential for a new sample."""
    for layer in spiking_layers(model):
        layer.reset_state()


def reset_network_stats(model: Module) -> None:
    """Clear spike counters on every neuron layer."""
    for layer in spiking_layers(model):
        layer.reset_stats()
