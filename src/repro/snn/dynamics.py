"""The single implementation of IF/LIF membrane dynamics.

The paper's aggregation core (§III-B) and the software simulator both
advance neurons the same way each timestep:

    leak -> integrate -> (clamp) -> compare against threshold -> reset

Historically the float software path (:mod:`repro.snn.neurons`) and the
integer hardware path (:mod:`repro.hw.aggregation`) each carried their
own copy of this update.  This module is now the one place the dynamics
live: :func:`neuron_step` is a stateless, vectorised transition function
``(membrane, input) -> (membrane, spikes)`` that is generic over dtype —
the software engines call it on float32 membranes with a multiplicative
leak, the hardware model calls it on int64 membranes with the
subtract-shift leak and 16-bit saturation injected through ``leak_fn`` /
``clamp_fn``.

Reset-by-subtraction (the paper's choice) keeps the above-threshold
residual in the membrane, which is what preserves information across
timesteps and makes low-latency conversion work; reset-to-zero is kept
for ablations.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Tuple, Union

import numpy as np

Scalar = Union[int, float]
LeakFn = Callable[[np.ndarray], np.ndarray]
ClampFn = Callable[[np.ndarray], np.ndarray]


class ResetMode(str, enum.Enum):
    """Post-spike membrane reset behaviour."""

    SUBTRACT = "subtract"  # v <- v - threshold  (paper's choice)
    ZERO = "zero"          # v <- 0


def initial_membrane(
    shape: Tuple[int, ...],
    threshold: Scalar,
    v_init_fraction: float = 0.5,
    dtype=np.float32,
) -> np.ndarray:
    """Fresh membrane pre-charged to ``v_init_fraction * threshold``.

    The 0.5 default is the QCFS optimum (it centres the quantisation
    error); integer dtypes round to the nearest representable level,
    matching what the mapper writes into the membrane memory.
    """
    value = threshold * v_init_fraction
    if np.issubdtype(np.dtype(dtype), np.integer):
        value = int(round(value))
    return np.full(shape, value, dtype=dtype)


def multiplicative_leak(leak: float) -> Optional[LeakFn]:
    """Software LIF leak ``v <- leak * v``; None for leak=1 (pure IF)."""
    if not 0.0 < leak <= 1.0:
        raise ValueError("leak must be in (0, 1]")
    if leak == 1.0:
        return None

    def apply(v: np.ndarray) -> np.ndarray:
        return v * leak

    return apply


def shift_leak(shift: int) -> LeakFn:
    """Hardware LIF leak ``v <- v - (v >> shift)`` (subtract-shift).

    ``shift=0`` is the degenerate full decay (``v - v = 0``): the
    mapper emits it for very leaky neurons (leak < ~0.29), so it must
    stay representable.
    """
    if shift < 0:
        raise ValueError("leak shift must be >= 0")

    def apply(v: np.ndarray) -> np.ndarray:
        return v - (v >> shift)

    return apply


def neuron_step(
    v: np.ndarray,
    current: np.ndarray,
    threshold: Scalar,
    reset: ResetMode = ResetMode.SUBTRACT,
    leak_fn: Optional[LeakFn] = None,
    clamp_fn: Optional[ClampFn] = None,
    in_place: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Advance one timestep of IF/LIF dynamics.

    Parameters
    ----------
    v:
        Membrane potential (any shape; float or integer dtype).
    current:
        Synaptic input for this timestep (same shape/dtype family).
    threshold:
        Firing threshold on the same scale as ``v``.
    reset:
        Reset-by-subtraction (paper) or reset-to-zero.
    leak_fn:
        Optional leak applied to ``v`` *before* integration — use
        :func:`multiplicative_leak` (software) or :func:`shift_leak`
        (hardware); None means pure IF.  A leak MUST return a fresh
        array (never mutate or alias its input): the step integrates
        into the leak's result in place.  Both library leaks do.
    clamp_fn:
        Optional range clamp applied after integration (the hardware's
        16-bit partial-sum saturation); None for the float path.
    in_place:
        Integrate into ``v`` itself instead of a fresh array.  Only
        valid when the caller owns ``v`` exclusively (e.g. a per-run
        membrane buffer stepped in a loop); the default keeps the
        caller's array untouched.

    Returns
    -------
    ``(v_next, spiked)`` where ``spiked`` is a boolean array; callers
    scale it into their own spike representation (``spikes * threshold``
    in the float network, binary uint8 planes on the accelerator).
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if leak_fn is not None:
        v = leak_fn(v)
        in_place = True  # both library leaks return a private copy
    if in_place:
        v += current
    else:
        v = v + current  # fresh array: the reset below may mutate it freely
    if clamp_fn is not None:
        v = clamp_fn(v)
    spiked = v >= threshold
    thr = np.asarray(threshold, dtype=v.dtype)
    if ResetMode(reset) is ResetMode.SUBTRACT:
        # Bitwise identical to selecting v - thr where spiked (0*thr is
        # exactly 0, v - 0 is exactly v) and several times faster than
        # a masked ufunc or np.where on this substrate.
        v -= spiked * thr
    else:
        v = np.where(spiked, np.zeros((), dtype=v.dtype), v)
    return v, spiked
