"""Integrate-and-fire neuron layers matching the accelerator's activation unit.

The aggregation core (paper §III-B) supports two modes selected by a
mode bit: IF (mode=0) and LIF (mode=1), both with per-layer 16-bit
thresholds and **reset-by-subtraction** (the membrane keeps the residual
above threshold after a spike, which preserves information across
timesteps and is what makes low-latency conversion work).

These classes are thin stateful wrappers around the *single* dynamics
implementation in :mod:`repro.snn.dynamics` — the same
:func:`repro.snn.dynamics.neuron_step` the hardware model's activation
unit executes in integer arithmetic.  A neuron layer holds the membrane
array between timesteps and the spike bookkeeping for the Fig. 6 / 8
statistics; one forward call advances one timestep.  ``reset_state()``
re-arms the membrane for a new input sample; the initial membrane
potential is ``v_init_fraction * threshold`` (0.5 by default — the QCFS
optimum that centres the quantisation error).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.snn.dynamics import (
    LeakFn,
    ResetMode,
    initial_membrane,
    multiplicative_leak,
    neuron_step,
)
from repro.tensor import Tensor

__all__ = ["IFNeuron", "LIFNeuron", "ResetMode"]


class IFNeuron(Module):
    """Integrate-and-fire layer.

    Per timestep: ``v += x``; spike where ``v >= threshold``; reset by
    subtraction (or to zero); output is ``spike * threshold`` so the
    time-averaged output approximates the quantised ReLU it replaced.

    Parameters
    ----------
    threshold:
        Firing threshold (the learned QuantReLU step size).
    reset:
        Reset mode; the paper uses reset-by-subtraction.
    v_init_fraction:
        Initial membrane potential as a fraction of threshold (QCFS uses
        0.5).
    """

    def __init__(
        self,
        threshold: float,
        reset: ResetMode = ResetMode.SUBTRACT,
        v_init_fraction: float = 0.5,
    ) -> None:
        super().__init__()
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = float(threshold)
        self.reset = ResetMode(reset)
        self.v_init_fraction = float(v_init_fraction)
        self.v: Optional[np.ndarray] = None
        # Spike bookkeeping for Fig. 6 / Fig. 8 statistics.
        self.spike_count = 0
        self.neuron_steps = 0
        self.last_spikes: Optional[np.ndarray] = None

    def reset_state(self) -> None:
        """Re-arm the membrane for a new input sample."""
        self.v = None

    def reset_stats(self) -> None:
        self.spike_count = 0
        self.neuron_steps = 0

    def _leak_fn(self) -> Optional[LeakFn]:
        """The leak applied before integration; None for pure IF."""
        return None

    def forward(self, x: Tensor) -> Tensor:
        data = x.data
        if self.v is None:
            self.v = initial_membrane(
                data.shape, self.threshold, self.v_init_fraction, dtype=data.dtype
            )
        self.v, spiked = neuron_step(
            self.v,
            data,
            self.threshold,
            reset=self.reset,
            leak_fn=self._leak_fn(),
        )
        spikes = spiked.astype(np.float32)
        self.spike_count += int(spiked.sum())
        self.neuron_steps += int(spiked.size)
        self.last_spikes = spikes
        return Tensor(spikes * self.threshold)

    @property
    def average_spike_rate(self) -> float:
        """Mean spikes per neuron per timestep since the last reset_stats."""
        if self.neuron_steps == 0:
            return 0.0
        return self.spike_count / self.neuron_steps

    def extra_repr(self) -> str:
        return f"threshold={self.threshold:.4f}, reset={self.reset.value}"


class LIFNeuron(IFNeuron):
    """Leaky integrate-and-fire layer (the accelerator's mode bit = 1).

    The leak is a multiplicative decay applied before integration:
    ``v <- leak * v + x``.  A hardware-friendly default of 0.9375
    (= 15/16, implementable as subtract-shift) is used.
    """

    def __init__(
        self,
        threshold: float,
        leak: float = 0.9375,
        reset: ResetMode = ResetMode.SUBTRACT,
        v_init_fraction: float = 0.5,
    ) -> None:
        super().__init__(threshold, reset=reset, v_init_fraction=v_init_fraction)
        if not 0.0 < leak <= 1.0:
            raise ValueError("leak must be in (0, 1]")
        self.leak = float(leak)

    def _leak_fn(self) -> Optional[LeakFn]:
        return multiplicative_leak(self.leak)

    def extra_repr(self) -> str:
        return f"threshold={self.threshold:.4f}, leak={self.leak}, reset={self.reset.value}"
