"""Pluggable simulation engines for timestep-unrolled SNN execution.

The paper's central claim is that event-driven, sparsity-exploiting
execution is what makes the accelerator fast: per timestep the hardware
only pays for kernel-row segments that actually carry spikes.  The
software simulator historically did the opposite — it re-ran the full
dense model every timestep, O(T x dense) regardless of spike rate.

This module restructures SNN execution into an engine layer with two
backends behind one :class:`SimulationEngine` interface:

``DenseEngine``
    The reference backend: one dense forward pass of the converted
    model per timestep (exactly the old ``SpikingNetwork`` behaviour).

``SparseEventEngine``
    Propagates only active spike events.  Conv and linear layers whose
    input plane is sparse are executed by gathering the active im2col
    rows (output windows touched by at least one spike) and the active
    columns (taps that carry a spike anywhere in the batch) and
    multiplying only that submatrix — per-timestep matmul cost scales
    with spike rate, mirroring the paper's aggregation core.  Dense
    inputs (the analog input frame, like the PS-side frame conv in
    §IV) fall back to the dense kernel.

``TimeBatchedEngine``
    The wall-clock backend.  Execution is restructured from
    time-outer/model-inner to layer-outer/time-inner: the direct-coded
    input is tiled once into a ``(T*N, ...)`` stack, every stateless
    layer (conv/linear/pool/flatten/residual add) runs exactly once as
    one large GEMM over all T timesteps, and only the stateful IF/LIF
    layers loop over the time axis — vectorised over the batch per step
    through the shared :func:`repro.snn.dynamics.neuron_step`.  Same
    dense arithmetic as ``DenseEngine`` (same kernels, same summation
    order per sample), ~T-fold fewer Python-level layer dispatches and
    T-fold larger matmuls; per-step logits fall out of the time axis
    for free.

All engines run the *same* module graph — the event and batched
backends install per-instance forward interceptors on conv/linear (and,
for the batched backend, neuron) modules for the duration of a run — so
arbitrary models (VGG chains, ResNet residual graphs) work identically
on any backend, and their logits agree up to float summation order.

Every run produces a :class:`repro.snn.stats.RunStats` with per-layer
spike rates and performed-vs-dense synaptic-op counts, the single
instrumentation point consumed by ``SpikingNetwork``, the spike-rate
experiments and the engine benchmarks.

:meth:`SimulationEngine.run` additionally accepts ``workers=K`` to
shard the batch dimension across forked processes (read-only weights
shared copy-on-write); shard results are concatenated and their stats
merged through :meth:`repro.snn.stats.RunStats.merge`, so a K-worker
run reports the same rates and op counts as a single-worker run.
"""

from __future__ import annotations

import abc
import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.layers import AvgPool2d, BatchNorm2d, Conv2d, Linear, MaxPool2d
from repro.nn.module import Module
from repro.nn.quant import QuantConv2d, QuantLinear, _WeightFakeQuant
from repro.snn.convert import reset_network_state
from repro.snn.dynamics import initial_membrane, neuron_step
from repro.snn.neurons import IFNeuron
from repro.snn.stats import LayerStats, RunStats
from repro.tensor import Tensor, no_grad
from repro.tensor.functional import im2col


@dataclass
class EngineRun:
    """Result of one engine invocation."""

    logits: np.ndarray
    stats: RunStats
    per_step: Optional[List[np.ndarray]] = None


# ----------------------------------------------------------------------
# Sparse kernels
# ----------------------------------------------------------------------
def _conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def dense_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Plain im2col convolution (the reference kernel, no sparsity scans)."""
    n = x.shape[0]
    c_out, _, k, _ = weight.shape
    cols, oh, ow = im2col(x, k, stride, padding)
    out = cols @ weight.reshape(c_out, -1).T
    if bias is not None:
        out += bias
    return np.ascontiguousarray(out.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2))


def sparse_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: int,
    padding: int,
) -> Tuple[np.ndarray, int]:
    """Event-driven convolution of a sparse activation plane.

    Gathers the active im2col rows (output windows touched by at least
    one spike) and the active columns (taps carrying a spike anywhere
    in the batch) and multiplies only that submatrix when it is a
    genuine shrink; silent windows contribute exactly zero (plus
    bias), so the result equals the dense convolution up to float
    summation order.  When the submatrix is not meaningfully smaller
    the full matrix is multiplied — on this numpy substrate a dense
    BLAS matmul outruns any per-element sparse route at moderate
    densities, so the gather gate is what keeps the event backend at
    wall-clock parity with dense outside the very sparse regime where
    it wins outright.

    Returns ``(output, performed_ops)`` where ``performed_ops`` counts
    one op per nonzero im2col entry per output channel — the
    event-driven synaptic-operation count the hardware's aggregation
    core would execute, which is what the run statistics report.
    """
    n = x.shape[0]
    c_out, _, k, _ = weight.shape
    cols, oh, ow = im2col(x, k, stride, padding)
    w_mat = weight.reshape(c_out, -1)
    performed = int(np.count_nonzero(cols)) * c_out
    row_active = cols.any(axis=1)
    active_rows = np.flatnonzero(row_active)
    if active_rows.size == cols.shape[0]:
        out = cols @ w_mat.T
    else:
        out = np.zeros(
            (cols.shape[0], c_out), dtype=np.result_type(x.dtype, weight.dtype)
        )
        if active_rows.size:
            sub = cols[active_rows]
            active_cols = np.flatnonzero(sub.any(axis=0))
            if active_rows.size * active_cols.size < 0.25 * cols.size:
                out[active_rows] = sub[:, active_cols] @ w_mat[:, active_cols].T
            else:
                out[active_rows] = sub @ w_mat.T
    if bias is not None:
        out += bias
    out = out.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)
    return np.ascontiguousarray(out), performed


def sparse_linear(
    x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]
) -> Tuple[np.ndarray, int]:
    """Event-driven affine map over a sparse feature batch."""
    active = np.flatnonzero(x.any(axis=0))
    performed = int(np.count_nonzero(x)) * weight.shape[0]
    if active.size == x.shape[1]:
        # Every feature fires somewhere in the batch: gathering would
        # copy both operands for nothing.
        out = x @ weight.T
    else:
        out = x[:, active] @ weight[:, active].T
    if bias is not None:
        out = out + bias
    return out, performed


# ----------------------------------------------------------------------
# Multi-process batch sharding
# ----------------------------------------------------------------------
# Fork-shard context: set by the parent immediately before the pool
# fork so children inherit the engine, model weights and input batch
# copy-on-write instead of through pickling.
_SHARD_CONTEXT: Optional[tuple] = None


def _shard_worker(index: int) -> "EngineRun":
    engine, x, timesteps, per_step, bounds = _SHARD_CONTEXT
    lo, hi = bounds[index]
    return engine._run_single(x[lo:hi], timesteps, per_step)


def _run_batch_shards(
    engine: "SimulationEngine",
    x: np.ndarray,
    timesteps: int,
    per_step: bool,
    bounds: List[Tuple[int, int]],
) -> List["EngineRun"]:
    """Run contiguous batch shards, forked in parallel where possible.

    Fork is the only start method that shares the (read-only) model
    weights without serialising them; where it is unavailable the
    shards run sequentially in-process, which keeps results and merged
    statistics bit-identical to the parallel path.
    """
    global _SHARD_CONTEXT
    if len(bounds) > 1 and "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
        _SHARD_CONTEXT = (engine, x, timesteps, per_step, bounds)
        try:
            with context.Pool(processes=len(bounds)) as pool:
                return pool.map(_shard_worker, range(len(bounds)))
        finally:
            _SHARD_CONTEXT = None
    return [engine._run_single(x[lo:hi], timesteps, per_step) for lo, hi in bounds]


# An effective-weight cache entry: the exact source arrays it was
# computed from (held strongly, so their ids cannot be recycled) plus
# the result.  Every weight-update path in this repo *rebinds*
# ``param.data`` (optimizer steps and ``load_state_dict`` both assign a
# fresh array), so identity checks against the sources detect any
# training or checkpoint load and invalidate automatically.
_WeightEntry = Tuple[np.ndarray, Optional[np.ndarray], Optional[int], np.ndarray]


def _effective_weight(module: Module, cache: Dict[int, _WeightEntry]) -> np.ndarray:
    """Fake-quantised weight of ``module``, cached across runs.

    Effective weights are constant across timesteps (and across runs,
    until the parameters are rebound by training), so engines that
    bypass the module's own forward pay the fake-quant
    straight-through op once instead of per call.
    """
    key = id(module)
    source = module.weight.data
    is_quant = isinstance(module, (QuantConv2d, QuantLinear))
    scale = module.weight_scale.data if is_quant else None
    bits = module.bits if is_quant else None
    entry = cache.get(key)
    if (
        entry is not None
        and entry[0] is source
        and entry[1] is scale
        and entry[2] == bits
    ):
        return entry[3]
    if is_quant:
        with no_grad():
            weight = _WeightFakeQuant.apply(
                module.weight, module.weight_scale, module.bits
            ).data
    else:
        weight = source
    cache[key] = (source, scale, bits, weight)
    return weight


# ----------------------------------------------------------------------
# Engine interface
# ----------------------------------------------------------------------
class SimulationEngine(abc.ABC):
    """Executes a converted spiking model for T timesteps.

    Engines are bound to a model once (:meth:`bind`) and then invoked
    through :meth:`run`, which owns the timestep loop, state reset and
    statistics collection.  Subclasses customise per-layer execution by
    installing instance-level forward interceptors for the duration of
    a run, and may replace the whole-run schedule via :meth:`_execute`.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.model: Optional[Module] = None
        self._synapse_modules: List[Tuple[str, Module]] = []
        self._neuron_modules: List[Tuple[str, IFNeuron]] = []

    # ------------------------------------------------------------------
    def bind(self, model: Module) -> "SimulationEngine":
        """Attach the engine to a converted model (discovers layers)."""
        self.model = model
        self._synapse_modules = []
        self._neuron_modules = []
        for name, module in model.named_modules():
            if isinstance(module, (Conv2d, Linear)):
                self._synapse_modules.append((name or type(module).__name__, module))
            elif isinstance(module, IFNeuron):
                self._neuron_modules.append((name or type(module).__name__, module))
        return self

    # ------------------------------------------------------------------
    def run(
        self,
        x: np.ndarray,
        timesteps: int,
        per_step: bool = False,
        workers: int = 1,
    ) -> EngineRun:
        """Run a batch for T timesteps; accumulate logits in place.

        ``workers > 1`` shards the batch dimension into contiguous
        blocks executed in forked worker processes; logits are
        concatenated in batch order and per-shard statistics merged, so
        rates and op counts match a single-worker run (up to float
        summation order at shard boundaries — a shard is a smaller
        GEMM, the same caveat as any BLAS reordering).
        """
        if self.model is None:
            raise RuntimeError("engine is not bound to a model; call bind() first")
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        x = np.asarray(x)
        workers = min(int(workers), max(int(x.shape[0]), 1))
        if workers == 1:
            return self._run_single(x, timesteps, per_step)

        started = time.perf_counter()
        blocks = np.array_split(np.arange(x.shape[0]), workers)
        bounds = [(int(b[0]), int(b[-1]) + 1) for b in blocks if b.size]
        runs = _run_batch_shards(self, x, timesteps, per_step, bounds)
        logits = np.concatenate([run.logits for run in runs], axis=0)
        stats = runs[0].stats
        for run in runs[1:]:
            stats.merge(run.stats)
        stats.workers = len(bounds)
        # Shard wall clocks overlap; report the parent-observed elapsed.
        stats.wall_clock_seconds = time.perf_counter() - started
        outputs: Optional[List[np.ndarray]] = None
        if per_step:
            outputs = [
                np.concatenate([run.per_step[t] for run in runs], axis=0)
                for t in range(timesteps)
            ]
        return EngineRun(logits=logits, stats=stats, per_step=outputs)

    def _run_single(self, x: np.ndarray, timesteps: int, per_step: bool) -> EngineRun:
        """One in-process run: reset, instrument, execute, collect stats."""
        started = time.perf_counter()
        reset_network_state(self.model)
        synapse_stats = {
            name: LayerStats(name=name, kind="linear" if isinstance(m, Linear) else "conv")
            for name, m in self._synapse_modules
        }
        neuron_base = {
            name: (m.spike_count, m.neuron_steps) for name, m in self._neuron_modules
        }
        self._install(synapse_stats)
        try:
            total, outputs = self._execute(x, timesteps, per_step)
        finally:
            self._uninstall()

        layers: List[LayerStats] = []
        for name, module in self._all_layers_in_order():
            if isinstance(module, IFNeuron):
                base_spikes, base_steps = neuron_base[name]
                layers.append(
                    LayerStats(
                        name=name,
                        kind="neuron",
                        spike_count=module.spike_count - base_spikes,
                        neuron_steps=module.neuron_steps - base_steps,
                        timesteps=timesteps,
                    )
                )
            else:
                stat = synapse_stats[name]
                stat.timesteps = timesteps
                layers.append(stat)
        stats = RunStats(
            batch_size=int(x.shape[0]),
            timesteps=timesteps,
            layers=layers,
            engine=self.name,
            wall_clock_seconds=time.perf_counter() - started,
        )
        return EngineRun(logits=total, stats=stats, per_step=outputs)

    def _execute(
        self, x: np.ndarray, timesteps: int, per_step: bool
    ) -> Tuple[np.ndarray, Optional[List[np.ndarray]]]:
        """The run schedule: default is time-outer/model-inner.

        Returns ``(accumulated_logits, per_step_cumulative_or_None)``.
        Subclasses may restructure the whole schedule (e.g. the
        time-batched engine runs the model once over a ``(T*N, ...)``
        stack).
        """
        total: Optional[np.ndarray] = None
        outputs: Optional[List[np.ndarray]] = [] if per_step else None
        inp = Tensor(x)
        with no_grad():
            for _ in range(timesteps):
                logits = self.model(inp).data
                if total is None:
                    total = logits.copy()
                else:
                    total += logits
                if outputs is not None:
                    outputs.append(total.copy())
        return total, outputs

    def _all_layers_in_order(self) -> List[Tuple[str, Module]]:
        """Synapse and neuron layers interleaved in graph (registration) order."""
        synapse = dict(self._synapse_modules)
        neurons = dict(self._neuron_modules)
        ordered: List[Tuple[str, Module]] = []
        for name, module in self.model.named_modules():
            if name in synapse or name in neurons:
                ordered.append((name, module))
        return ordered

    # ------------------------------------------------------------------
    # Per-run instrumentation hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _make_interceptor(
        self, module: Module, stat: LayerStats, orig: Callable[[Tensor], Tensor]
    ) -> Callable[[Tensor], Tensor]:
        """Build the forward replacement installed on ``module`` for a run."""

    def _install(self, stats: Dict[str, LayerStats]) -> None:
        self._installed: List[Module] = []
        for name, module in self._synapse_modules:
            interceptor = self._make_interceptor(module, stats[name], module.forward)
            object.__setattr__(module, "forward", interceptor)
            self._installed.append(module)

    def _uninstall(self) -> None:
        for module in self._installed:
            if "forward" in module.__dict__:
                object.__delattr__(module, "forward")
        self._installed = []


def _dense_op_count(module: Module, x_shape: Sequence[int]) -> int:
    """MACs a dense execution of ``module`` needs on input ``x_shape``."""
    if isinstance(module, Conv2d):
        n, c, h, w = x_shape
        oh = _conv_out_size(h, module.kernel_size, module.stride, module.padding)
        ow = _conv_out_size(w, module.kernel_size, module.stride, module.padding)
        taps = c * module.kernel_size * module.kernel_size
        return n * oh * ow * taps * module.out_channels
    return int(x_shape[0]) * module.in_features * module.out_features


class DenseEngine(SimulationEngine):
    """Reference backend: full dense recompute every timestep."""

    name = "dense"

    def _make_interceptor(self, module, stat, orig):
        def forward(x: Tensor) -> Tensor:
            ops = _dense_op_count(module, x.shape)
            stat.synaptic_ops += ops
            stat.dense_synaptic_ops += ops
            return orig(x)

        return forward


class SparseEventEngine(SimulationEngine):
    """Event-driven backend: compute only active spike contributions.

    Effective (fake-quantised) weights are computed once per run and
    all conv/linear layers execute through the sparsity-adaptive
    kernels above.  ``density_threshold`` gates the *accounting*:
    inputs whose nonzero fraction reaches it (e.g. the analog input
    frame) are billed at the full dense MAC count, mirroring the
    PS-side frame convolution in the paper, instead of the
    per-spike-contribution count.
    """

    name = "event"

    def __init__(self, density_threshold: float = 0.6) -> None:
        super().__init__()
        if not 0.0 < density_threshold <= 1.0:
            raise ValueError("density_threshold must be in (0, 1]")
        self.density_threshold = density_threshold
        self._weight_cache: Dict[int, _WeightEntry] = {}
        # Last (input, output, billed ops) per layer within one run.
        # Direct encoding feeds the first conv the *same* frame array
        # every timestep, so its output is reused T-1 times — the
        # software twin of the accelerator's frame-psum cache.  The
        # identity check makes this safe for every other layer too:
        # downstream activations are fresh arrays each timestep.
        self._io_cache: Dict[int, Tuple[np.ndarray, np.ndarray, int]] = {}

    def _effective_weight(self, module: Module) -> np.ndarray:
        return _effective_weight(module, self._weight_cache)

    def _install(self, stats) -> None:
        # The weight cache survives runs (entries self-invalidate on
        # parameter rebinds); the io cache holds run-scoped activations.
        self._io_cache = {}
        super()._install(stats)

    def _uninstall(self) -> None:
        super()._uninstall()
        self._io_cache = {}

    def _make_interceptor(self, module, stat, orig):
        is_conv = isinstance(module, Conv2d)

        def forward(x: Tensor) -> Tensor:
            data = x.data
            dense_ops = _dense_op_count(module, data.shape)
            stat.dense_synaptic_ops += dense_ops
            cached = self._io_cache.get(id(module))
            if cached is not None and cached[0] is data:
                # Identical input array as last timestep (the constant
                # analog frame): reuse the output, bill the same ops.
                stat.synaptic_ops += cached[2]
                return Tensor(cached[1])
            density = np.count_nonzero(data) / max(data.size, 1)
            weight = self._effective_weight(module)
            bias = module.bias.data if module.bias is not None else None
            if density >= self.density_threshold:
                # Dense input (e.g. the analog frame): no sparsity to
                # exploit — run the plain kernel and, like the PS-side
                # frame conv, bill the full dense MAC count.
                if is_conv:
                    out = dense_conv2d(
                        data, weight, bias, module.stride, module.padding
                    )
                else:
                    out = data @ weight.T if bias is None else data @ weight.T + bias
                billed = dense_ops
            else:
                if is_conv:
                    out, billed = sparse_conv2d(
                        data, weight, bias, module.stride, module.padding
                    )
                else:
                    out, billed = sparse_linear(data, weight, bias)
            stat.synaptic_ops += billed
            self._io_cache[id(module)] = (data, out, billed)
            return Tensor(out)

        return forward


class TimeBatchedEngine(SimulationEngine):
    """Layer-sequential backend: one pass over a ``(T*N, ...)`` stack.

    The direct-coded input is tiled once along the batch axis, so every
    stateless layer executes exactly once per run — conv/linear become
    a single GEMM covering all T timesteps — and only the stateful
    neuron layers iterate over the time axis, stepping the shared
    :func:`repro.snn.dynamics.neuron_step` on a per-run membrane buffer
    vectorised over ``(N, ...)``.  This is valid for any feed-forward
    module graph (chains, residual blocks): stateless layers are
    pointwise in the batch dimension, so reordering time inside them
    changes nothing, and neuron layers see their T inputs in exactly
    the order the dense engine would feed them.

    Arithmetic is the dense reference arithmetic — same kernels, same
    per-sample summation order — so logits match ``DenseEngine``
    exactly, and op accounting bills full dense MACs like the dense
    backend.  The win is wall clock: T-fold fewer Python layer
    dispatches, T-fold larger matmuls (better BLAS utilisation), one
    im2col per layer per run, and the constant input frame's convolution
    is computed once and re-tiled instead of recomputed T times (the
    software twin of the accelerator's frame-psum cache).  Per-step
    logits fall out of the explicit time axis for free, which makes
    accuracy-vs-timesteps sweeps the biggest beneficiary.
    """

    name = "batched"

    def __init__(self) -> None:
        super().__init__()
        self._weight_cache: Dict[int, _WeightEntry] = {}
        # Arrays known to be T-fold tilings of an (N, ...) prefix, keyed
        # by id.  Strong references keep ids stable for the run's
        # duration.  Seeded with the tiled input; a synapse layer fed a
        # constant array computes its N-batch output once and re-tiles,
        # propagating constancy until a stateful layer breaks it.
        self._constant_arrays: Dict[int, np.ndarray] = {}
        self._run_timesteps = 0
        self._run_batch = 0
        self._stateless_modules: List[Module] = []

    def bind(self, model: Module) -> "TimeBatchedEngine":
        super().bind(model)
        self._stateless_modules = [
            module
            for _, module in model.named_modules()
            if isinstance(module, (BatchNorm2d, AvgPool2d, MaxPool2d))
        ]
        return self

    # ------------------------------------------------------------------
    def _execute(
        self, x: np.ndarray, timesteps: int, per_step: bool
    ) -> Tuple[np.ndarray, Optional[List[np.ndarray]]]:
        n = int(x.shape[0])
        self._run_timesteps = timesteps
        self._run_batch = n
        tiled = self._tile_constant(x)
        with no_grad():
            out = self.model(Tensor(tiled)).data
        stepped = out.reshape((timesteps, n) + out.shape[1:])
        # Sequential cumulative sum over the time axis: identical float
        # summation order to the dense engine's ``total += logits``.
        cumulative = np.cumsum(stepped, axis=0)
        total = np.ascontiguousarray(cumulative[-1])
        outputs = None
        if per_step:
            outputs = [np.ascontiguousarray(cumulative[t]) for t in range(timesteps)]
        return total, outputs

    def _tile_constant(self, out: np.ndarray) -> np.ndarray:
        """Tile an (N, ...) array into the (T*N, ...) stack and mark it
        constant, so downstream stateless layers can keep computing on
        the N-batch prefix only."""
        tiled = np.ascontiguousarray(
            np.broadcast_to(out, (self._run_timesteps,) + out.shape)
        ).reshape((self._run_timesteps * out.shape[0],) + out.shape[1:])
        self._constant_arrays[id(tiled)] = tiled
        return tiled

    # ------------------------------------------------------------------
    def _install(self, stats) -> None:
        # The weight cache survives runs (entries self-invalidate on
        # parameter rebinds); constant-tiling tags are run-scoped.
        self._constant_arrays = {}
        super()._install(stats)
        for _, module in self._neuron_modules:
            interceptor = self._make_neuron_interceptor(module)
            object.__setattr__(module, "forward", interceptor)
            self._installed.append(module)
        for module in self._stateless_modules:
            interceptor = self._make_stateless_interceptor(module)
            object.__setattr__(module, "forward", interceptor)
            self._installed.append(module)

    def _uninstall(self) -> None:
        super()._uninstall()
        self._constant_arrays = {}

    # ------------------------------------------------------------------
    def _make_interceptor(self, module, stat, orig):
        is_conv = isinstance(module, Conv2d)

        def forward(x: Tensor) -> Tensor:
            data = x.data
            ops = _dense_op_count(module, data.shape)
            stat.synaptic_ops += ops
            stat.dense_synaptic_ops += ops
            weight = _effective_weight(module, self._weight_cache)
            bias = module.bias.data if module.bias is not None else None
            constant = id(data) in self._constant_arrays
            work = data[: self._run_batch] if constant else data
            if is_conv:
                out = dense_conv2d(work, weight, bias, module.stride, module.padding)
            else:
                out = work @ weight.T
                if bias is not None:
                    out += bias
            if constant:
                out = self._tile_constant(out)
            return Tensor(out)

        return forward

    def _make_stateless_interceptor(
        self, module: Module
    ) -> Callable[[Tensor], Tensor]:
        """Constancy propagation + lean eval-BN through stateless layers.

        A stateless layer fed a known T-fold tiling computes its output
        on the N-batch prefix once and re-tiles; any other input runs
        once over the full (T*N, ...) stack.  Eval-mode BatchNorm runs
        the module's exact arithmetic directly on the ndarray — the
        same op sequence, so results are bitwise identical to the dense
        engine's, without the autograd wrappers.  Training-mode
        BatchNorm depends on whole-batch statistics, so it always falls
        back to the module's own forward on the full stack.
        """
        orig = module.forward
        is_bn = isinstance(module, BatchNorm2d)
        bn_terms: List[Optional[Tuple[np.ndarray, ...]]] = [None]

        def forward(x: Tensor) -> Tensor:
            data = x.data
            if module.training:
                return orig(x)
            constant = id(data) in self._constant_arrays
            work = data[: self._run_batch] if constant else data
            if is_bn:
                if bn_terms[0] is None:
                    shape = (1, module.num_features, 1, 1)
                    mu = module.running_mean.reshape(shape)
                    inv = (module.running_var.reshape(shape) + module.eps) ** -0.5
                    bn_terms[0] = (
                        mu,
                        inv,
                        module.gamma.data.reshape(shape),
                        module.beta.data.reshape(shape),
                    )
                mu, inv, g, b = bn_terms[0]
                out = ((work - mu) * inv) * g + b
            elif constant:
                out = orig(Tensor(work)).data
            else:
                return orig(x)
            return Tensor(self._tile_constant(out) if constant else out)

        return forward

    def _make_neuron_interceptor(
        self, module: IFNeuron
    ) -> Callable[[Tensor], Tensor]:
        def forward(x: Tensor) -> Tensor:
            data = x.data
            t = self._run_timesteps
            n = data.shape[0] // t
            stacked = data.reshape((t, n) + data.shape[1:])
            leak_fn = module._leak_fn()
            # The membrane buffer is private to this run (reset to None
            # at run start), so stepping integrates in place; the spike
            # plane is scaled by the threshold as it is stored (one
            # fused pass per step instead of an extra (T*N, ...)
            # multiply at the end).
            v = module.v
            if v is None:
                v = initial_membrane(
                    stacked.shape[1:],
                    module.threshold,
                    module.v_init_fraction,
                    dtype=data.dtype,
                )
            out = np.empty(stacked.shape, dtype=np.float32)
            for step in range(t):
                v, spiked = neuron_step(
                    v,
                    stacked[step],
                    module.threshold,
                    reset=module.reset,
                    leak_fn=leak_fn,
                    in_place=True,
                )
                np.multiply(
                    spiked, module.threshold, out=out[step], casting="unsafe"
                )
            module.v = v
            # Spikes are exactly 0 or threshold (> 0), so one count over
            # the whole (T, N, ...) plane replaces T small reductions.
            module.spike_count += int(np.count_nonzero(out))
            module.neuron_steps += int(out.size)
            module.last_spikes = out[-1] / module.threshold
            return Tensor(out.reshape(data.shape))

        return forward


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
ENGINES = {
    "dense": DenseEngine,
    "event": SparseEventEngine,
    "sparse": SparseEventEngine,  # alias
    "batched": TimeBatchedEngine,
    "time-batched": TimeBatchedEngine,  # alias
}

EngineSpec = Union[str, SimulationEngine]


def make_engine(spec: EngineSpec = "dense") -> SimulationEngine:
    """Resolve an engine name or pass an instance through."""
    if isinstance(spec, SimulationEngine):
        return spec
    if isinstance(spec, str):
        try:
            return ENGINES[spec.lower()]()
        except KeyError:
            raise ValueError(
                f"unknown engine {spec!r}; choose from {sorted(set(ENGINES))}"
            ) from None
    raise TypeError(f"engine must be a name or SimulationEngine, got {type(spec)!r}")
