"""Backward-compatible facade over :mod:`repro.snn.engines`.

The engine layer grew from one 800-line module into the
``repro.snn.engines`` package (``base`` / ``dense`` / ``event`` /
``batched`` / ``auto`` plus the ``profiling`` and ``sharding``
infrastructure).  Every public name that ever lived here keeps
importing from this module unchanged::

    from repro.snn.engine import DenseEngine, SparseEventEngine, TimeBatchedEngine
    from repro.snn.engine import make_engine, sparse_conv2d, sparse_linear

New code should import from :mod:`repro.snn.engines` directly.
"""

from __future__ import annotations

from repro.snn.engines import (
    AutoEngine,
    DenseEngine,
    ENGINES,
    conv_active_windows,
    pooled_coords,
    EngineRun,
    EngineSpec,
    ExecutionPlan,
    LRUCache,
    LayerDecision,
    SHARD_MODES,
    SimulationEngine,
    SparseEventEngine,
    TimeBatchedEngine,
    WEIGHT_CACHE_CAPACITY,
    clone_for_inference,
    dense_conv2d,
    fork_available,
    make_engine,
    profiled_call,
    resolve_shard_mode,
    sparse_conv2d,
    sparse_linear,
)
from repro.snn.engines.base import _dense_op_count, _effective_weight

__all__ = [
    "AutoEngine",
    "DenseEngine",
    "ENGINES",
    "EngineRun",
    "EngineSpec",
    "ExecutionPlan",
    "LRUCache",
    "LayerDecision",
    "SHARD_MODES",
    "SimulationEngine",
    "SparseEventEngine",
    "TimeBatchedEngine",
    "WEIGHT_CACHE_CAPACITY",
    "clone_for_inference",
    "conv_active_windows",
    "dense_conv2d",
    "fork_available",
    "make_engine",
    "pooled_coords",
    "profiled_call",
    "resolve_shard_mode",
    "sparse_conv2d",
    "sparse_linear",
]
