"""Pluggable simulation engines for timestep-unrolled SNN execution.

The paper's central claim is that event-driven, sparsity-exploiting
execution is what makes the accelerator fast: per timestep the hardware
only pays for kernel-row segments that actually carry spikes.  The
software simulator historically did the opposite — it re-ran the full
dense model every timestep, O(T x dense) regardless of spike rate.

This module restructures SNN execution into an engine layer with two
backends behind one :class:`SimulationEngine` interface:

``DenseEngine``
    The reference backend: one dense forward pass of the converted
    model per timestep (exactly the old ``SpikingNetwork`` behaviour).

``SparseEventEngine``
    Propagates only active spike events.  Conv and linear layers whose
    input plane is sparse are executed by gathering the active im2col
    rows (output windows touched by at least one spike) and the active
    columns (taps that carry a spike anywhere in the batch) and
    multiplying only that submatrix — per-timestep matmul cost scales
    with spike rate, mirroring the paper's aggregation core.  Dense
    inputs (the analog input frame, like the PS-side frame conv in
    §IV) fall back to the dense kernel.

Both engines run the *same* module graph — the event backend installs
per-instance forward interceptors on conv/linear modules for the
duration of a run — so arbitrary models (VGG chains, ResNet residual
graphs) work identically on either backend, and their logits agree up
to float summation order.

Every run produces a :class:`repro.snn.stats.RunStats` with per-layer
spike rates and performed-vs-dense synaptic-op counts, the single
instrumentation point consumed by ``SpikingNetwork``, the spike-rate
experiments and the engine benchmarks.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.nn.quant import QuantConv2d, QuantLinear, _WeightFakeQuant
from repro.snn.convert import reset_network_state
from repro.snn.neurons import IFNeuron
from repro.snn.stats import LayerStats, RunStats
from repro.tensor import Tensor, no_grad
from repro.tensor.functional import im2col


@dataclass
class EngineRun:
    """Result of one engine invocation."""

    logits: np.ndarray
    stats: RunStats
    per_step: Optional[List[np.ndarray]] = None


# ----------------------------------------------------------------------
# Sparse kernels
# ----------------------------------------------------------------------
def _conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def dense_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Plain im2col convolution (the reference kernel, no sparsity scans)."""
    n = x.shape[0]
    c_out, _, k, _ = weight.shape
    cols, oh, ow = im2col(x, k, stride, padding)
    out = cols @ weight.reshape(c_out, -1).T
    if bias is not None:
        out += bias
    return np.ascontiguousarray(out.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2))


def sparse_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: int,
    padding: int,
) -> Tuple[np.ndarray, int]:
    """Event-driven convolution of a sparse activation plane.

    Gathers the active im2col rows (output windows touched by at least
    one spike) and the active columns (taps carrying a spike anywhere
    in the batch) and multiplies only that submatrix when it is a
    genuine shrink; silent windows contribute exactly zero (plus
    bias), so the result equals the dense convolution up to float
    summation order.  When the submatrix is not meaningfully smaller
    the full matrix is multiplied — on this numpy substrate a dense
    BLAS matmul outruns any per-element sparse route at moderate
    densities, so the gather gate is what keeps the event backend at
    wall-clock parity with dense outside the very sparse regime where
    it wins outright.

    Returns ``(output, performed_ops)`` where ``performed_ops`` counts
    one op per nonzero im2col entry per output channel — the
    event-driven synaptic-operation count the hardware's aggregation
    core would execute, which is what the run statistics report.
    """
    n = x.shape[0]
    c_out, _, k, _ = weight.shape
    cols, oh, ow = im2col(x, k, stride, padding)
    w_mat = weight.reshape(c_out, -1)
    performed = int(np.count_nonzero(cols)) * c_out
    row_active = cols.any(axis=1)
    active_rows = np.flatnonzero(row_active)
    if active_rows.size == cols.shape[0]:
        out = cols @ w_mat.T
    else:
        out = np.zeros(
            (cols.shape[0], c_out), dtype=np.result_type(x.dtype, weight.dtype)
        )
        if active_rows.size:
            sub = cols[active_rows]
            active_cols = np.flatnonzero(sub.any(axis=0))
            if active_rows.size * active_cols.size < 0.25 * cols.size:
                out[active_rows] = sub[:, active_cols] @ w_mat[:, active_cols].T
            else:
                out[active_rows] = sub @ w_mat.T
    if bias is not None:
        out += bias
    out = out.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)
    return np.ascontiguousarray(out), performed


def sparse_linear(
    x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]
) -> Tuple[np.ndarray, int]:
    """Event-driven affine map over a sparse feature batch."""
    active = np.flatnonzero(x.any(axis=0))
    performed = int(np.count_nonzero(x)) * weight.shape[0]
    if active.size == x.shape[1]:
        # Every feature fires somewhere in the batch: gathering would
        # copy both operands for nothing.
        out = x @ weight.T
    else:
        out = x[:, active] @ weight[:, active].T
    if bias is not None:
        out = out + bias
    return out, performed


# ----------------------------------------------------------------------
# Engine interface
# ----------------------------------------------------------------------
class SimulationEngine(abc.ABC):
    """Executes a converted spiking model for T timesteps.

    Engines are bound to a model once (:meth:`bind`) and then invoked
    through :meth:`run`, which owns the timestep loop, state reset and
    statistics collection.  Subclasses customise per-layer execution by
    installing instance-level forward interceptors for the duration of
    a run.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.model: Optional[Module] = None
        self._synapse_modules: List[Tuple[str, Module]] = []
        self._neuron_modules: List[Tuple[str, IFNeuron]] = []

    # ------------------------------------------------------------------
    def bind(self, model: Module) -> "SimulationEngine":
        """Attach the engine to a converted model (discovers layers)."""
        self.model = model
        self._synapse_modules = []
        self._neuron_modules = []
        for name, module in model.named_modules():
            if isinstance(module, (Conv2d, Linear)):
                self._synapse_modules.append((name or type(module).__name__, module))
            elif isinstance(module, IFNeuron):
                self._neuron_modules.append((name or type(module).__name__, module))
        return self

    # ------------------------------------------------------------------
    def run(self, x: np.ndarray, timesteps: int, per_step: bool = False) -> EngineRun:
        """Run a batch for T timesteps; accumulate logits in place."""
        if self.model is None:
            raise RuntimeError("engine is not bound to a model; call bind() first")
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        x = np.asarray(x)
        started = time.perf_counter()
        reset_network_state(self.model)
        synapse_stats = {
            name: LayerStats(name=name, kind="linear" if isinstance(m, Linear) else "conv")
            for name, m in self._synapse_modules
        }
        neuron_base = {
            name: (m.spike_count, m.neuron_steps) for name, m in self._neuron_modules
        }
        self._install(synapse_stats)
        total: Optional[np.ndarray] = None
        outputs: Optional[List[np.ndarray]] = [] if per_step else None
        try:
            inp = Tensor(x)
            with no_grad():
                for _ in range(timesteps):
                    logits = self.model(inp).data
                    if total is None:
                        total = logits.copy()
                    else:
                        total += logits
                    if outputs is not None:
                        outputs.append(total.copy())
        finally:
            self._uninstall()

        layers: List[LayerStats] = []
        for name, module in self._all_layers_in_order():
            if isinstance(module, IFNeuron):
                base_spikes, base_steps = neuron_base[name]
                layers.append(
                    LayerStats(
                        name=name,
                        kind="neuron",
                        spike_count=module.spike_count - base_spikes,
                        neuron_steps=module.neuron_steps - base_steps,
                        timesteps=timesteps,
                    )
                )
            else:
                stat = synapse_stats[name]
                stat.timesteps = timesteps
                layers.append(stat)
        stats = RunStats(
            batch_size=int(x.shape[0]),
            timesteps=timesteps,
            layers=layers,
            engine=self.name,
            wall_clock_seconds=time.perf_counter() - started,
        )
        return EngineRun(logits=total, stats=stats, per_step=outputs)

    def _all_layers_in_order(self) -> List[Tuple[str, Module]]:
        """Synapse and neuron layers interleaved in graph (registration) order."""
        synapse = dict(self._synapse_modules)
        neurons = dict(self._neuron_modules)
        ordered: List[Tuple[str, Module]] = []
        for name, module in self.model.named_modules():
            if name in synapse or name in neurons:
                ordered.append((name, module))
        return ordered

    # ------------------------------------------------------------------
    # Per-run instrumentation hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _make_interceptor(
        self, module: Module, stat: LayerStats, orig: Callable[[Tensor], Tensor]
    ) -> Callable[[Tensor], Tensor]:
        """Build the forward replacement installed on ``module`` for a run."""

    def _install(self, stats: Dict[str, LayerStats]) -> None:
        self._installed: List[Module] = []
        for name, module in self._synapse_modules:
            interceptor = self._make_interceptor(module, stats[name], module.forward)
            object.__setattr__(module, "forward", interceptor)
            self._installed.append(module)

    def _uninstall(self) -> None:
        for module in self._installed:
            if "forward" in module.__dict__:
                object.__delattr__(module, "forward")
        self._installed = []


def _dense_op_count(module: Module, x_shape: Sequence[int]) -> int:
    """MACs a dense execution of ``module`` needs on input ``x_shape``."""
    if isinstance(module, Conv2d):
        n, c, h, w = x_shape
        oh = _conv_out_size(h, module.kernel_size, module.stride, module.padding)
        ow = _conv_out_size(w, module.kernel_size, module.stride, module.padding)
        taps = c * module.kernel_size * module.kernel_size
        return n * oh * ow * taps * module.out_channels
    return int(x_shape[0]) * module.in_features * module.out_features


class DenseEngine(SimulationEngine):
    """Reference backend: full dense recompute every timestep."""

    name = "dense"

    def _make_interceptor(self, module, stat, orig):
        def forward(x: Tensor) -> Tensor:
            ops = _dense_op_count(module, x.shape)
            stat.synaptic_ops += ops
            stat.dense_synaptic_ops += ops
            return orig(x)

        return forward


class SparseEventEngine(SimulationEngine):
    """Event-driven backend: compute only active spike contributions.

    Effective (fake-quantised) weights are computed once per run and
    all conv/linear layers execute through the sparsity-adaptive
    kernels above.  ``density_threshold`` gates the *accounting*:
    inputs whose nonzero fraction reaches it (e.g. the analog input
    frame) are billed at the full dense MAC count, mirroring the
    PS-side frame convolution in the paper, instead of the
    per-spike-contribution count.
    """

    name = "event"

    def __init__(self, density_threshold: float = 0.6) -> None:
        super().__init__()
        if not 0.0 < density_threshold <= 1.0:
            raise ValueError("density_threshold must be in (0, 1]")
        self.density_threshold = density_threshold
        self._weight_cache: Dict[int, np.ndarray] = {}
        # Last (input, output, billed ops) per layer within one run.
        # Direct encoding feeds the first conv the *same* frame array
        # every timestep, so its output is reused T-1 times — the
        # software twin of the accelerator's frame-psum cache.  The
        # identity check makes this safe for every other layer too:
        # downstream activations are fresh arrays each timestep.
        self._io_cache: Dict[int, Tuple[np.ndarray, np.ndarray, int]] = {}

    # Effective (fake-quantised) weights are constant across timesteps,
    # so they are computed once per run instead of per forward call.
    def _effective_weight(self, module: Module) -> np.ndarray:
        key = id(module)
        if key not in self._weight_cache:
            if isinstance(module, (QuantConv2d, QuantLinear)):
                with no_grad():
                    weight = _WeightFakeQuant.apply(
                        module.weight, module.weight_scale, module.bits
                    ).data
            else:
                weight = module.weight.data
            self._weight_cache[key] = weight
        return self._weight_cache[key]

    def _install(self, stats) -> None:
        self._weight_cache = {}
        self._io_cache = {}
        super()._install(stats)

    def _uninstall(self) -> None:
        super()._uninstall()
        self._weight_cache = {}
        self._io_cache = {}

    def _make_interceptor(self, module, stat, orig):
        is_conv = isinstance(module, Conv2d)

        def forward(x: Tensor) -> Tensor:
            data = x.data
            dense_ops = _dense_op_count(module, data.shape)
            stat.dense_synaptic_ops += dense_ops
            cached = self._io_cache.get(id(module))
            if cached is not None and cached[0] is data:
                # Identical input array as last timestep (the constant
                # analog frame): reuse the output, bill the same ops.
                stat.synaptic_ops += cached[2]
                return Tensor(cached[1])
            density = np.count_nonzero(data) / max(data.size, 1)
            weight = self._effective_weight(module)
            bias = module.bias.data if module.bias is not None else None
            if density >= self.density_threshold:
                # Dense input (e.g. the analog frame): no sparsity to
                # exploit — run the plain kernel and, like the PS-side
                # frame conv, bill the full dense MAC count.
                if is_conv:
                    out = dense_conv2d(
                        data, weight, bias, module.stride, module.padding
                    )
                else:
                    out = data @ weight.T if bias is None else data @ weight.T + bias
                billed = dense_ops
            else:
                if is_conv:
                    out, billed = sparse_conv2d(
                        data, weight, bias, module.stride, module.padding
                    )
                else:
                    out, billed = sparse_linear(data, weight, bias)
            stat.synaptic_ops += billed
            self._io_cache[id(module)] = (data, out, billed)
            return Tensor(out)

        return forward


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
ENGINES = {
    "dense": DenseEngine,
    "event": SparseEventEngine,
    "sparse": SparseEventEngine,  # alias
}

EngineSpec = Union[str, SimulationEngine]


def make_engine(spec: EngineSpec = "dense") -> SimulationEngine:
    """Resolve an engine name or pass an instance through."""
    if isinstance(spec, SimulationEngine):
        return spec
    if isinstance(spec, str):
        try:
            return ENGINES[spec.lower()]()
        except KeyError:
            raise ValueError(
                f"unknown engine {spec!r}; choose from {sorted(set(ENGINES))}"
            ) from None
    raise TypeError(f"engine must be a name or SimulationEngine, got {type(spec)!r}")
