"""Spike-activity statistics (paper Figs. 6 and 8).

The paper reports the average number of spikes per neuron per timestep
for every spiking layer, observing ≈0.12 overall for ResNet-18 and
≈0.16 for VGG-11 with *no decreasing trend in deeper layers* — a
consequence of reset-by-subtraction plus per-layer learned thresholds.

The numbers here are a thin view over the unified
:class:`repro.snn.stats.RunStats` instrumentation that every execution
backend (dense engine, event engine, integer accelerator) produces, so
Fig. 6/8 rates come from the same measurement point as the cycle and
synaptic-op accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.snn.network import SpikingNetwork
from repro.snn.stats import RunStats


@dataclass(frozen=True)
class SpikeStats:
    """Per-layer and aggregate spike rates of one evaluation run."""

    per_layer: List[float]  # average spikes / neuron / timestep, by depth
    overall: float          # mean over layers weighted by neuron count
    timesteps: int
    samples: int

    @classmethod
    def from_run(cls, run: RunStats, samples: Optional[int] = None) -> "SpikeStats":
        """Project the spiking-layer rates out of a unified run record."""
        return cls(
            per_layer=run.spike_rates(),
            overall=run.overall_spike_rate,
            timesteps=run.timesteps,
            samples=run.batch_size if samples is None else samples,
        )

    def layer_table(self) -> str:
        """Render an aligned text table (layer #, rate)."""
        lines = ["layer  avg_spikes_per_timestep"]
        for idx, rate in enumerate(self.per_layer, start=1):
            lines.append(f"{idx:>5}  {rate:.4f}")
        lines.append(f"overall  {self.overall:.4f}")
        return "\n".join(lines)


def collect_spike_stats(
    network: SpikingNetwork,
    x: np.ndarray,
    timesteps: int | None = None,
    batch_size: int = 256,
) -> SpikeStats:
    """Run ``x`` through the network and gather spike-rate statistics.

    The per-layer rate is ``total spikes / (neurons * timesteps *
    samples)`` — exactly the quantity on the y-axis of paper Figs. 6/8.
    Statistics come from the engine's unified run records, merged over
    the evaluation batches.
    """
    # A SpikeStream input (event-driven mode) carries its own T.
    steps = network._resolve_timesteps(timesteps, x)
    merged: Optional[RunStats] = None
    for start in range(0, len(x), batch_size):
        network.forward(x[start : start + batch_size], steps)
        run = network.last_run_stats
        merged = run if merged is None else merged.merge(run)
    if merged is None:
        raise ValueError("cannot collect spike statistics from an empty dataset")
    return SpikeStats.from_run(merged, samples=len(x))
