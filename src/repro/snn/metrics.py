"""Spike-activity statistics (paper Figs. 6 and 8).

The paper reports the average number of spikes per neuron per timestep
for every spiking layer, observing ≈0.12 overall for ResNet-18 and
≈0.16 for VGG-11 with *no decreasing trend in deeper layers* — a
consequence of reset-by-subtraction plus per-layer learned thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.nn.module import Module
from repro.snn.convert import reset_network_stats, spiking_layers
from repro.snn.network import SpikingNetwork


@dataclass(frozen=True)
class SpikeStats:
    """Per-layer and aggregate spike rates of one evaluation run."""

    per_layer: List[float]  # average spikes / neuron / timestep, by depth
    overall: float          # mean over layers weighted by neuron count
    timesteps: int
    samples: int

    def layer_table(self) -> str:
        """Render an aligned text table (layer #, rate)."""
        lines = ["layer  avg_spikes_per_timestep"]
        for idx, rate in enumerate(self.per_layer, start=1):
            lines.append(f"{idx:>5}  {rate:.4f}")
        lines.append(f"overall  {self.overall:.4f}")
        return "\n".join(lines)


def collect_spike_stats(
    network: SpikingNetwork,
    x: np.ndarray,
    timesteps: int | None = None,
    batch_size: int = 256,
) -> SpikeStats:
    """Run ``x`` through the network and gather spike-rate statistics.

    The per-layer rate is ``total spikes / (neurons * timesteps *
    samples)`` — exactly the quantity on the y-axis of paper Figs. 6/8.
    """
    steps = timesteps or network.timesteps
    model: Module = network.model
    reset_network_stats(model)
    for start in range(0, len(x), batch_size):
        network.forward(x[start : start + batch_size], steps)
    layers = spiking_layers(model)
    per_layer = [layer.average_spike_rate for layer in layers]
    weights = np.array([layer.neuron_steps for layer in layers], dtype=np.float64)
    counts = np.array([layer.spike_count for layer in layers], dtype=np.float64)
    overall = float(counts.sum() / weights.sum()) if weights.sum() > 0 else 0.0
    return SpikeStats(
        per_layer=per_layer, overall=overall, timesteps=steps, samples=len(x)
    )
