"""Timestep-unrolled execution of a converted spiking network.

``SpikingNetwork`` wraps a converted model and runs it for T timesteps
with direct (constant-current) input encoding, accumulating the output
logits.  Classification uses the accumulated logits — the standard
readout for ANN-to-SNN converted networks and the one the accelerator's
host-side software implements.

Execution is delegated to a pluggable :mod:`repro.snn.engines`
backend: ``engine="dense"`` re-runs the full model every timestep (the
reference), ``engine="event"`` propagates only active spike events so
per-timestep cost scales with spike rate, like the paper's hardware,
``engine="batched"`` time-batches all T timesteps into one
layer-sequential pass, and ``engine="auto"`` profiles a calibration
run and compiles a cached per-layer GEMM/event plan (the fastest
software path).  ``workers=K`` shards every batch across K forked
processes or threads (``shard_mode``).  Every run leaves a
:class:`repro.snn.stats.RunStats` on ``last_run_stats`` with per-layer
spike rates, synaptic-op counts and the wall-clock/density profile
behind ``RunStats.profile_table()``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.module import Module
from repro.snn.convert import spiking_layers
from repro.snn.engines import EngineSpec, SimulationEngine, make_engine
from repro.snn.engines.sharding import SHARD_MODES, ShardPolicy
from repro.snn.spikes import SpikeStream
from repro.snn.stats import RunStats


class SpikingNetwork:
    """Run a converted SNN over time.

    Parameters
    ----------
    model:
        A model whose activations have been converted with
        :func:`repro.snn.convert.convert_to_snn`.
    timesteps:
        Default number of timesteps T per inference.
    engine:
        Execution backend: ``"dense"``, ``"event"``, ``"batched"``,
        ``"auto"`` or a bound-ready
        :class:`repro.snn.engines.SimulationEngine` instance.
    workers:
        Default number of batch shards run in parallel per inference
        (1 = in-process).  Statistics of a sharded run are merged and
        match a single-worker run.
    shard_mode:
        Parallel substrate for ``workers > 1``: ``"fork"`` (worker
        processes sharing weights copy-on-write), ``"thread"`` (a
        thread pool over weight-sharing model clones; works where fork
        is unavailable) or ``"auto"`` (fork where available, threads
        otherwise).
    shard_policy:
        Failure-handling knobs for sharded runs
        (:class:`repro.snn.engines.sharding.ShardPolicy`: per-attempt
        timeout, bounded retries, backoff).  ``None`` uses the default
        policy (capture + retry + degradation, no hang deadline).
    """

    def __init__(
        self,
        model: Module,
        timesteps: int = 8,
        engine: EngineSpec = "dense",
        workers: int = 1,
        shard_mode: str = "auto",
        shard_policy: Optional[ShardPolicy] = None,
    ) -> None:
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if shard_mode not in SHARD_MODES:
            raise ValueError(
                f"unknown shard_mode {shard_mode!r}; choose from {SHARD_MODES}"
            )
        if not spiking_layers(model):
            raise ValueError("model has no spiking layers; convert it first")
        self.model = model
        self.model.eval()
        self.timesteps = timesteps
        self.workers = int(workers)
        self.shard_mode = shard_mode
        self.shard_policy = shard_policy
        self.engine: SimulationEngine = make_engine(engine)
        if self.engine.model is not None and self.engine.model is not model:
            # Rebinding would silently redirect the other network's
            # runs to this model; demand a fresh instance instead.
            raise ValueError(
                "engine instance is already bound to a different model; "
                "pass a fresh engine or select one by name"
            )
        self.engine.bind(model)
        self.last_run_stats: Optional[RunStats] = None

    def _resolve_timesteps(self, timesteps: Optional[int], x=None) -> int:
        """Explicit validation: 0 is an error, not 'use the default'.

        A :class:`repro.snn.spikes.SpikeStream` input carries its own
        time axis, so with no explicit override its T wins over the
        network default (an explicit mismatch still fails loudly in the
        engine).
        """
        if timesteps is None and isinstance(x, SpikeStream):
            return x.timesteps
        steps = self.timesteps if timesteps is None else timesteps
        if steps < 1:
            raise ValueError("timesteps must be >= 1")
        return steps

    def _resolve_workers(self, workers: Optional[int]) -> int:
        count = self.workers if workers is None else workers
        if count < 1:
            raise ValueError("workers must be >= 1")
        return count

    def _resolve_shard_mode(self, shard_mode: Optional[str]) -> str:
        return self.shard_mode if shard_mode is None else shard_mode

    def forward(
        self,
        x: np.ndarray,
        timesteps: Optional[int] = None,
        workers: Optional[int] = None,
        shard_mode: Optional[str] = None,
    ) -> np.ndarray:
        """Accumulated logits after T timesteps for a batch ``x``.

        ``x`` is a dense direct-coded batch (N, C, H, W) or a COO
        :class:`repro.snn.spikes.SpikeStream` (event-driven input).
        """
        run = self.engine.run(
            x,
            self._resolve_timesteps(timesteps, x),
            workers=self._resolve_workers(workers),
            shard_mode=self._resolve_shard_mode(shard_mode),
            shard_policy=self.shard_policy,
        )
        self.last_run_stats = run.stats
        return run.logits

    __call__ = forward

    def forward_per_step(
        self,
        x: np.ndarray,
        timesteps: Optional[int] = None,
        workers: Optional[int] = None,
        shard_mode: Optional[str] = None,
    ) -> List[np.ndarray]:
        """Cumulative logits after each timestep (for accuracy-vs-T curves).

        Returns a list of length T where entry t is the logits summed
        over timesteps 0..t.  One pass of this costs the same as a
        single forward at the maximum T, so accuracy-vs-timesteps
        figures (paper Figs. 7, 9) need only one sweep of the data —
        and the time-batched engine produces the whole curve from its
        single layer-sequential pass.
        """
        run = self.engine.run(
            x,
            self._resolve_timesteps(timesteps, x),
            per_step=True,
            workers=self._resolve_workers(workers),
            shard_mode=self._resolve_shard_mode(shard_mode),
            shard_policy=self.shard_policy,
        )
        self.last_run_stats = run.stats
        return run.per_step

    def predict(self, x: np.ndarray, timesteps: Optional[int] = None) -> np.ndarray:
        """Class predictions for a batch."""
        return self.forward(x, timesteps).argmax(axis=-1)

    def accuracy(
        self,
        x: np.ndarray,
        y: np.ndarray,
        timesteps: Optional[int] = None,
        batch_size: int = 256,
    ) -> float:
        """Top-1 accuracy over a dataset, evaluated in batches."""
        correct = 0
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            correct += int((self.predict(xb, timesteps) == yb).sum())
        return correct / len(x)

    def accuracy_per_step(
        self,
        x: np.ndarray,
        y: np.ndarray,
        timesteps: Optional[int] = None,
        batch_size: int = 256,
    ) -> List[float]:
        """Accuracy after each timestep 1..T (paper Figs. 7 and 9)."""
        steps = self._resolve_timesteps(timesteps, x)
        correct = np.zeros(steps, dtype=np.int64)
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            for t, logits in enumerate(self.forward_per_step(xb, steps)):
                correct[t] += int((logits.argmax(axis=-1) == yb).sum())
        return [c / len(x) for c in correct]
