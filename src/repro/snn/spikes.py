"""First-class COO spike dataflow: the :class:`SpikeStream` type.

The paper's platform is event-driven end-to-end — the ZYNQ PS "can
transfer event-driven data streams directly to the SIA" (§IV) — so the
reproduction carries spikes as *coordinates*, not dense planes, wherever
the consumer only needs to know where the spikes are:

:class:`SpikeStream`
    One batch of spiking input over T timesteps in COO form —
    ``coords`` (event, batch-space coordinate rows), ``timestep`` (one
    entry per event) and the per-timestep dense ``shape`` as metadata.
    Produced zero-densification by :meth:`repro.data.events.EventStream.
    to_spike_stream` and :func:`repro.data.encodings.rate_encode_stream`,
    consumed natively by every :mod:`repro.snn.engines` backend and by
    the integer accelerator model (:mod:`repro.hw.accelerator`).

:class:`StepSpikes`
    One timestep's slice of a stream (or of an inter-layer activation
    plane inside the event engine): coordinates over a single dense
    shape.  The event engine derives gathers, active-row selection and
    performed-op counts directly from these coordinates instead of
    scanning densified planes.

:class:`SpikeTrace`
    The per-synapse-layer observed input densities of one run —
    measured stream metadata in a compact, serialisable form that the
    hardware latency/traffic/throughput models accept in place of an
    assumed flat spike rate (Tables I and IV, DRAM traffic).

Dense GEMM remains the wall-clock fast path at the paper's spike rates
(a BLAS matmul outruns gather/scatter routes well past 10% density on
this numpy substrate); the COO representation is an *accounting and
memory fidelity* structure — op counts, traffic bytes and calibration
densities come from actual event coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["SpikeStream", "StepSpikes", "SpikeTrace"]


def _as_coords(coords: np.ndarray, ndim: int) -> np.ndarray:
    coords = np.asarray(coords)
    if coords.size == 0:
        return coords.reshape(0, ndim).astype(np.int64)
    if coords.ndim != 2 or coords.shape[1] != ndim:
        raise ValueError(
            f"coords must be (events, {ndim}) for a rank-{ndim} plane, "
            f"got {coords.shape}"
        )
    return coords.astype(np.int64, copy=False)


@dataclass(frozen=True)
class StepSpikes:
    """One timestep's spikes in COO form over a dense ``shape``.

    ``values`` is ``None`` for binary events (amplitude 1.0) — the
    common case for encoded input and for spike planes, whose uniform
    amplitude (the layer threshold) rides on ``scale`` instead so the
    coordinates stay amplitude-free.  Non-uniform amplitudes (an analog
    frame expressed as a stream, average-pooled spike planes) carry an
    explicit per-event ``values`` array.
    """

    coords: np.ndarray           # (E, len(shape)) int64
    shape: Tuple[int, ...]       # dense shape of the plane, batch first
    values: Optional[np.ndarray] = None  # (E,) amplitudes; None = scale
    scale: float = 1.0           # uniform amplitude when values is None

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        object.__setattr__(self, "coords", _as_coords(self.coords, len(self.shape)))
        if self.values is not None:
            values = np.asarray(self.values)
            if values.shape != (self.coords.shape[0],):
                raise ValueError("values must be one amplitude per event")
            object.__setattr__(self, "values", values)

    @property
    def num_events(self) -> int:
        return int(self.coords.shape[0])

    @property
    def size(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64))

    @property
    def density(self) -> float:
        """Nonzero fraction of the dense plane these events describe."""
        return self.num_events / max(self.size, 1)

    def to_dense(self, dtype=np.float32) -> np.ndarray:
        """Scatter the events onto a fresh dense plane."""
        out = np.zeros(self.shape, dtype=dtype)
        if self.num_events:
            idx = tuple(self.coords.T)
            if self.values is not None:
                out[idx] = self.values.astype(dtype, copy=False)
            else:
                out[idx] = self.scale
        return out


@dataclass(frozen=True)
class SpikeStream:
    """A COO spike batch: coordinates + timesteps + dense-shape metadata.

    ``coords`` holds one row of batch-space coordinates per event (for
    image planes ``(n, c, h, w)``); ``timestep`` assigns each event to a
    step in ``[0, timesteps)``.  Events are kept sorted by timestep so
    :meth:`step` is a contiguous slice.  ``values`` is ``None`` for
    binary events; a stream built from an analog direct-coded input
    carries the per-event float amplitudes so ``to_dense`` round-trips
    exactly.
    """

    coords: np.ndarray            # (E, len(shape)) int64
    timestep: np.ndarray          # (E,) int64, sorted ascending
    shape: Tuple[int, ...]        # per-timestep dense shape, batch first
    timesteps: int
    values: Optional[np.ndarray] = None
    _offsets: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        object.__setattr__(self, "timesteps", int(self.timesteps))
        if self.timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        if not self.shape or any(s < 1 for s in self.shape):
            raise ValueError(f"invalid per-timestep shape {self.shape}")
        coords = _as_coords(self.coords, len(self.shape))
        timestep = np.asarray(self.timestep).astype(np.int64, copy=False).reshape(-1)
        if timestep.shape[0] != coords.shape[0]:
            raise ValueError("timestep must assign one step per event")
        values = self.values
        if values is not None:
            values = np.asarray(values)
            if values.shape != (coords.shape[0],):
                raise ValueError("values must be one amplitude per event")
        if timestep.size:
            if timestep.min() < 0 or timestep.max() >= self.timesteps:
                raise ValueError("timestep entries must be in [0, timesteps)")
            upper = np.asarray(self.shape, dtype=np.int64)
            if (coords < 0).any() or (coords >= upper).any():
                raise ValueError("coords out of range for the declared shape")
            if np.any(np.diff(timestep) < 0):  # canonicalise: sort by step
                order = np.argsort(timestep, kind="stable")
                coords = coords[order]
                timestep = timestep[order]
                if values is not None:
                    values = values[order]
            # Duplicate events would make the coordinate-derived
            # accounting (num_events, density, performed ops) disagree
            # with the densified plane, which scatters a cell once.
            cells = np.ravel_multi_index(tuple(coords.T), self.shape)
            keys = timestep * int(np.prod(self.shape, dtype=np.int64)) + cells
            if np.unique(keys).size != keys.size:
                raise ValueError(
                    "duplicate events at the same (timestep, coordinate); "
                    "deduplicate (e.g. np.unique) before building the stream"
                )
        object.__setattr__(self, "coords", coords)
        object.__setattr__(self, "timestep", timestep)
        object.__setattr__(self, "values", values)
        # Per-step slice boundaries: events of step t live in
        # coords[_offsets[t]:_offsets[t + 1]].
        offsets = np.searchsorted(timestep, np.arange(self.timesteps + 1))
        object.__setattr__(self, "_offsets", offsets)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def _trusted(
        cls,
        coords: np.ndarray,
        timestep: np.ndarray,
        shape: Tuple[int, ...],
        timesteps: int,
        values: Optional[np.ndarray],
    ) -> "SpikeStream":
        """Construct without validation — for data derived from an
        already-validated stream (batch slices preserve sortedness,
        in-range coordinates and uniqueness), where re-running the
        O(E log E) duplicate scan per shard/batch would be pure waste."""
        stream = object.__new__(cls)
        object.__setattr__(stream, "coords", coords)
        object.__setattr__(stream, "timestep", timestep)
        object.__setattr__(stream, "shape", tuple(shape))
        object.__setattr__(stream, "timesteps", int(timesteps))
        object.__setattr__(stream, "values", values)
        object.__setattr__(
            stream,
            "_offsets",
            np.searchsorted(timestep, np.arange(int(timesteps) + 1)),
        )
        return stream

    @classmethod
    def from_dense(cls, dense: np.ndarray, binary: Optional[bool] = None) -> "SpikeStream":
        """Build a stream from a dense ``(T,) + shape`` activation stack.

        ``binary=None`` (the default) keeps per-event values only when
        some nonzero entry differs from 1.0, so binary spike stacks
        produce amplitude-free streams; ``binary=True`` forces the
        values to be dropped, ``binary=False`` always keeps them.
        """
        dense = np.asarray(dense)
        if dense.ndim < 2:
            raise ValueError("dense stack must be (T, N, ...)")
        where = np.nonzero(dense)
        timestep = where[0].astype(np.int64)
        coords = np.stack(where[1:], axis=1).astype(np.int64) if timestep.size else (
            np.zeros((0, dense.ndim - 1), dtype=np.int64)
        )
        values: Optional[np.ndarray] = None
        if binary is not True and timestep.size:
            extracted = dense[where]
            if binary is False or not np.all(extracted == 1):
                values = extracted
        return cls(
            coords=coords,
            timestep=timestep,
            shape=dense.shape[1:],
            timesteps=dense.shape[0],
            values=values,
        )

    # ------------------------------------------------------------------
    # Metadata accessors
    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        return self.shape[0]

    @property
    def num_events(self) -> int:
        return int(self.coords.shape[0])

    @property
    def density(self) -> float:
        """Mean events per cell per timestep (the stream's spike rate)."""
        size = int(np.prod(self.shape, dtype=np.int64)) * self.timesteps
        return self.num_events / max(size, 1)

    def events_per_step(self) -> np.ndarray:
        """(T,) event counts — the time profile of the stream."""
        return np.diff(self._offsets)

    def density_per_step(self) -> np.ndarray:
        """(T,) nonzero fraction of each timestep's plane."""
        size = max(int(np.prod(self.shape, dtype=np.int64)), 1)
        return self.events_per_step() / size

    def __len__(self) -> int:
        return self.batch_size

    # ------------------------------------------------------------------
    # Views and conversions
    # ------------------------------------------------------------------
    def step(self, t: int) -> StepSpikes:
        """Timestep ``t`` as a :class:`StepSpikes` (contiguous slice)."""
        if not 0 <= t < self.timesteps:
            raise IndexError(f"timestep {t} out of range [0, {self.timesteps})")
        lo, hi = int(self._offsets[t]), int(self._offsets[t + 1])
        return StepSpikes(
            coords=self.coords[lo:hi],
            shape=self.shape,
            values=None if self.values is None else self.values[lo:hi],
        )

    def to_dense(self, dtype=np.float32) -> np.ndarray:
        """Scatter the whole stream onto a dense ``(T,) + shape`` stack."""
        out = np.zeros((self.timesteps,) + self.shape, dtype=dtype)
        if self.num_events:
            idx = (self.timestep,) + tuple(self.coords.T)
            out[idx] = 1 if self.values is None else self.values.astype(dtype, copy=False)
        return out

    def stacked(self) -> StepSpikes:
        """The whole stream as one :class:`StepSpikes` over the t-major
        ``(T*N, ...)`` stack — the multi-step coordinate batch the
        time-batched engines execute on.

        The batch coordinate of an event at step ``t`` on sample ``n``
        becomes the stacked row ``t * N + n``, matching exactly how the
        batched schedule reshapes ``(T, N, ...)`` into ``(T*N, ...)``.
        One such coordinate batch drives one gather+scatter per layer
        for all T timesteps, amortising index plans and coordinate
        bookkeeping across the whole stack instead of per-step loops.
        """
        n = self.batch_size
        coords = self.coords.copy()
        coords[:, 0] += self.timestep * n
        return StepSpikes(
            coords=coords,
            shape=(self.timesteps * n,) + self.shape[1:],
            values=self.values,
        )

    @classmethod
    def from_stacked(cls, step: StepSpikes, timesteps: int) -> "SpikeStream":
        """Rebuild a stream from a t-major stacked coordinate batch.

        The exact inverse of :meth:`stacked`: the stacked batch row
        ``b = t * N + n`` splits back into ``(t, n)``.  ``step.shape[0]``
        must be ``timesteps * N``.  Amplitudes round-trip: a uniform
        ``scale`` becomes per-event values only when it is not 1.0.
        """
        timesteps = int(timesteps)
        if timesteps < 1 or step.shape[0] % timesteps:
            raise ValueError(
                f"stacked batch of {step.shape[0]} rows does not divide "
                f"into {timesteps} timesteps"
            )
        n = step.shape[0] // timesteps
        timestep = step.coords[:, 0] // n
        coords = step.coords.copy()
        coords[:, 0] %= n
        values = step.values
        if values is None and step.scale != 1.0 and step.num_events:
            values = np.full(step.num_events, step.scale, dtype=np.float32)
        return cls(
            coords=coords,
            timestep=timestep,
            shape=(n,) + step.shape[1:],
            timesteps=timesteps,
            values=values,
        )

    def batch_slice(self, start: int, stop: int) -> "SpikeStream":
        """The sub-stream of samples ``start <= n < stop`` (shards)."""
        start, stop = max(int(start), 0), min(int(stop), self.batch_size)
        if stop <= start:
            raise ValueError(f"empty batch slice [{start}, {stop})")
        keep = (self.coords[:, 0] >= start) & (self.coords[:, 0] < stop)
        coords = self.coords[keep].copy()
        if coords.size:
            coords[:, 0] -= start
        # A slice of a validated stream needs no re-validation: the
        # keep-mask preserves timestep order, uniqueness and bounds.
        return SpikeStream._trusted(
            coords=coords,
            timestep=self.timestep[keep],
            shape=(stop - start,) + self.shape[1:],
            timesteps=self.timesteps,
            values=None if self.values is None else self.values[keep],
        )

    def __getitem__(self, item) -> "SpikeStream":
        """Batch slicing (``stream[lo:hi]``), mirroring ndarray batches."""
        if not isinstance(item, slice) or item.step not in (None, 1):
            raise TypeError("SpikeStream supports contiguous batch slices only")
        start, stop, _ = item.indices(self.batch_size)
        return self.batch_slice(start, stop)


@dataclass(frozen=True)
class SpikeTrace:
    """Measured per-synapse-layer input densities of one simulated run.

    This is the compact, serialisable "spike trace" the hardware models
    accept in place of an assumed flat rate: entry *i* is the observed
    nonzero fraction of the spike plane feeding mapped synapse layer
    *i* (sourced from :class:`SpikeStream`/:class:`StepSpikes` metadata
    when the run consumed a stream, from dense scans otherwise).  The
    aggregate op counters ride along so Table IV's dense-equivalent
    throughput can be computed from a trace alone.
    """

    layers: Tuple[str, ...]
    densities: Tuple[float, ...]
    engine: str = ""
    synaptic_ops: int = 0
    dense_synaptic_ops: int = 0
    spike_rate: float = 0.0  # overall spikes / neuron / timestep

    def __post_init__(self) -> None:
        object.__setattr__(self, "layers", tuple(str(n) for n in self.layers))
        object.__setattr__(
            self, "densities", tuple(float(d) for d in self.densities)
        )
        if len(self.layers) != len(self.densities):
            raise ValueError("one density per synapse layer required")

    def __len__(self) -> int:
        return len(self.densities)

    def __iter__(self):
        return iter(self.densities)

    def rates(self, skip=None) -> Tuple[float, ...]:
        """Densities filtered by a layer-name predicate (e.g. shortcut
        convs the hardware mapper folds into their main layer)."""
        if skip is None:
            return self.densities
        return tuple(
            d for name, d in zip(self.layers, self.densities) if not skip(name)
        )

    # Aggregate views shared with RunStats so hardware consumers can
    # take either interchangeably.
    @property
    def total_synaptic_ops(self) -> int:
        return self.synaptic_ops

    @property
    def total_dense_synaptic_ops(self) -> int:
        return self.dense_synaptic_ops

    @property
    def overall_spike_rate(self) -> float:
        return self.spike_rate

    @property
    def synaptic_op_saving(self) -> float:
        if self.dense_synaptic_ops == 0:
            return 0.0
        return 1.0 - self.synaptic_ops / self.dense_synaptic_ops
