"""Spiking runtime: neurons, ANN->SNN conversion and the spiking executor.

Implements the paper's conversion step (Fig. 1, right): every
:class:`repro.nn.QuantReLU` in a fine-tuned network is replaced in-place
by an integrate-and-fire neuron whose firing threshold is the learned
step size and whose membrane potential starts at threshold/2 (the QCFS
optimum), using reset-by-subtraction.  The resulting stateful network is
run for T timesteps by :class:`SpikingNetwork` on a pluggable
:mod:`repro.snn.engines` backend — ``"dense"`` (reference per-timestep
recompute), ``"event"`` (sparse event propagation whose cost scales
with spike rate, like the paper's hardware), ``"batched"``
(layer-sequential time batching: one big GEMM per stateless layer over
all T timesteps), ``"event-batched"`` (the time-batched schedule with
COO-native gathers: one row-subset GEMM per layer covering all T
timesteps, bitwise identical to ``"batched"`` and faster at low input
density) or ``"auto"`` (profiles a calibration run and compiles a
cached per-layer GEMM/event/event-batched plan, the fastest software
path) —
optionally sharded over ``workers`` forked processes or threads
(``shard_mode``) along the batch dimension.
"""

from repro.snn.dynamics import (
    ResetMode,
    initial_membrane,
    multiplicative_leak,
    neuron_step,
    shift_leak,
)
from repro.snn.neurons import IFNeuron, LIFNeuron
from repro.snn.convert import convert_to_snn, spiking_layers
from repro.snn.spikes import SpikeStream, SpikeTrace, StepSpikes
from repro.snn.stats import LayerStats, RunStats
from repro.snn.engines import (
    AutoEngine,
    DenseEngine,
    EventBatchedEngine,
    SimulationEngine,
    SparseEventEngine,
    TimeBatchedEngine,
    make_engine,
)
from repro.snn.network import SpikingNetwork
from repro.snn.metrics import SpikeStats, collect_spike_stats
from repro.snn.surrogate import (
    SurrogateIFLayer,
    SurrogateSNN,
    evaluate_surrogate_snn,
    spike_with_surrogate,
    train_surrogate_snn,
)
from repro.snn.analysis import (
    conversion_error_curve,
    layerwise_rate_error,
    threshold_sweep,
)

__all__ = [
    "SurrogateIFLayer",
    "SurrogateSNN",
    "spike_with_surrogate",
    "train_surrogate_snn",
    "evaluate_surrogate_snn",
    "layerwise_rate_error",
    "conversion_error_curve",
    "threshold_sweep",
    "IFNeuron",
    "LIFNeuron",
    "ResetMode",
    "neuron_step",
    "initial_membrane",
    "multiplicative_leak",
    "shift_leak",
    "convert_to_snn",
    "spiking_layers",
    "SpikingNetwork",
    "SimulationEngine",
    "AutoEngine",
    "DenseEngine",
    "EventBatchedEngine",
    "SparseEventEngine",
    "TimeBatchedEngine",
    "make_engine",
    "LayerStats",
    "RunStats",
    "SpikeStream",
    "SpikeTrace",
    "StepSpikes",
    "SpikeStats",
    "collect_spike_stats",
]
