"""Unified run statistics for every SNN execution backend.

One pair of types — :class:`LayerStats` and :class:`RunStats` — is
shared by the software simulation engines (``repro.snn.engine``), the
integer accelerator model (``repro.hw.accelerator``) and the experiment
drivers (``repro.eval.experiments``), so the paper's Fig. 6/8 spike
rates and the synaptic-operation counts all come from a single
instrumentation point regardless of which backend produced them.

Conventions:

* ``synaptic_ops`` is the work the backend *performed* — for
  event-driven backends that is one op per (spike, fan-out weight)
  pair, which is what the paper's aggregation core executes; for dense
  backends it equals the full MAC count.
* ``dense_synaptic_ops`` is what a dense recompute of the same layer
  would have cost, so ``synaptic_ops / dense_synaptic_ops`` is the
  event-driven saving.
* ``wall_clock_seconds`` on a layer is the measured time spent inside
  that layer's forward across the run (near-zero-overhead
  ``perf_counter`` deltas recorded by the engine interceptors);
  ``input_nonzero`` / ``input_size`` accumulate the observed input
  density of synapse layers — together these are the profile the
  adaptive engine's per-layer plan is compiled from, rendered by
  :meth:`RunStats.profile_table`.
* Cycle fields are only filled by the hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from repro.snn.spikes import SpikeTrace


@dataclass
class LayerStats:
    """Accumulated execution statistics for one layer of one run."""

    name: str
    kind: str = ""               # "conv" | "linear" | "neuron" | hw layer kind
    spike_count: int = 0
    neuron_steps: int = 0        # neurons * timesteps * samples observed
    synaptic_ops: int = 0        # ops actually performed by the backend
    dense_synaptic_ops: int = 0  # ops a dense recompute would need
    core_cycles: int = 0         # hardware-only
    aggregation_cycles: int = 0  # hardware-only
    segment_activity_sum: float = 0.0
    timesteps: int = 0
    wall_clock_seconds: float = 0.0  # time spent inside this layer's forward
    input_nonzero: int = 0       # nonzero input elements seen (synapse layers)
    input_size: int = 0          # total input elements seen (synapse layers)
    backend: str = ""            # per-layer backend chosen by the auto engine
    # Planner v2 provenance: how the backend choice was made ("raced" |
    # "cost-model" | "re-planned", "" when no planner ran) and the wall
    # clock the planner expected for the chosen backend, so
    # predicted-vs-actual ms reads straight off the profile.
    backend_source: str = ""
    predicted_ms: float = 0.0

    @property
    def spike_rate(self) -> float:
        """Average spikes per neuron per timestep (Fig. 6/8 y-axis)."""
        if self.neuron_steps == 0:
            return 0.0
        return self.spike_count / self.neuron_steps

    @property
    def input_density(self) -> float:
        """Observed nonzero fraction of this layer's input activations."""
        if self.input_size == 0:
            return 0.0
        return self.input_nonzero / self.input_size

    @property
    def density(self) -> float:
        """The profiling density: input density for synapse layers (what
        sets event-driven cost), spike rate for neuron layers."""
        return self.spike_rate if self.kind == "neuron" else self.input_density

    @property
    def mean_segment_activity(self) -> float:
        if self.timesteps == 0:
            return 0.0
        return self.segment_activity_sum / self.timesteps

    def merge(self, other: "LayerStats") -> "LayerStats":
        """Accumulate another run's counters for the same layer, in place."""
        if other.name != self.name:
            raise ValueError(f"cannot merge stats of {other.name!r} into {self.name!r}")
        self.spike_count += other.spike_count
        self.neuron_steps += other.neuron_steps
        self.synaptic_ops += other.synaptic_ops
        self.dense_synaptic_ops += other.dense_synaptic_ops
        self.core_cycles += other.core_cycles
        self.aggregation_cycles += other.aggregation_cycles
        self.segment_activity_sum += other.segment_activity_sum
        self.timesteps += other.timesteps
        self.wall_clock_seconds += other.wall_clock_seconds
        self.input_nonzero += other.input_nonzero
        self.input_size += other.input_size
        if not self.backend:
            self.backend = other.backend
        if not self.backend_source:
            self.backend_source = other.backend_source
        self.predicted_ms += other.predicted_ms
        return self


def resolve_layer_rates(
    source: Union["RunStats", SpikeTrace, Sequence[float]], n_layers: int
) -> List[float]:
    """Resolve a measured-activity source into one rate per mapped layer.

    The single resolver behind every hardware consumer of measured
    activity (``table1_experiment(measured=...)``,
    ``TrafficModel.network_traffic(measured=...)``): a
    :class:`RunStats` resolves through
    :meth:`RunStats.input_spike_rates`, a
    :class:`repro.snn.spikes.SpikeTrace` through its recorded
    densities, and anything else as an explicit rate sequence.  The two
    measured kinds are related but *not* interchangeable numbers: a
    RunStats bills each layer at the spike rate of the neuron layer
    feeding it, while a trace records the observed nonzero fraction of
    the layer's actual input plane — downstream of pooling these
    differ (pooling concentrates spikes, raising observed density
    above the feeding neuron's rate).  The trace is the more faithful
    measure of what the layer's input transfer/gather actually
    carries; the RunStats form survives for callers without profiling.
    Both fall back to dropping ResNet projection shortcuts — which the
    hardware mapper folds into the main layer as an auxiliary pass —
    when the raw count does not match; a mismatch after that means the
    stats came from a different architecture, a caller error worth
    failing loudly on.
    """
    skip = lambda name: "shortcut" in name  # noqa: E731
    if isinstance(source, RunStats):
        rates = source.input_spike_rates()
        if len(rates) != n_layers:
            rates = source.input_spike_rates(skip=skip)
    elif isinstance(source, SpikeTrace):
        rates = list(source.densities)
        if len(rates) != n_layers:
            rates = list(source.rates(skip=skip))
    else:
        rates = [float(r) for r in source]
    if len(rates) != n_layers:
        raise ValueError(
            f"measured rates cover {len(rates)} synapse layers but the mapped "
            f"network has {n_layers}; stats must come from the same architecture"
        )
    return [float(r) for r in rates]


@dataclass
class RunStats:
    """Whole-network statistics for one batch of inferences."""

    batch_size: int
    timesteps: int
    layers: List[LayerStats] = field(default_factory=list)
    engine: str = ""
    wall_clock_seconds: float = 0.0
    workers: int = 1  # batch shards merged into this record
    shard_mode: str = ""  # "fork" | "thread" when workers > 1
    # Supervised-sharding failure trail: every captured per-shard
    # failure (crash or hang, see
    # :class:`repro.snn.engines.sharding.ShardFailure`) of the run, and
    # the substrate that ultimately completed the work when the
    # fork->thread->serial degradation chain had to leave the requested
    # one ("" for a clean, undegraded run).
    shard_failures: List = field(default_factory=list)
    degraded_shard_mode: str = ""
    # Adaptive-engine drift guard: the worst relative deviation of an
    # observed layer density from the executed plan's calibration
    # density, and whether it crossed the re-plan threshold (the next
    # run for this key recalibrates).
    plan_drift: float = 0.0
    replan_triggered: bool = False
    # Planner v2 provenance: where the executed plan came from ("raced"
    # | "cost-model" | "re-planned", "" for engines without a planner)
    # and, when a mid-run re-plan fired, the layer boundary it swapped
    # at.
    plan_source: str = ""
    replanned_at: str = ""

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_core_cycles(self) -> int:
        return sum(l.core_cycles for l in self.layers)

    @property
    def cycles_per_inference(self) -> float:
        return self.total_core_cycles / max(self.batch_size, 1)

    @property
    def total_synaptic_ops(self) -> int:
        return sum(l.synaptic_ops for l in self.layers)

    @property
    def total_dense_synaptic_ops(self) -> int:
        return sum(l.dense_synaptic_ops for l in self.layers)

    @property
    def synaptic_op_saving(self) -> float:
        """Fraction of dense work skipped (0 when dense baseline unknown)."""
        dense = self.total_dense_synaptic_ops
        if dense == 0:
            return 0.0
        return 1.0 - self.total_synaptic_ops / dense

    def spike_rates(self) -> List[float]:
        """Per-layer spike rates, in depth order (layers with neurons only)."""
        return [l.spike_rate for l in self.layers if l.neuron_steps > 0]

    def input_spike_rates(
        self,
        frame_rate: float = 1.0,
        skip: Optional[Callable[[str], bool]] = None,
    ) -> List[float]:
        """Observed *input* activity of each synapse layer, in depth order.

        A synapse layer's event-driven cost is set by the spike rate of
        the neuron layer feeding it, so this is the per-layer rate
        vector the hardware latency/power models consume.  Layers fed
        by the analog input frame (no upstream neuron yet) are billed
        at ``frame_rate`` (dense, 1.0 by default), mirroring the
        PS-side frame convolution.  ``skip`` drops synapse layers by
        name — e.g. ResNet projection shortcuts, which the hardware
        mapper folds into the main layer as an auxiliary pass rather
        than mapping separately.

        The upstream rate is resolved by flat registration order, which
        is exact for chains; at residual merge points the consuming
        layer actually sees main-branch plus shortcut spikes, so its
        billed input rate is the trunk neuron's — an approximation that
        understates activity at the handful of merge convs.
        """
        rates: List[float] = []
        upstream: float = frame_rate
        for layer in self.layers:
            if layer.kind == "neuron":
                upstream = layer.spike_rate
            elif layer.kind in ("conv", "linear", "fc"):
                if skip is None or not skip(layer.name):
                    rates.append(upstream)
        return rates

    @property
    def overall_spike_rate(self) -> float:
        steps = sum(l.neuron_steps for l in self.layers)
        if steps == 0:
            return 0.0
        return sum(l.spike_count for l in self.layers) / steps

    def spike_trace(self) -> SpikeTrace:
        """The run's measured per-synapse-layer input densities as a
        portable :class:`repro.snn.spikes.SpikeTrace`.

        Densities are the *observed* nonzero fractions the profiler
        recorded (sourced from SpikeStream/StepSpikes metadata when the
        run consumed a COO stream), so the hardware latency, traffic
        and throughput models bill layers at actual event activity.
        Note this is a sharper measure than
        :meth:`input_spike_rates`' feeding-neuron rates: downstream of
        pooling the observed input density exceeds the upstream spike
        rate (pooling concentrates spikes), which is exactly what the
        layer's input transfer and gather pay for.  Requires a run
        with ``profile_layers`` on (the default).
        """
        synapse = [
            l for l in self.layers if l.kind in ("conv", "linear", "fc")
        ]
        if synapse and all(l.input_size == 0 for l in synapse):
            raise ValueError(
                "run recorded no input densities; re-run with "
                "profile_layers=True to derive a spike trace"
            )
        return SpikeTrace(
            layers=tuple(l.name for l in synapse),
            densities=tuple(l.input_density for l in synapse),
            engine=self.engine,
            synaptic_ops=self.total_synaptic_ops,
            dense_synaptic_ops=self.total_dense_synaptic_ops,
            spike_rate=self.overall_spike_rate,
        )

    def failure_summary(self) -> dict:
        """The run's supervision trail as one JSON-ready summary.

        The single shape every downstream consumer of shard failures
        uses — the serving metrics endpoint accumulates these per
        dispatched batch, and campaign records embed the same keys —
        so "how broken was the substrate" reads identically whether it
        came from a request path or a grid point.
        """
        return {
            "shard_failures": len(self.shard_failures),
            "degraded_shard_mode": self.degraded_shard_mode,
        }

    # ------------------------------------------------------------------
    def merge(self, other: "RunStats") -> "RunStats":
        """Accumulate another run over the same network (batched eval)."""
        if len(other.layers) != len(self.layers):
            raise ValueError("cannot merge runs over different networks")
        if other.timesteps != self.timesteps:
            raise ValueError("cannot merge runs with different timesteps")
        for mine, theirs in zip(self.layers, other.layers):
            mine.merge(theirs)
        self.batch_size += other.batch_size
        self.wall_clock_seconds += other.wall_clock_seconds
        self.plan_drift = max(self.plan_drift, other.plan_drift)
        self.replan_triggered = self.replan_triggered or other.replan_triggered
        # A shard that re-planned mid-run outranks siblings that did not.
        if other.plan_source == "re-planned" or not self.plan_source:
            self.plan_source = other.plan_source or self.plan_source
        if not self.replanned_at:
            self.replanned_at = other.replanned_at
        self.shard_failures.extend(other.shard_failures)
        if not self.degraded_shard_mode:
            self.degraded_shard_mode = other.degraded_shard_mode
        return self

    def layer_table(self) -> str:
        """Aligned text table of per-layer rates and op counts."""
        lines = ["layer                          kind     spike_rate  synaptic_ops"]
        for stat in self.layers:
            lines.append(
                f"{stat.name:<30} {stat.kind:<8} {stat.spike_rate:>10.4f}  {stat.synaptic_ops:>12d}"
            )
        lines.append(
            f"overall spike rate {self.overall_spike_rate:.4f}; "
            f"total synaptic ops {self.total_synaptic_ops}"
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Per-layer wall-clock profile
    # ------------------------------------------------------------------
    def profile_records(self) -> List[dict]:
        """Per-layer profile rows: name, kind, backend, wall-clock ms,
        density and performed ops.

        This is the machine-readable form embedded in the engine
        benchmark artifact (``BENCH_engines.json``) and the data the
        adaptive engine's execution plan is compiled from.  ``density``
        is the layer's input density for synapse layers (what sets
        event-driven cost) and the spike rate for neuron layers;
        ``backend`` is the per-layer backend the run actually used
        (falling back to the engine name when the engine makes no
        per-layer choice); ``source`` is how the planner chose it
        (``"raced"`` | ``"cost-model"`` | ``"re-planned"``, ``""``
        without a planner) and ``predicted_ms`` the planner's expected
        wall clock, so predicted-vs-actual reads off each row.
        """
        return [
            {
                "name": layer.name,
                "kind": layer.kind,
                "backend": layer.backend or self.engine,
                "source": layer.backend_source,
                "wall_clock_ms": round(layer.wall_clock_seconds * 1e3, 3),
                "predicted_ms": round(layer.predicted_ms, 3),
                "density": round(layer.density, 6),
                "synaptic_ops": int(layer.synaptic_ops),
            }
            for layer in self.layers
        ]

    def profile_table(self) -> str:
        """Aligned text table of the per-layer wall-clock profile."""
        lines = [
            "layer                          kind     backend        source        wall_ms   pred_ms   density    synaptic_ops"
        ]
        for row in self.profile_records():
            predicted = (
                f"{row['predicted_ms']:>9.3f}" if row["predicted_ms"] else f"{'-':>9}"
            )
            lines.append(
                f"{row['name']:<30} {row['kind']:<8} {row['backend']:<13} "
                f"{row['source'] or '-':<12} {row['wall_clock_ms']:>9.3f} {predicted}  "
                f"{row['density']:>8.4f}  {row['synaptic_ops']:>14d}"
            )
        attributed = sum(l.wall_clock_seconds for l in self.layers)
        lines.append(
            f"run wall clock {self.wall_clock_seconds * 1e3:.3f} ms "
            f"({attributed * 1e3:.3f} ms attributed to layers); "
            f"engine {self.engine or '?'}, workers {self.workers}"
        )
        if self.plan_source:
            replanned = (
                f"; re-planned mid-run at {self.replanned_at}"
                if self.replanned_at
                else ""
            )
            lines.append(
                f"plan source {self.plan_source}; drift {self.plan_drift:.3f}"
                f"{replanned}"
            )
        return "\n".join(lines)
