"""Direct SNN training with surrogate gradients (BPTT through spikes).

The paper's introduction contrasts its conversion approach with
"training SNNs from scratch using surrogate gradient methods [10]"
(Neftci, Mostafa & Zenke 2019), noting that such networks typically
need many more timesteps for comparable accuracy.  To make that
comparison runnable, this module implements the baseline: a
differentiable spiking layer whose Heaviside firing function is given a
surrogate derivative, unrolled over T timesteps and trained end-to-end
with backprop-through-time on the :mod:`repro.tensor` engine.

Supported surrogates (all standard in the literature):

* ``"rectangle"`` — boxcar around the threshold (Wu et al. 2018);
* ``"fast_sigmoid"`` — 1 / (1 + |x|)^2 (Zenke & Ganguli 2018);
* ``"triangle"``  — max(0, 1 - |x|) (Bellec et al. 2018; QCFS uses a
  shifted variant).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.tensor.tensor import _unbroadcast


def _surrogate_derivative(kind: str, scaled: np.ndarray, width: float) -> np.ndarray:
    """d(spike)/d(v - threshold) evaluated at the scaled distance."""
    if kind == "rectangle":
        return (np.abs(scaled) < 0.5 * width).astype(np.float32) / width
    if kind == "fast_sigmoid":
        return (1.0 / (1.0 + np.abs(scaled) / width) ** 2) / width
    if kind == "triangle":
        return np.maximum(0.0, 1.0 - np.abs(scaled) / width) / width
    raise ValueError(f"unknown surrogate {kind!r}")


def spike_with_surrogate(
    v: Tensor, threshold: Tensor, kind: str = "triangle", width: float = 1.0
) -> Tensor:
    """Heaviside(v - threshold) with a surrogate backward.

    Forward emits binary spikes; backward routes the incoming gradient
    through the surrogate derivative to both the membrane potential and
    the (learnable) threshold.
    """
    distance = v.data - threshold.data
    spikes = (distance >= 0).astype(np.float32)
    grad_factor = _surrogate_derivative(kind, distance, width)

    def backward(g: np.ndarray) -> None:
        local = g * grad_factor
        if v.requires_grad:
            v._accumulate(local)
        if threshold.requires_grad:
            threshold._accumulate(_unbroadcast(-local, threshold.shape))

    return Tensor._make(spikes, (v, threshold), backward)


class SurrogateIFLayer(Module):
    """Trainable IF layer for BPTT: stateful across a timestep loop.

    Unlike :class:`repro.snn.neurons.IFNeuron` (pure inference, numpy
    state), this layer keeps its membrane potential as a graph tensor so
    gradients flow through the reset path, and exposes the threshold as
    a trainable parameter.
    """

    def __init__(
        self,
        threshold: float = 1.0,
        surrogate: str = "triangle",
        width: float = 1.0,
        learn_threshold: bool = True,
        reset_detach: bool = True,
    ) -> None:
        super().__init__()
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = Parameter(
            np.float32(threshold), requires_grad=learn_threshold
        )
        self.surrogate = surrogate
        self.width = width
        self.reset_detach = reset_detach
        self._v: Optional[Tensor] = None

    def reset_state(self) -> None:
        self._v = None

    def forward(self, current: Tensor) -> Tensor:
        if self._v is None:
            init = np.zeros_like(current.data)
            self._v = Tensor(init)
        v = self._v + current
        spikes = spike_with_surrogate(v, self.threshold, self.surrogate, self.width)
        # Reset-by-subtraction; detaching the reset term is the common
        # stabilisation (gradients do not flow through the reset).
        reset = spikes.detach() if self.reset_detach else spikes
        self._v = v - reset * self.threshold.data
        return spikes

    def extra_repr(self) -> str:
        return (
            f"threshold={float(self.threshold.data):.3f}, "
            f"surrogate={self.surrogate}"
        )


class SurrogateSNN(Module):
    """A small spiking CNN trained directly with surrogate gradients.

    conv-bn-spike blocks followed by a readout layer that accumulates
    logits over timesteps.  Intentionally compact: its role in this
    repository is the paper's "direct training needs more timesteps"
    baseline, not a competitive classifier.
    """

    def __init__(
        self,
        in_channels: int = 3,
        num_classes: int = 10,
        channels: (int, int) = (16, 32),
        surrogate: str = "triangle",
        seed: int = 0,
    ) -> None:
        super().__init__()
        from repro import nn

        rng = np.random.default_rng(seed)
        c1, c2 = channels
        self.conv1 = nn.Conv2d(in_channels, c1, 3, stride=2, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(c1)
        self.spike1 = SurrogateIFLayer(surrogate=surrogate)
        self.conv2 = nn.Conv2d(c1, c2, 3, stride=2, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(c2)
        self.spike2 = SurrogateIFLayer(surrogate=surrogate)
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(c2, num_classes, rng=rng)

    def reset_state(self) -> None:
        self.spike1.reset_state()
        self.spike2.reset_state()

    def forward(self, x: Tensor, timesteps: int = 4) -> Tensor:
        """Accumulated logits over time.

        Two input modes:

        * static frames (N, C, H, W): the frame is presented at every
          timestep (direct coding), ``timesteps`` controls the unroll;
        * event sequences (N, T, C, H, W): frame t drives timestep t
          (the event-driven input path), ``timesteps`` is ignored.
        """
        self.reset_state()
        if x.ndim == 5:
            steps = x.shape[1]
            frames = [Tensor(x.data[:, t]) for t in range(steps)]
        elif x.ndim == 4:
            steps = timesteps
            frames = [x] * steps
        else:
            raise ValueError("expected (N, C, H, W) or (N, T, C, H, W)")
        logits: Optional[Tensor] = None
        for frame in frames:
            h = self.spike1(self.bn1(self.conv1(frame)))
            h = self.spike2(self.bn2(self.conv2(h)))
            step_logits = self.fc(self.pool(h))
            logits = step_logits if logits is None else logits + step_logits
        return logits * (1.0 / steps)


def train_surrogate_snn(
    model: SurrogateSNN,
    train_x: np.ndarray,
    train_y: np.ndarray,
    epochs: int = 5,
    timesteps: int = 4,
    lr: float = 2e-3,
    batch_size: int = 64,
    seed: int = 0,
) -> List[float]:
    """BPTT training loop; returns per-epoch mean losses."""
    from repro.data.loaders import DataLoader
    from repro.optim import Adam
    from repro.tensor import functional as F

    optimizer = Adam(list(model.parameters()), lr=lr)
    loader = DataLoader(
        train_x, train_y, batch_size=batch_size, rng=np.random.default_rng(seed)
    )
    losses: List[float] = []
    for _ in range(epochs):
        model.train()
        epoch_loss, batches = 0.0, 0
        for xb, yb in loader:
            logits = model(Tensor(xb), timesteps=timesteps)
            loss = F.cross_entropy(logits, yb)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
    return losses


def evaluate_surrogate_snn(
    model: SurrogateSNN, x: np.ndarray, y: np.ndarray, timesteps: int = 4,
    batch_size: int = 256,
) -> float:
    """Top-1 accuracy of a surrogate-trained SNN."""
    from repro.tensor import no_grad

    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            logits = model(Tensor(xb), timesteps=timesteps)
            correct += int((logits.data.argmax(-1) == y[start : start + batch_size]).sum())
    return correct / len(x)
