"""Event-driven backend: compute only active spike contributions.

Conv and linear layers whose input plane is sparse are executed by
gathering the active im2col rows (output windows touched by at least
one spike) and the active columns (taps that carry a spike anywhere in
the batch) and multiplying only that submatrix — per-timestep matmul
cost scales with spike rate, mirroring the paper's aggregation core.
Dense inputs (the analog input frame, like the PS-side frame conv in
§IV) fall back to the dense kernel.

The engine speaks :class:`repro.snn.spikes.SpikeStream` natively: a
COO input stream is stepped through the network while the engine
carries each plane's coordinates alongside it — neuron layers register
their output spikes' coordinates, pooling layers map coordinates
through the window geometry — so active-row selection, gather sizing,
density recording and ``performed_ops`` all come straight from event
coordinates (:func:`conv_active_windows`) instead of being re-derived
by scanning densified planes at every layer.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.layers import AvgPool2d, Conv2d, MaxPool2d
from repro.nn.module import Module
from repro.snn.engines.base import (
    LRUCache,
    SimulationEngine,
    WEIGHT_CACHE_CAPACITY,
    _conv_out_size,
    _dense_op_count,
    _effective_weight,
)
from repro.snn.engines.dense import dense_conv2d
from repro.snn.spikes import SpikeStream, StepSpikes
from repro.tensor import Tensor
from repro.tensor.functional import im2col, im2col_rows


def conv_active_windows(
    coords: np.ndarray,
    x_shape: Tuple[int, ...],
    kernel: int,
    stride: int,
    padding: int,
) -> Tuple[np.ndarray, int]:
    """Active im2col rows and nonzero-entry count, from coordinates only.

    For spike coordinates ``(n, c, y, x)`` over an ``x_shape`` plane,
    returns the sorted flattened row indices (``n * OH * OW + oy * OW +
    ox``) of every output window that covers at least one spike, plus
    the total number of nonzero im2col entries (each event contributes
    one entry per covering window).  Both quantities equal what a scan
    of the densified im2col matrix (``cols.any(axis=1)`` /
    ``count_nonzero(cols)``) would report — computed in
    ``O(events · (K/stride)²)`` instead of ``O(windows · C·K²)``.

    The coordinates may equally be a *multi-step batch*: a whole
    stream's events stacked t-major over a ``(T*N, C, H, W)`` plane
    (:meth:`repro.snn.spikes.SpikeStream.stacked`).  Windows never
    cross the stacked batch axis, so one call selects the active rows
    of all T timesteps' convolutions at once — the index arithmetic is
    amortised over the batch instead of paid per step.
    """
    n, c, h, w = x_shape
    oh = _conv_out_size(h, kernel, stride, padding)
    ow = _conv_out_size(w, kernel, stride, padding)
    if coords.shape[0] == 0:
        return np.zeros(0, dtype=np.int64), 0
    ys = coords[:, 2] + padding
    xs = coords[:, 3] + padding
    # Window origins covering a padded pixel p: ceil((p-K+1)/S) .. p//S,
    # clipped to the output grid (floor-division ceil trick for the
    # possibly-negative numerator).
    lo_y = np.maximum(0, -((kernel - 1 - ys) // stride))
    hi_y = np.minimum(oh - 1, ys // stride)
    lo_x = np.maximum(0, -((kernel - 1 - xs) // stride))
    hi_x = np.minimum(ow - 1, xs // stride)
    ny = np.maximum(hi_y - lo_y + 1, 0)
    nx = np.maximum(hi_x - lo_x + 1, 0)
    entries = int((ny * nx).sum())
    if entries == 0:
        return np.zeros(0, dtype=np.int64), 0
    base = coords[:, 0] * (oh * ow)
    # Enumerate every event's covering windows in one broadcast: the
    # (events, max-dy, max-dx) candidate grid is tiny (events x
    # (K/stride)^2) and avoids a Python loop over window offsets.
    oy = lo_y[:, np.newaxis] + np.arange(int(ny.max()), dtype=lo_y.dtype)
    ox = lo_x[:, np.newaxis] + np.arange(int(nx.max()), dtype=lo_x.dtype)
    ok = (oy <= hi_y[:, np.newaxis])[:, :, np.newaxis] & (
        ox <= hi_x[:, np.newaxis]
    )[:, np.newaxis, :]
    rows = (
        (base[:, np.newaxis] + oy * ow)[:, :, np.newaxis]
        + ox[:, np.newaxis, :]
    )[ok]
    # Sorted dedup via a bounded scatter mask — the row domain is known
    # (N*OH*OW), and this is an order of magnitude faster than a
    # sort-based ``np.unique`` at these sizes.
    mask = np.zeros(n * oh * ow, dtype=bool)
    mask[rows] = True
    return np.flatnonzero(mask), entries


def pooled_coords(
    step: StepSpikes, kernel: int, stride: int, out_shape: Tuple[int, ...]
) -> Optional[np.ndarray]:
    """Output coordinates of a pooled positive spike plane, or None.

    For non-overlapping pooling (``kernel == stride``) of a plane whose
    events all carry positive amplitude, an output cell is nonzero
    exactly when its window contains an event, so the output coordinate
    set is the (deduplicated, in-range) window index of every input
    event — no scan of the pooled plane needed.  Overlapping windows or
    signed amplitudes return None (the caller falls back to a scan or
    drops the carried stream).
    """
    if kernel != stride or step.values is not None:
        return None
    if step.num_events == 0:
        return np.zeros((0, len(out_shape)), dtype=np.int64)
    scaled = step.coords.copy()
    scaled[:, 2] //= stride
    scaled[:, 3] //= stride
    in_range = (scaled[:, 2] < out_shape[2]) & (scaled[:, 3] < out_shape[3])
    scaled = scaled[in_range]
    flat = np.ravel_multi_index(tuple(scaled.T), out_shape)
    uniq = np.unique(flat)
    return np.stack(np.unravel_index(uniq, out_shape), axis=1).astype(np.int64)


def sparse_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: int,
    padding: int,
    active_rows: Optional[np.ndarray] = None,
    performed: Optional[int] = None,
    rows_only: bool = False,
) -> Tuple[np.ndarray, int]:
    """Event-driven convolution of a sparse activation plane.

    Gathers the active im2col rows (output windows touched by at least
    one spike) and the active columns (taps carrying a spike anywhere
    in the batch) and multiplies only that submatrix when it is a
    genuine shrink; silent windows contribute exactly zero (plus
    bias), so the result equals the dense convolution up to float
    summation order.  When the submatrix is not meaningfully smaller
    the full matrix is multiplied — on this numpy substrate a dense
    BLAS matmul outruns any per-element sparse route at moderate
    densities, so the gather gate is what keeps the event backend at
    wall-clock parity with dense outside the very sparse regime where
    it wins outright.

    ``active_rows`` / ``performed`` accept the coordinate-derived
    selection from :func:`conv_active_windows` (a carried
    :class:`repro.snn.spikes.SpikeStream` — per step, or a whole
    stream's t-major stacked coordinate batch); when omitted they are
    re-derived by scanning the densified column matrix.

    ``rows_only=True`` (requires ``active_rows``) is the *bit-exact*
    batched event path: only the active windows are unfolded at all
    (:func:`repro.tensor.functional.im2col_rows` — the dense column
    matrix is never built) and every gathered row keeps its full
    ``C*K*K`` tap vector.  A row-subset GEMM computes each output row
    with the same reduction the full GEMM would use, so the result is
    bitwise identical to the dense convolution — unlike the
    column-subset shrink, which regroups partial sums.  Cost scales
    with active windows, and at low density the gather itself is the
    dominant saving: the full unfold is ``O(N·OH·OW·C·K²)`` regardless
    of sparsity.

    Returns ``(output, performed_ops)`` where ``performed_ops`` counts
    one op per nonzero im2col entry per output channel — the
    event-driven synaptic-operation count the hardware's aggregation
    core would execute, which is what the run statistics report.
    """
    n = x.shape[0]
    c_out, _, k, _ = weight.shape
    w_mat = weight.reshape(c_out, -1)
    if rows_only:
        if active_rows is None:
            raise ValueError("rows_only requires coordinate-derived active_rows")
        sub, oh, ow = im2col_rows(x, k, stride, padding, active_rows)
        if performed is None:
            performed = int(np.count_nonzero(sub)) * c_out
        # Scatter straight into channel-first layout: the (rows, C_out)
        # GEMM result lands at its (sample, :, site) slots, so the
        # output is born contiguous NCHW and the full-plane NHWC
        # transpose copy of the dense path never happens.  Same values
        # per element (the GEMM rows are unchanged), so still bitwise.
        out = np.zeros(
            (n, c_out, oh * ow), dtype=np.result_type(x.dtype, weight.dtype)
        )
        if active_rows.size:
            out[active_rows // (oh * ow), :, active_rows % (oh * ow)] = (
                sub @ w_mat.T
            )
        if bias is not None:
            out += bias.reshape(1, c_out, 1)
        return out.reshape(n, c_out, oh, ow), performed
    cols, oh, ow = im2col(x, k, stride, padding)
    if performed is None:
        performed = int(np.count_nonzero(cols)) * c_out
    if active_rows is None:
        active_rows = np.flatnonzero(cols.any(axis=1))
    if active_rows.size == cols.shape[0]:
        out = cols @ w_mat.T
    else:
        out = np.zeros(
            (cols.shape[0], c_out), dtype=np.result_type(x.dtype, weight.dtype)
        )
        if active_rows.size:
            sub = cols[active_rows]
            active_cols = np.flatnonzero(sub.any(axis=0))
            if active_rows.size * active_cols.size < 0.25 * cols.size:
                out[active_rows] = sub[:, active_cols] @ w_mat[:, active_cols].T
            else:
                out[active_rows] = sub @ w_mat.T
    if bias is not None:
        out += bias
    out = out.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)
    return np.ascontiguousarray(out), performed


def sparse_linear(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    active: Optional[np.ndarray] = None,
    performed: Optional[int] = None,
    rows: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, int]:
    """Event-driven affine map over a sparse feature batch.

    ``active`` / ``performed`` accept the coordinate-derived feature
    selection of a carried spike stream (``unique(coords[:, 1])`` and
    ``events * out_features``); omitted, they are scanned from ``x``.

    ``rows`` switches to the *bit-exact* batched event path: only the
    given samples (rows with at least one event — for a t-major
    stacked batch, ``unique(coords[:, 0])``) go through the GEMM, each
    with its full feature vector, and silent samples come out exactly
    zero (plus bias).  A row-subset GEMM reduces each output element
    the same way the full GEMM would, so the result is bitwise
    identical to the dense affine map — the feature-gather path above
    regroups partial sums and is only summation-order equivalent.
    """
    if performed is None:
        performed = int(np.count_nonzero(x)) * weight.shape[0]
    if rows is not None:
        out = np.zeros(
            (x.shape[0], weight.shape[0]),
            dtype=np.result_type(x.dtype, weight.dtype),
        )
        if rows.size == x.shape[0]:
            np.matmul(x, weight.T, out=out)
        elif rows.size:
            out[rows] = x[rows] @ weight.T
        if bias is not None:
            out += bias
        return out, performed
    if active is None:
        active = np.flatnonzero(x.any(axis=0))
    if active.size == x.shape[1]:
        # Every feature fires somewhere in the batch: gathering would
        # copy both operands for nothing.
        out = x @ weight.T
    else:
        out = x[:, active] @ weight[:, active].T
    if bias is not None:
        out = out + bias
    return out, performed


class SparseEventEngine(SimulationEngine):
    """Event-driven backend: compute only active spike contributions.

    Effective (fake-quantised) weights are computed once per run and
    all conv/linear layers execute through the sparsity-adaptive
    kernels above.  ``density_threshold`` gates the *accounting*:
    inputs whose nonzero fraction reaches it (e.g. the analog input
    frame) are billed at the full dense MAC count, mirroring the
    PS-side frame convolution in the paper, instead of the
    per-spike-contribution count.

    Fed a :class:`repro.snn.spikes.SpikeStream`, the engine runs in
    *stream mode*: each timestep's coordinates are carried across the
    layer graph (neuron outputs re-enter the stream as fresh
    coordinates, non-overlapping pools map coordinates through their
    window geometry) and every conv/linear consumes the carried
    coordinates for density, active-row selection and op accounting —
    the numbers are identical to the dense-input path, derived without
    scanning the planes.
    """

    name = "event"

    def __init__(
        self, density_threshold: float = 0.6, profile_layers: bool = True
    ) -> None:
        super().__init__(profile_layers=profile_layers)
        if not 0.0 < density_threshold <= 1.0:
            raise ValueError("density_threshold must be in (0, 1]")
        self.density_threshold = density_threshold
        self._weight_cache = LRUCache(WEIGHT_CACHE_CAPACITY)
        # Last (input, output, billed ops) per layer within one run.
        # Direct encoding feeds the first conv the *same* frame array
        # every timestep, so its output is reused T-1 times — the
        # software twin of the accelerator's frame-psum cache.  The
        # identity check makes this safe for every other layer too:
        # downstream activations are fresh arrays each timestep.
        self._io_cache: Dict[int, Tuple[np.ndarray, np.ndarray, int]] = {}
        # Stream mode: the carried coordinates of live planes, keyed by
        # the plane's array id.  Entries hold the array itself so ids
        # cannot be recycled while registered; the registry is cleared
        # at every timestep boundary (planes of a step die with it).
        self._step_spikes: Dict[int, Tuple[np.ndarray, StepSpikes]] = {}
        self._stream_run = False
        self._pool_modules: list = []

    def _config(self) -> dict:
        config = super()._config()
        config["density_threshold"] = self.density_threshold
        return config

    def _share_caches(self, peer: "SimulationEngine") -> None:
        peer._weight_cache = self._weight_cache

    def _effective_weight(self, module: Module) -> np.ndarray:
        return _effective_weight(module, self._weight_cache)

    def bind(self, model: Module) -> "SparseEventEngine":
        super().bind(model)
        self._pool_modules = [
            module
            for _, module in model.named_modules()
            if isinstance(module, (AvgPool2d, MaxPool2d))
        ]
        return self

    # ------------------------------------------------------------------
    # Stream carrying
    # ------------------------------------------------------------------
    def _register_spikes(self, plane: np.ndarray, step: StepSpikes) -> None:
        self._step_spikes[id(plane)] = (plane, step)

    def _carried_spikes(self, data: np.ndarray) -> Optional[StepSpikes]:
        entry = self._step_spikes.get(id(data))
        return None if entry is None else entry[1]

    def _input_nonzero_of(self, data: np.ndarray) -> Optional[int]:
        step = self._carried_spikes(data)
        return None if step is None else step.num_events

    def _run_single(self, x, timesteps, per_step):
        self._stream_run = isinstance(x, SpikeStream)
        try:
            return super()._run_single(x, timesteps, per_step)
        finally:
            self._stream_run = False
            self._step_spikes = {}

    def _stream_step_input(self, stream: SpikeStream, t: int) -> Tensor:
        # Planes of the previous step are dead; their carried
        # coordinates go with them (and freed ids may be recycled).
        self._step_spikes = {}
        step = stream.step(t)
        plane = step.to_dense()
        self._register_spikes(plane, step)
        return Tensor(plane)

    # ------------------------------------------------------------------
    def _install(self, synapse_stats, neuron_stats) -> None:
        # The weight cache survives runs (entries self-invalidate on
        # parameter rebinds); the io cache holds run-scoped activations.
        self._io_cache = {}
        super()._install(synapse_stats, neuron_stats)
        for module in self._pool_modules:
            self._set_forward(module, self._make_pool_interceptor(module))

    def _uninstall(self) -> None:
        super()._uninstall()
        self._io_cache = {}
        self._step_spikes = {}

    def _make_neuron_interceptor(self, module, stat):
        orig = module.forward

        def forward(x: Tensor) -> Tensor:
            out = orig(x)
            if self._stream_run:
                # The spike plane re-enters the carried stream: its
                # coordinates come from the step's own spike mask, and
                # every downstream consumer reads them instead of
                # scanning the plane.
                coords = np.stack(np.nonzero(out.data), axis=1)
                self._register_spikes(
                    out.data, StepSpikes(coords=coords, shape=out.data.shape)
                )
            return out

        return forward

    def _make_pool_interceptor(self, module):
        orig = module.forward
        kernel, stride = module.kernel_size, module.stride

        def forward(x: Tensor) -> Tensor:
            out = orig(x)
            if self._stream_run:
                step = self._carried_spikes(x.data)
                if step is not None:
                    coords = pooled_coords(step, kernel, stride, out.data.shape)
                    if coords is not None:
                        self._register_spikes(
                            out.data, StepSpikes(coords=coords, shape=out.data.shape)
                        )
            return out

        return forward

    def _make_interceptor(self, module, stat, orig):
        is_conv = isinstance(module, Conv2d)

        def forward(x: Tensor) -> Tensor:
            data = x.data
            dense_ops = _dense_op_count(module, data.shape)
            stat.dense_synaptic_ops += dense_ops
            cached = self._io_cache.get(id(module))
            if cached is not None and cached[0] is data:
                # Identical input array as last timestep (the constant
                # analog frame): reuse the output, bill the same ops.
                stat.synaptic_ops += cached[2]
                return Tensor(cached[1])
            step = self._carried_spikes(data)
            if step is not None:
                density = step.density
            else:
                density = np.count_nonzero(data) / max(data.size, 1)
            weight = self._effective_weight(module)
            bias = module.bias.data if module.bias is not None else None
            if density >= self.density_threshold:
                # Dense input (e.g. the analog frame): no sparsity to
                # exploit — run the plain kernel and, like the PS-side
                # frame conv, bill the full dense MAC count.
                if is_conv:
                    out = dense_conv2d(
                        data, weight, bias, module.stride, module.padding
                    )
                else:
                    out = data @ weight.T if bias is None else data @ weight.T + bias
                billed = dense_ops
            elif is_conv:
                active_rows = performed = None
                if step is not None:
                    active_rows, entries = conv_active_windows(
                        step.coords,
                        data.shape,
                        module.kernel_size,
                        module.stride,
                        module.padding,
                    )
                    performed = entries * module.out_channels
                out, billed = sparse_conv2d(
                    data,
                    weight,
                    bias,
                    module.stride,
                    module.padding,
                    active_rows=active_rows,
                    performed=performed,
                )
            else:
                active = performed = None
                if step is not None:
                    active = np.unique(step.coords[:, 1])
                    performed = step.num_events * module.out_features
                out, billed = sparse_linear(
                    data, weight, bias, active=active, performed=performed
                )
            stat.synaptic_ops += billed
            self._io_cache[id(module)] = (data, out, billed)
            return Tensor(out)

        return forward
