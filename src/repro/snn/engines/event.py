"""Event-driven backend: compute only active spike contributions.

Conv and linear layers whose input plane is sparse are executed by
gathering the active im2col rows (output windows touched by at least
one spike) and the active columns (taps that carry a spike anywhere in
the batch) and multiplying only that submatrix — per-timestep matmul
cost scales with spike rate, mirroring the paper's aggregation core.
Dense inputs (the analog input frame, like the PS-side frame conv in
§IV) fall back to the dense kernel.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.layers import Conv2d
from repro.nn.module import Module
from repro.snn.engines.base import (
    LRUCache,
    SimulationEngine,
    WEIGHT_CACHE_CAPACITY,
    _dense_op_count,
    _effective_weight,
)
from repro.snn.engines.dense import dense_conv2d
from repro.tensor import Tensor
from repro.tensor.functional import im2col


def sparse_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: int,
    padding: int,
) -> Tuple[np.ndarray, int]:
    """Event-driven convolution of a sparse activation plane.

    Gathers the active im2col rows (output windows touched by at least
    one spike) and the active columns (taps carrying a spike anywhere
    in the batch) and multiplies only that submatrix when it is a
    genuine shrink; silent windows contribute exactly zero (plus
    bias), so the result equals the dense convolution up to float
    summation order.  When the submatrix is not meaningfully smaller
    the full matrix is multiplied — on this numpy substrate a dense
    BLAS matmul outruns any per-element sparse route at moderate
    densities, so the gather gate is what keeps the event backend at
    wall-clock parity with dense outside the very sparse regime where
    it wins outright.

    Returns ``(output, performed_ops)`` where ``performed_ops`` counts
    one op per nonzero im2col entry per output channel — the
    event-driven synaptic-operation count the hardware's aggregation
    core would execute, which is what the run statistics report.
    """
    n = x.shape[0]
    c_out, _, k, _ = weight.shape
    cols, oh, ow = im2col(x, k, stride, padding)
    w_mat = weight.reshape(c_out, -1)
    performed = int(np.count_nonzero(cols)) * c_out
    row_active = cols.any(axis=1)
    active_rows = np.flatnonzero(row_active)
    if active_rows.size == cols.shape[0]:
        out = cols @ w_mat.T
    else:
        out = np.zeros(
            (cols.shape[0], c_out), dtype=np.result_type(x.dtype, weight.dtype)
        )
        if active_rows.size:
            sub = cols[active_rows]
            active_cols = np.flatnonzero(sub.any(axis=0))
            if active_rows.size * active_cols.size < 0.25 * cols.size:
                out[active_rows] = sub[:, active_cols] @ w_mat[:, active_cols].T
            else:
                out[active_rows] = sub @ w_mat.T
    if bias is not None:
        out += bias
    out = out.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)
    return np.ascontiguousarray(out), performed


def sparse_linear(
    x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]
) -> Tuple[np.ndarray, int]:
    """Event-driven affine map over a sparse feature batch."""
    active = np.flatnonzero(x.any(axis=0))
    performed = int(np.count_nonzero(x)) * weight.shape[0]
    if active.size == x.shape[1]:
        # Every feature fires somewhere in the batch: gathering would
        # copy both operands for nothing.
        out = x @ weight.T
    else:
        out = x[:, active] @ weight[:, active].T
    if bias is not None:
        out = out + bias
    return out, performed


class SparseEventEngine(SimulationEngine):
    """Event-driven backend: compute only active spike contributions.

    Effective (fake-quantised) weights are computed once per run and
    all conv/linear layers execute through the sparsity-adaptive
    kernels above.  ``density_threshold`` gates the *accounting*:
    inputs whose nonzero fraction reaches it (e.g. the analog input
    frame) are billed at the full dense MAC count, mirroring the
    PS-side frame convolution in the paper, instead of the
    per-spike-contribution count.
    """

    name = "event"

    def __init__(
        self, density_threshold: float = 0.6, profile_layers: bool = True
    ) -> None:
        super().__init__(profile_layers=profile_layers)
        if not 0.0 < density_threshold <= 1.0:
            raise ValueError("density_threshold must be in (0, 1]")
        self.density_threshold = density_threshold
        self._weight_cache = LRUCache(WEIGHT_CACHE_CAPACITY)
        # Last (input, output, billed ops) per layer within one run.
        # Direct encoding feeds the first conv the *same* frame array
        # every timestep, so its output is reused T-1 times — the
        # software twin of the accelerator's frame-psum cache.  The
        # identity check makes this safe for every other layer too:
        # downstream activations are fresh arrays each timestep.
        self._io_cache: Dict[int, Tuple[np.ndarray, np.ndarray, int]] = {}

    def _config(self) -> dict:
        config = super()._config()
        config["density_threshold"] = self.density_threshold
        return config

    def _share_caches(self, peer: "SimulationEngine") -> None:
        peer._weight_cache = self._weight_cache

    def _effective_weight(self, module: Module) -> np.ndarray:
        return _effective_weight(module, self._weight_cache)

    def _install(self, synapse_stats, neuron_stats) -> None:
        # The weight cache survives runs (entries self-invalidate on
        # parameter rebinds); the io cache holds run-scoped activations.
        self._io_cache = {}
        super()._install(synapse_stats, neuron_stats)

    def _uninstall(self) -> None:
        super()._uninstall()
        self._io_cache = {}

    def _make_interceptor(self, module, stat, orig):
        is_conv = isinstance(module, Conv2d)

        def forward(x: Tensor) -> Tensor:
            data = x.data
            dense_ops = _dense_op_count(module, data.shape)
            stat.dense_synaptic_ops += dense_ops
            cached = self._io_cache.get(id(module))
            if cached is not None and cached[0] is data:
                # Identical input array as last timestep (the constant
                # analog frame): reuse the output, bill the same ops.
                stat.synaptic_ops += cached[2]
                return Tensor(cached[1])
            density = np.count_nonzero(data) / max(data.size, 1)
            weight = self._effective_weight(module)
            bias = module.bias.data if module.bias is not None else None
            if density >= self.density_threshold:
                # Dense input (e.g. the analog frame): no sparsity to
                # exploit — run the plain kernel and, like the PS-side
                # frame conv, bill the full dense MAC count.
                if is_conv:
                    out = dense_conv2d(
                        data, weight, bias, module.stride, module.padding
                    )
                else:
                    out = data @ weight.T if bias is None else data @ weight.T + bias
                billed = dense_ops
            else:
                if is_conv:
                    out, billed = sparse_conv2d(
                        data, weight, bias, module.stride, module.padding
                    )
                else:
                    out, billed = sparse_linear(data, weight, bias)
            stat.synaptic_ops += billed
            self._io_cache[id(module)] = (data, out, billed)
            return Tensor(out)

        return forward
