"""The engine interface: run schedule, instrumentation and shared caches.

:class:`SimulationEngine` owns everything common to all backends — the
timestep/shard orchestration in :meth:`SimulationEngine.run`, the
per-run reset/install/execute/collect cycle in
:meth:`SimulationEngine._run_single`, and the per-layer wall-clock
profiling wrappers (see :mod:`repro.snn.engines.profiling`) installed
around every interceptor.  Backends customise per-layer execution by
overriding :meth:`SimulationEngine._make_interceptor` (synapse layers)
and :meth:`SimulationEngine._make_neuron_interceptor` (stateful
layers), or the whole schedule via :meth:`SimulationEngine._execute`.
"""

from __future__ import annotations

import abc
import logging
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.nn.quant import QuantConv2d, QuantLinear, _WeightFakeQuant
from repro.snn.convert import reset_network_state
from repro.snn.engines.profiling import profiled_call
from repro.snn.engines.sharding import (
    SHARD_MODES,
    ShardPolicy,
    resolve_shard_mode,
    run_batch_shards,
    split_bounds,
)

logger = logging.getLogger(__name__)
from repro.snn.neurons import IFNeuron
from repro.snn.spikes import SpikeStream
from repro.snn.stats import LayerStats, RunStats
from repro.tensor import Tensor, no_grad


@dataclass
class EngineRun:
    """Result of one engine invocation.

    ``plan``, ``dropped_plan_key`` and ``observations`` are
    engine-private payloads shipped back from shard workers (picklable,
    so they survive the fork-pool return trip): the auto engine uses
    them to hand a freshly compiled execution plan, a drift-guard
    eviction, or the calibration's raw ``(backend, ops, ms)`` cost
    samples from a worker back to the parent's surviving plan cache and
    cost model.
    """

    logits: np.ndarray
    stats: RunStats
    per_step: Optional[List[np.ndarray]] = None
    plan: Optional[object] = None
    dropped_plan_key: Optional[Tuple] = None
    observations: Optional[List[Tuple]] = None


# ----------------------------------------------------------------------
# Bounded caches
# ----------------------------------------------------------------------
class LRUCache:
    """A small thread-safe least-recently-used mapping.

    Long-lived processes bind engines to many models over time; every
    cross-run cache in the engine layer (effective weights, compiled
    execution plans) is bounded by one of these so memory cannot grow
    without limit.  The lock makes it shareable between the thread-shard
    sibling engines, which deduplicates work across shards.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._data: "OrderedDict" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key, default=None):
        with self._lock:
            if key not in self._data:
                return default
            self._data.move_to_end(key)
            return self._data[key]

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def pop(self, key, default=None):
        """Remove and return an entry (drift-triggered plan invalidation)."""
        with self._lock:
            return self._data.pop(key, default)

    def items(self) -> List[Tuple]:
        """Snapshot of (key, value) pairs, least-recently-used first."""
        with self._lock:
            return list(self._data.items())

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data


# An effective-weight cache entry: the exact source arrays it was
# computed from (held strongly, so their ids cannot be recycled) plus
# the result.  Every weight-update path in this repo *rebinds*
# ``param.data`` (optimizer steps and ``load_state_dict`` both assign a
# fresh array), so identity checks against the sources detect any
# training or checkpoint load and invalidate automatically.
_WeightEntry = Tuple[np.ndarray, Optional[np.ndarray], Optional[int], np.ndarray]

#: Entries the per-engine effective-weight LRU holds — comfortably more
#: than the synapse layers of the deepest model here, small enough that
#: a process cycling through many models stays bounded.
WEIGHT_CACHE_CAPACITY = 128


def _effective_weight(module: Module, cache: LRUCache) -> np.ndarray:
    """Fake-quantised weight of ``module``, cached across runs.

    Effective weights are constant across timesteps (and across runs,
    until the parameters are rebound by training), so engines that
    bypass the module's own forward pay the fake-quant
    straight-through op once instead of per call.
    """
    key = id(module)
    source = module.weight.data
    is_quant = isinstance(module, (QuantConv2d, QuantLinear))
    scale = module.weight_scale.data if is_quant else None
    bits = module.bits if is_quant else None
    entry = cache.get(key)
    if (
        entry is not None
        and entry[0] is source
        and entry[1] is scale
        and entry[2] == bits
    ):
        return entry[3]
    if is_quant:
        with no_grad():
            weight = _WeightFakeQuant.apply(
                module.weight, module.weight_scale, module.bits
            ).data
    else:
        weight = source
    cache.put(key, (source, scale, bits, weight))
    return weight


# ----------------------------------------------------------------------
# Op accounting
# ----------------------------------------------------------------------
def _conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def _dense_op_count(module: Module, x_shape: Sequence[int]) -> int:
    """MACs a dense execution of ``module`` needs on input ``x_shape``."""
    if isinstance(module, Conv2d):
        n, c, h, w = x_shape
        oh = _conv_out_size(h, module.kernel_size, module.stride, module.padding)
        ow = _conv_out_size(w, module.kernel_size, module.stride, module.padding)
        taps = c * module.kernel_size * module.kernel_size
        return n * oh * ow * taps * module.out_channels
    return int(x_shape[0]) * module.in_features * module.out_features


# ----------------------------------------------------------------------
# Engine interface
# ----------------------------------------------------------------------
class SimulationEngine(abc.ABC):
    """Executes a converted spiking model for T timesteps.

    Engines are bound to a model once (:meth:`bind`) and then invoked
    through :meth:`run`, which owns the timestep loop, state reset and
    statistics collection.  Subclasses customise per-layer execution by
    installing instance-level forward interceptors for the duration of
    a run, and may replace the whole-run schedule via :meth:`_execute`.

    ``profile_layers`` (default on) wraps every interceptor in a
    near-zero-overhead ``perf_counter`` pair that attributes wall clock
    (and, for synapse layers, observed input density) to each layer's
    :class:`repro.snn.stats.LayerStats` — the data behind
    :meth:`repro.snn.stats.RunStats.profile_table` and the adaptive
    engine's calibration.
    """

    name: str = "abstract"

    def __init__(self, profile_layers: bool = True) -> None:
        self.profile_layers = bool(profile_layers)
        self.model: Optional[Module] = None
        self._synapse_modules: List[Tuple[str, Module]] = []
        self._neuron_modules: List[Tuple[str, IFNeuron]] = []
        self._installed: List[Module] = []
        # Thread-shard infrastructure, built lazily and reused across
        # runs (see repro.snn.engines.sharding): sibling engines bound
        # to persistent model clones keyed by shard count, plus one
        # long-lived pool so worker threads (and their thread-local
        # im2col pad workspaces) survive between runs.
        self._thread_peers: Dict[int, List["SimulationEngine"]] = {}
        self._thread_pool = None
        self._thread_pool_size = 0

    # ------------------------------------------------------------------
    def bind(self, model: Module) -> "SimulationEngine":
        """Attach the engine to a converted model (discovers layers)."""
        if model is not self.model:
            self._thread_peers = {}  # clones mirror the previous model
        self.model = model
        self._synapse_modules = []
        self._neuron_modules = []
        for name, module in model.named_modules():
            if isinstance(module, (Conv2d, Linear)):
                self._synapse_modules.append((name or type(module).__name__, module))
            elif isinstance(module, IFNeuron):
                self._neuron_modules.append((name or type(module).__name__, module))
        return self

    # ------------------------------------------------------------------
    # Thread-shard siblings
    # ------------------------------------------------------------------
    def _config(self) -> dict:
        """Constructor kwargs that reproduce this engine's configuration."""
        return {"profile_layers": self.profile_layers}

    def _share_caches(self, peer: "SimulationEngine") -> None:
        """Point ``peer`` at this engine's cross-run caches (all the
        shared caches are thread-safe :class:`LRUCache` instances)."""

    def _sibling(self) -> "SimulationEngine":
        """A same-configuration engine for one thread-shard worker.

        Siblings share the thread-safe cross-run caches but nothing
        run-scoped, and each binds to its own structural clone of the
        model, so concurrent shards never touch the same module state.
        """
        peer = type(self)(**self._config())
        self._share_caches(peer)
        return peer

    def _absorb_shard_runs(self, runs: List["EngineRun"]) -> None:
        """Fold shard-worker payloads back into the parent engine.

        Fork-pool workers are throwaway processes: anything they learn
        (the auto engine's compiled plans) is lost unless it rides back
        on the :class:`EngineRun`.  The base engine has nothing to
        absorb.
        """

    # ------------------------------------------------------------------
    def run(
        self,
        x: np.ndarray,
        timesteps: int,
        per_step: bool = False,
        workers: int = 1,
        shard_mode: str = "auto",
        shard_policy: Optional[ShardPolicy] = None,
    ) -> EngineRun:
        """Run a batch for T timesteps; accumulate logits in place.

        ``workers > 1`` shards the batch dimension into contiguous
        blocks executed in parallel; logits are concatenated in batch
        order and per-shard statistics merged, so rates and op counts
        match a single-worker run (up to float summation order at shard
        boundaries — a shard is a smaller GEMM, the same caveat as any
        BLAS reordering).  ``shard_mode`` picks the parallel substrate:
        ``"fork"`` (processes sharing weights copy-on-write),
        ``"thread"`` (a thread pool over model clones that share weight
        arrays — BLAS releases the GIL on the hot GEMMs, and it works
        where fork is unavailable), or ``"auto"`` (fork where the
        platform has it, threads otherwise).

        ``x`` may also be a COO :class:`repro.snn.spikes.SpikeStream`
        — per-timestep input planes instead of one direct-coded frame.
        The stream's ``timesteps`` must match ``timesteps``, and shards
        slice the stream's batch axis exactly like a dense batch.

        Sharded runs execute under a supervisor (see
        :mod:`repro.snn.engines.sharding`): a shard that crashes or
        hangs past ``shard_policy.timeout`` is retried and, if
        necessary, re-run down the ``fork -> thread -> serial``
        degradation chain — logits stay bit-identical (same kernels,
        same slices) and the failure trail lands on
        ``RunStats.shard_failures`` / ``RunStats.degraded_shard_mode``.
        """
        if self.model is None:
            raise RuntimeError("engine is not bound to a model; call bind() first")
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if shard_mode not in SHARD_MODES:
            raise ValueError(
                f"unknown shard_mode {shard_mode!r}; choose from {SHARD_MODES}"
            )
        if isinstance(x, SpikeStream):
            if timesteps != x.timesteps:
                raise ValueError(
                    f"timesteps ({timesteps}) must match the input stream's "
                    f"({x.timesteps}); a SpikeStream carries its own time axis"
                )
        else:
            x = np.asarray(x)
        requested = int(workers)
        workers = min(requested, max(int(x.shape[0]), 1))
        if workers < requested:
            # Clamp instead of spawning empty shards; one warning so a
            # mis-sized fleet is visible without spamming per shard.
            logger.warning(
                "workers=%d exceeds the batch size %d; clamping to %d "
                "single-sample shard(s)",
                requested,
                int(x.shape[0]),
                workers,
            )
        if workers == 1:
            # No sharding happens: don't demand a working fork (a
            # shard_mode="fork" request must not crash single-worker
            # runs on fork-less platforms).
            return self._run_single(x, timesteps, per_step)
        mode = resolve_shard_mode(shard_mode)

        started = time.perf_counter()
        bounds = split_bounds(int(x.shape[0]), workers)
        outcome = run_batch_shards(
            self, x, timesteps, per_step, bounds, mode, policy=shard_policy
        )
        runs = outcome.results
        self._absorb_shard_runs(runs)
        logits = np.concatenate([run.logits for run in runs], axis=0)
        stats = runs[0].stats
        for run in runs[1:]:
            stats.merge(run.stats)
        stats.workers = len(bounds)
        stats.shard_mode = mode
        stats.shard_failures = list(outcome.failures)
        stats.degraded_shard_mode = outcome.degraded_mode
        # Shard wall clocks overlap; report the parent-observed elapsed.
        stats.wall_clock_seconds = time.perf_counter() - started
        outputs: Optional[List[np.ndarray]] = None
        if per_step:
            outputs = [
                np.concatenate([run.per_step[t] for run in runs], axis=0)
                for t in range(timesteps)
            ]
        return EngineRun(logits=logits, stats=stats, per_step=outputs)

    def _run_single(self, x: np.ndarray, timesteps: int, per_step: bool) -> EngineRun:
        """One in-process run: reset, instrument, execute, collect stats."""
        started = time.perf_counter()
        reset_network_state(self.model)
        synapse_stats = {
            name: LayerStats(name=name, kind="linear" if isinstance(m, Linear) else "conv")
            for name, m in self._synapse_modules
        }
        neuron_stats = {
            name: LayerStats(name=name, kind="neuron") for name, _ in self._neuron_modules
        }
        neuron_base = {
            name: (m.spike_count, m.neuron_steps) for name, m in self._neuron_modules
        }
        self._install(synapse_stats, neuron_stats)
        try:
            total, outputs = self._execute(x, timesteps, per_step)
        finally:
            self._uninstall()

        layers: List[LayerStats] = []
        for name, module in self._all_layers_in_order():
            if isinstance(module, IFNeuron):
                base_spikes, base_steps = neuron_base[name]
                stat = neuron_stats[name]
                stat.spike_count = module.spike_count - base_spikes
                stat.neuron_steps = module.neuron_steps - base_steps
                stat.timesteps = timesteps
                layers.append(stat)
            else:
                stat = synapse_stats[name]
                stat.timesteps = timesteps
                layers.append(stat)
        stats = RunStats(
            batch_size=int(x.shape[0]),
            timesteps=timesteps,
            layers=layers,
            engine=self.name,
            wall_clock_seconds=time.perf_counter() - started,
        )
        return EngineRun(logits=total, stats=stats, per_step=outputs)

    def _execute(
        self, x: np.ndarray, timesteps: int, per_step: bool
    ) -> Tuple[np.ndarray, Optional[List[np.ndarray]]]:
        """The run schedule: default is time-outer/model-inner.

        Returns ``(accumulated_logits, per_step_cumulative_or_None)``.
        Subclasses may restructure the whole schedule (e.g. the
        time-batched engine runs the model once over a ``(T*N, ...)``
        stack).

        Dense inputs present the *same* direct-coded frame Tensor every
        timestep (its stable array identity is what enables the event
        engine's frame-psum reuse); a :class:`SpikeStream` presents one
        materialised plane per timestep via :meth:`_stream_step_input`.
        """
        total: Optional[np.ndarray] = None
        outputs: Optional[List[np.ndarray]] = [] if per_step else None
        stream = isinstance(x, SpikeStream)
        inp = None if stream else Tensor(x)
        with no_grad():
            for t in range(timesteps):
                step_in = self._stream_step_input(x, t) if stream else inp
                logits = self.model(step_in).data
                if total is None:
                    total = logits.copy()
                else:
                    total += logits
                if outputs is not None:
                    outputs.append(total.copy())
        return total, outputs

    def _stream_step_input(self, stream: SpikeStream, t: int) -> Tensor:
        """Materialise one timestep of a COO input stream.

        The default densifies the step's coordinates; the event engine
        overrides this to also register the coordinates so downstream
        layers consume them without re-deriving sparsity from the plane.
        """
        return Tensor(stream.step(t).to_dense())

    def _all_layers_in_order(self) -> List[Tuple[str, Module]]:
        """Synapse and neuron layers interleaved in graph (registration) order."""
        synapse = dict(self._synapse_modules)
        neurons = dict(self._neuron_modules)
        ordered: List[Tuple[str, Module]] = []
        for name, module in self.model.named_modules():
            if name in synapse or name in neurons:
                ordered.append((name, module))
        return ordered

    # ------------------------------------------------------------------
    # Per-run instrumentation hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _make_interceptor(
        self, module: Module, stat: LayerStats, orig: Callable[[Tensor], Tensor]
    ) -> Callable[[Tensor], Tensor]:
        """Build the forward replacement installed on ``module`` for a run."""

    def _make_neuron_interceptor(
        self, module: IFNeuron, stat: LayerStats
    ) -> Optional[Callable[[Tensor], Tensor]]:
        """Forward replacement for a stateful neuron layer, or None to
        run the module's own forward (the time-outer engines)."""
        return None

    def _input_nonzero_of(self, data: np.ndarray) -> Optional[int]:
        """Known nonzero count of an input plane, or None to scan it.

        The profiler asks here before paying a ``count_nonzero`` pass;
        the event engine answers from carried stream metadata (COO
        coordinates), so stream-fed layers record density without ever
        re-deriving it from the dense plane.
        """
        return None

    def _set_forward(self, module: Module, forward: Callable) -> None:
        object.__setattr__(module, "forward", forward)
        self._installed.append(module)

    def _install(
        self,
        synapse_stats: Dict[str, LayerStats],
        neuron_stats: Dict[str, LayerStats],
    ) -> None:
        self._installed = []
        for name, module in self._synapse_modules:
            stat = synapse_stats[name]
            interceptor = self._make_interceptor(module, stat, module.forward)
            if self.profile_layers:
                interceptor = profiled_call(
                    interceptor,
                    stat,
                    record_density=True,
                    nonzero_of=self._input_nonzero_of,
                )
            self._set_forward(module, interceptor)
        for name, module in self._neuron_modules:
            stat = neuron_stats[name]
            interceptor = self._make_neuron_interceptor(module, stat)
            if interceptor is None:
                if not self.profile_layers:
                    continue  # nothing to intercept: run the module as-is
                interceptor = module.forward
            if self.profile_layers:
                interceptor = profiled_call(interceptor, stat, record_density=False)
            self._set_forward(module, interceptor)

    def _uninstall(self) -> None:
        for module in self._installed:
            if "forward" in module.__dict__:
                object.__delattr__(module, "forward")
        self._installed = []
