"""Pluggable simulation engines for timestep-unrolled SNN execution.

The paper's central claim is that event-driven, sparsity-exploiting
execution is what makes the accelerator fast: per timestep the hardware
only pays for kernel-row segments that actually carry spikes.  This
package structures SNN execution as an engine layer with four backends
behind one :class:`SimulationEngine` interface:

``DenseEngine`` (:mod:`repro.snn.engines.dense`)
    The reference backend: one dense forward pass of the converted
    model per timestep (exactly the old ``SpikingNetwork`` behaviour).

``SparseEventEngine`` (:mod:`repro.snn.engines.event`)
    Propagates only active spike events; conv/linear cost scales with
    spike rate, mirroring the paper's aggregation core.

``TimeBatchedEngine`` (:mod:`repro.snn.engines.batched`)
    The wall-clock backend: layer-outer/time-inner execution, one GEMM
    per stateless layer over a ``(T*N, ...)`` stack.

``AutoEngine`` (:mod:`repro.snn.engines.auto`)
    The adaptive backend: profiles a calibration run (per-layer wall
    clock + observed density) and compiles a cached per-layer plan —
    batched GEMM where dense arithmetic wins, event gather where the
    measured sparsity pays, the same measure-then-specialise loop the
    paper's mapper applies in hardware.

All engines run the *same* module graph — backends install
per-instance forward interceptors for the duration of a run — so
arbitrary models (VGG chains, ResNet residual graphs) work identically
on any backend, and their logits agree up to float summation order.
Every run produces a :class:`repro.snn.stats.RunStats` with per-layer
spike rates, performed-vs-dense synaptic-op counts and (when
``profile_layers`` is on, the default) per-layer wall clock and input
density — rendered by ``RunStats.profile_table()``.

:meth:`SimulationEngine.run` additionally accepts ``workers=K`` to
shard the batch dimension across forked processes or a thread pool
(``shard_mode="fork" | "thread" | "auto"``, see
:mod:`repro.snn.engines.sharding`); shard results are concatenated and
their stats merged, so a K-worker run reports the same rates and op
counts as a single-worker run.
"""

from __future__ import annotations

from typing import Union

from repro.snn.engines.auto import (
    AutoEngine,
    DENSITY_BUCKET_EDGES,
    ExecutionPlan,
    LayerDecision,
    PLAN_CACHE_CAPACITY,
    density_bucket,
)
from repro.snn.engines.base import (
    EngineRun,
    LRUCache,
    SimulationEngine,
    WEIGHT_CACHE_CAPACITY,
    _dense_op_count,
    _effective_weight,
)
from repro.snn.engines.batched import TimeBatchedEngine
from repro.snn.engines.costmodel import (
    CostModel,
    cost_model_path_for,
    sparse_feature_ops,
)
from repro.snn.engines.dense import DenseEngine, dense_conv2d
from repro.snn.engines.event import (
    SparseEventEngine,
    conv_active_windows,
    pooled_coords,
    sparse_conv2d,
    sparse_linear,
)
from repro.snn.engines.event_batched import EventBatchedEngine
from repro.snn.engines.profiling import profiled_call
from repro.snn.engines.service import (
    EngineWorker,
    ProbeResult,
    WorkerTimeout,
)
from repro.snn.engines.sharding import (
    DEFAULT_SHARD_POLICY,
    SHARD_MODES,
    ShardExecutionError,
    ShardFailure,
    ShardPolicy,
    SupervisedOutcome,
    clone_for_inference,
    fork_available,
    resolve_shard_mode,
    run_layer_shards,
    run_supervised,
    split_bounds,
)

# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
ENGINES = {
    "dense": DenseEngine,
    "event": SparseEventEngine,
    "sparse": SparseEventEngine,  # alias
    "batched": TimeBatchedEngine,
    "time-batched": TimeBatchedEngine,  # alias
    "event-batched": EventBatchedEngine,
    "coo": EventBatchedEngine,  # alias
    "auto": AutoEngine,
    "adaptive": AutoEngine,  # alias
}

EngineSpec = Union[str, SimulationEngine]


def make_engine(spec: EngineSpec = "dense") -> SimulationEngine:
    """Resolve an engine name or pass an instance through."""
    if isinstance(spec, SimulationEngine):
        return spec
    if isinstance(spec, str):
        try:
            return ENGINES[spec.lower()]()
        except KeyError:
            raise ValueError(
                f"unknown engine {spec!r}; choose from {sorted(set(ENGINES))}"
            ) from None
    raise TypeError(f"engine must be a name or SimulationEngine, got {type(spec)!r}")


__all__ = [
    "AutoEngine",
    "CostModel",
    "DENSITY_BUCKET_EDGES",
    "DenseEngine",
    "ENGINES",
    "EngineRun",
    "EngineSpec",
    "EngineWorker",
    "ProbeResult",
    "WorkerTimeout",
    "EventBatchedEngine",
    "ExecutionPlan",
    "LRUCache",
    "LayerDecision",
    "PLAN_CACHE_CAPACITY",
    "DEFAULT_SHARD_POLICY",
    "SHARD_MODES",
    "ShardExecutionError",
    "ShardFailure",
    "ShardPolicy",
    "SimulationEngine",
    "SparseEventEngine",
    "SupervisedOutcome",
    "TimeBatchedEngine",
    "WEIGHT_CACHE_CAPACITY",
    "clone_for_inference",
    "run_supervised",
    "run_layer_shards",
    "split_bounds",
    "conv_active_windows",
    "cost_model_path_for",
    "dense_conv2d",
    "density_bucket",
    "fork_available",
    "make_engine",
    "pooled_coords",
    "profiled_call",
    "resolve_shard_mode",
    "sparse_feature_ops",
    "sparse_linear",
    "sparse_conv2d",
]
