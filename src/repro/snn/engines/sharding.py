"""Supervised batch sharding across forked processes or a thread pool.

``SimulationEngine.run(workers=K)`` splits the batch into contiguous
shards and runs them in parallel.  Two substrates are available:

``fork``
    The classic path: worker processes forked from the parent inherit
    the engine, model weights and input batch copy-on-write, so nothing
    is pickled.  Only available where the platform has the ``fork``
    start method (not Windows, not some embedded interpreters).

``thread``
    A thread pool.  Each shard gets a *sibling* engine (same
    configuration, shared thread-safe cross-run caches) bound to a
    structural clone of the model that shares every parameter and
    buffer array but owns its own module objects — so concurrent shards
    never race on interceptors, membrane state or spike counters.  The
    hot work is BLAS GEMMs and large-array ufuncs, which release the
    GIL, so threads parallelise the same way fork does and work
    everywhere fork does not.

``resolve_shard_mode("auto")`` picks fork where available and threads
otherwise, so ``workers=K`` never silently degrades to sequential
execution.

Every parallel shard runs under a **supervisor** (:func:`run_supervised`):

* a shard that raises comes back as a structured :class:`ShardFailure`
  instead of tearing down the whole run;
* a shard that hangs past :attr:`ShardPolicy.timeout` is detected
  (``apply_async`` handles collected against a deadline), the wedged
  pool is torn down, and the shard is treated as failed;
* failed shards — and only the failed shards — are retried up to
  :attr:`ShardPolicy.retries` times with exponential backoff, then the
  run degrades down the substrate chain ``fork -> thread -> serial``.
  A shard is the same ``_run_single`` over the same contiguous slice
  with the same kernels on every substrate, so a degraded re-run
  produces bit-identical logits.

Only when the serial fallback itself fails does the supervisor raise
(:class:`ShardExecutionError`, carrying every recorded failure).  The
failure trail and the degraded substrate land on
``RunStats.shard_failures`` / ``RunStats.degraded_shard_mode`` and one
``WARNING`` log line.

The supervisor is deliberately generic — tasks are ``fn(index)``
callables, not engine shards — so the campaign runner
(:mod:`repro.eval.campaign`) fans its grid points over the same
substrate with the same failure semantics.
"""

from __future__ import annotations

import dataclasses
import logging
import multiprocessing
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.nn.module import Module

logger = logging.getLogger(__name__)

SHARD_MODES = ("auto", "fork", "thread")

#: Substrate degradation chains, keyed by the resolved starting mode.
#: ``serial`` is not a user-facing shard mode — it is the supervisor's
#: last resort, always able to run because it is the parent process
#: executing the same kernels inline.
DEGRADATION_CHAIN = {
    "fork": ("fork", "thread", "serial"),
    "thread": ("thread", "serial"),
    "serial": ("serial",),
}


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def split_bounds(total: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``(lo, hi)`` row bounds splitting ``total`` rows into
    at most ``shards`` near-equal blocks (empty blocks dropped).

    The one splitting rule every sharded path uses — whole-batch shards
    in :meth:`SimulationEngine.run` and the planner's per-layer row
    shards alike — so a degraded re-run always re-executes the exact
    same slices.
    """
    if total < 1 or shards < 1:
        return []
    shards = min(shards, total)
    step, extra = divmod(total, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + step + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def resolve_shard_mode(mode: str) -> str:
    """Normalise a user-facing shard mode to ``"fork"`` or ``"thread"``."""
    if mode == "thread":
        return "thread"
    if mode == "fork":
        if not fork_available():
            raise RuntimeError(
                "the 'fork' start method is unavailable on this platform; "
                "use shard_mode='thread' (or 'auto')"
            )
        return "fork"
    if mode == "auto":
        return "fork" if fork_available() else "thread"
    raise ValueError(f"unknown shard_mode {mode!r}; choose from {SHARD_MODES}")


# ----------------------------------------------------------------------
# Supervision policy and failure records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPolicy:
    """Failure-handling knobs for one supervised parallel wave.

    ``timeout`` is the wall-clock budget (seconds) each attempt's wave
    of shards gets; all shards of a wave start together, so a shard
    still unfinished at the deadline is hung and its substrate is torn
    down.  ``None`` disables hang detection (a clean run is never
    interrupted).  ``retries`` is the number of *extra* attempts the
    failed shards get on each substrate before the supervisor degrades
    to the next one; ``backoff`` seconds are slept before the first
    retry and doubled for each further one (transient failures —
    memory pressure, a crashed child — often clear after a beat).
    """

    timeout: Optional[float] = None
    retries: int = 1
    backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None to disable)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")


DEFAULT_SHARD_POLICY = ShardPolicy()


@dataclass(frozen=True)
class ShardFailure:
    """One failed attempt of one supervised task (shard or grid point).

    ``kind`` is ``"exception"`` (the task raised; ``error`` carries the
    exception's type and message) or ``"timeout"`` (the task was still
    running at the attempt deadline).  Instances are plain picklable
    data so they ride back from fork children and onto merged
    :class:`repro.snn.stats.RunStats` untouched.
    """

    index: int
    mode: str       # substrate that failed: "fork" | "thread" | "serial"
    attempt: int    # 1-based attempt number within that substrate
    kind: str       # "exception" | "timeout"
    error: str = ""

    def to_payload(self) -> dict:
        return dataclasses.asdict(self)


class ShardExecutionError(RuntimeError):
    """Every substrate — serial included — failed for some task."""

    def __init__(self, label: str, failures: Sequence[ShardFailure]) -> None:
        self.failures = list(failures)
        last = self.failures[-1] if self.failures else None
        detail = f"; last: {last.kind} ({last.error})" if last else ""
        super().__init__(
            f"{label}: {len(self.failures)} failure(s) exhausted the "
            f"fork->thread->serial degradation chain{detail}"
        )


@dataclass
class SupervisedOutcome:
    """Results plus the failure trail of one supervised wave."""

    results: List
    failures: List[ShardFailure] = field(default_factory=list)
    requested_mode: str = "serial"
    completed_mode: str = "serial"

    @property
    def degraded_mode(self) -> str:
        """The substrate that finished the work when it is not the one
        requested (``""`` for a run that never degraded)."""
        if self.completed_mode != self.requested_mode:
            return self.completed_mode
        return ""


# ----------------------------------------------------------------------
# Per-substrate attempt primitives.  Each returns {index: (tag, value)}
# where tag is "ok" (value = task result), "exception" (value = message)
# or "timeout" (value = "").
# ----------------------------------------------------------------------
# The fork task, published immediately before the pool forks so children
# inherit the closure — engine, weights, input batch — copy-on-write.
# Only the integer index and the result cross the pickle boundary.
_FORK_TASK: Optional[Callable[[int], object]] = None


def _fork_probe(index: int):
    """Child-side wrapper: exceptions become values, never pool crashes."""
    try:
        return ("ok", _FORK_TASK(index))
    except Exception as error:  # noqa: BLE001 - structured capture by design
        return ("exception", f"{type(error).__name__}: {error}")


def _attempt_fork(
    fn: Callable[[int], object],
    indices: Sequence[int],
    timeout: Optional[float],
) -> Dict[int, Tuple[str, object]]:
    global _FORK_TASK
    context = multiprocessing.get_context("fork")
    _FORK_TASK = fn
    outcomes: Dict[int, Tuple[str, object]] = {}
    pool = context.Pool(processes=len(indices))
    try:
        handles = {i: pool.apply_async(_fork_probe, (i,)) for i in indices}
        deadline = None if timeout is None else time.monotonic() + timeout
        breached = False
        for i, handle in handles.items():
            if breached:
                # The deadline already fell: harvest shards that did
                # finish, mark the rest hung — no further waiting.
                if handle.ready():
                    outcomes[i] = _harvest_fork(handle, 0.0)
                else:
                    outcomes[i] = ("timeout", "")
                continue
            remaining = (
                None if deadline is None else max(deadline - time.monotonic(), 0.0)
            )
            outcomes[i] = _harvest_fork(handle, remaining)
            if outcomes[i][0] == "timeout":
                breached = True
        return outcomes
    finally:
        _FORK_TASK = None
        # terminate(), not close(): a hung worker never drains a close,
        # and even on the clean path the children are throwaway.
        pool.terminate()
        pool.join()


def _harvest_fork(handle, timeout: Optional[float]) -> Tuple[str, object]:
    try:
        return handle.get(timeout)
    except multiprocessing.TimeoutError:
        return ("timeout", "")
    except Exception as error:  # noqa: BLE001 - pool plumbing (pickling, crash)
        return ("exception", f"{type(error).__name__}: {error}")


def _attempt_thread(
    fn: Callable[[int], object],
    indices: Sequence[int],
    timeout: Optional[float],
    executor_factory: Callable[[int], ThreadPoolExecutor],
    executor_discard: Callable[[], None],
) -> Dict[int, Tuple[str, object]]:
    pool = executor_factory(len(indices))
    futures = {i: pool.submit(fn, i) for i in indices}
    deadline = None if timeout is None else time.monotonic() + timeout
    breached = False
    outcomes: Dict[int, Tuple[str, object]] = {}
    for i, future in futures.items():
        if breached:
            if future.done():
                outcomes[i] = _harvest_thread(future, 0.0)
            else:
                future.cancel()
                outcomes[i] = ("timeout", "")
            continue
        remaining = (
            None if deadline is None else max(deadline - time.monotonic(), 0.0)
        )
        outcomes[i] = _harvest_thread(future, remaining)
        if outcomes[i][0] == "timeout":
            breached = True
    if breached:
        # A thread cannot be killed: the hung worker keeps occupying its
        # pool slot, so the pool itself is abandoned and the owner told
        # to build a fresh one for any further attempt.
        executor_discard()
    return outcomes


def _harvest_thread(future, timeout: Optional[float]) -> Tuple[str, object]:
    try:
        return ("ok", future.result(timeout))
    except FutureTimeoutError:
        future.cancel()
        return ("timeout", "")
    except Exception as error:  # noqa: BLE001 - structured capture by design
        return ("exception", f"{type(error).__name__}: {error}")


def _attempt_serial(
    fn: Callable[[int], object], indices: Sequence[int]
) -> Dict[int, Tuple[str, object]]:
    outcomes: Dict[int, Tuple[str, object]] = {}
    for i in indices:
        try:
            outcomes[i] = ("ok", fn(i))
        except Exception as error:  # noqa: BLE001 - structured capture by design
            outcomes[i] = ("exception", f"{type(error).__name__}: {error}")
    return outcomes


# ----------------------------------------------------------------------
# The generic supervisor
# ----------------------------------------------------------------------
def run_supervised(
    count: int,
    mode: str,
    policy: Optional[ShardPolicy],
    serial_fn: Callable[[int], object],
    fork_fn: Optional[Callable[[int], object]] = None,
    thread_fn: Optional[Callable[[int], object]] = None,
    thread_prepare: Optional[Callable[[], None]] = None,
    thread_executor_factory: Optional[Callable[[int], ThreadPoolExecutor]] = None,
    thread_executor_discard: Optional[Callable[[], None]] = None,
    label: str = "shard",
) -> SupervisedOutcome:
    """Run ``count`` independent tasks on substrate ``mode`` under
    supervision: per-task failure capture, attempt deadlines, bounded
    retries with backoff, and the fork->thread->serial degradation
    chain re-running only the failed tasks.

    ``serial_fn`` is the canonical task body and the fallback of last
    resort; ``fork_fn``/``thread_fn`` default to it (fork children
    inherit the closure copy-on-write, threads call it directly).
    ``thread_prepare`` runs once before each thread attempt — the place
    to build per-task thread peers.  ``thread_executor_factory`` lets a
    caller lend a cached pool; ``thread_executor_discard`` is invoked
    when a hang poisons that pool.  Raises :class:`ShardExecutionError`
    only when a task failed on every substrate in the chain.
    """
    if mode not in DEGRADATION_CHAIN:
        raise ValueError(
            f"unknown supervised mode {mode!r}; choose from "
            f"{tuple(DEGRADATION_CHAIN)}"
        )
    policy = DEFAULT_SHARD_POLICY if policy is None else policy
    if count == 0:
        return SupervisedOutcome(
            results=[], requested_mode=mode, completed_mode=mode
        )
    fork_fn = serial_fn if fork_fn is None else fork_fn
    thread_fn = serial_fn if thread_fn is None else thread_fn

    owned_pools: List[ThreadPoolExecutor] = []
    if thread_executor_factory is None:
        def thread_executor_factory(n: int) -> ThreadPoolExecutor:
            # A fresh pool per attempt: a breached attempt's hung
            # workers stay stranded in their old pool, which the exit
            # path below abandons without waiting.
            pool = ThreadPoolExecutor(
                max_workers=n, thread_name_prefix=f"{label}-supervised"
            )
            owned_pools.append(pool)
            return pool

    if thread_executor_discard is None:
        def thread_executor_discard() -> None:
            pass  # owned pools are shut down on exit below

    results: List = [None] * count
    failures: List[ShardFailure] = []
    pending = list(range(count))
    completed_mode = mode
    try:
        for substrate in DEGRADATION_CHAIN[mode]:
            attempts = 1 + max(policy.retries, 0)
            for attempt in range(1, attempts + 1):
                if attempt > 1 and policy.backoff > 0:
                    time.sleep(policy.backoff * (2 ** (attempt - 2)))
                if substrate == "fork":
                    outcomes = _attempt_fork(fork_fn, pending, policy.timeout)
                elif substrate == "thread":
                    if thread_prepare is not None:
                        thread_prepare()
                    outcomes = _attempt_thread(
                        thread_fn,
                        pending,
                        policy.timeout,
                        thread_executor_factory,
                        thread_executor_discard,
                    )
                else:
                    outcomes = _attempt_serial(serial_fn, pending)
                still_pending: List[int] = []
                for i in pending:
                    tag, value = outcomes[i]
                    if tag == "ok":
                        results[i] = value
                    else:
                        failures.append(
                            ShardFailure(
                                index=i,
                                mode=substrate,
                                attempt=attempt,
                                kind=tag,
                                error=str(value),
                            )
                        )
                        still_pending.append(i)
                pending = still_pending
                if not pending:
                    break
            if not pending:
                completed_mode = substrate
                break
    finally:
        for pool in owned_pools:
            pool.shutdown(wait=False)
    if pending:
        raise ShardExecutionError(label, failures)
    if failures:
        by_kind = {
            kind: sum(1 for f in failures if f.kind == kind)
            for kind in ("exception", "timeout")
        }
        logger.warning(
            "%s supervisor: %d failure(s) (%d exception, %d timeout) across "
            "%d task(s); recovered on the %r substrate (requested %r)",
            label,
            len(failures),
            by_kind["exception"],
            by_kind["timeout"],
            count,
            completed_mode,
            mode,
        )
    return SupervisedOutcome(
        results=results,
        failures=failures,
        requested_mode=mode,
        completed_mode=completed_mode,
    )


# ----------------------------------------------------------------------
# Thread sharding
# ----------------------------------------------------------------------
def clone_for_inference(module: Module) -> Module:
    """Structurally clone a module tree, sharing all parameters/buffers.

    Every :class:`Module` object is fresh (own ``_modules`` /
    ``_parameters`` / ``_buffers`` dicts, own neuron membrane and spike
    counters once it runs), while every Parameter and buffer array is
    the *same object* as the source's — weights are shared, never
    copied, and a training step that rebinds ``param.data`` is visible
    to every clone because the Parameter itself is shared.  Attributes
    that point at child modules (``self.conv1`` and friends) are
    remapped onto the corresponding clones; an installed forward
    interceptor (only present mid-run) is never carried over.
    """
    children = OrderedDict(
        (name, clone_for_inference(child)) for name, child in module._modules.items()
    )
    remap = {
        id(original): children[name]
        for name, original in module._modules.items()
    }
    clone = object.__new__(type(module))
    for key, value in module.__dict__.items():
        if key == "_modules":
            value = children
        elif key in ("_parameters", "_buffers"):
            value = OrderedDict(value)
        elif key == "forward":
            continue
        elif isinstance(value, Module):
            value = remap.get(id(value), value)
        elif isinstance(value, (list, tuple)):
            value = type(value)(remap.get(id(item), item) for item in value)
        object.__setattr__(clone, key, value)
    return clone


def _peers_stale(engine, peers) -> bool:
    """Detect model changes the weight-sharing clones cannot mirror.

    Shared Parameter objects track ``param.data`` rebinds for free, but
    a rebound *buffer* (``load_state_dict`` on BN running stats) or a
    train/eval flip only lands on the original modules — either one
    means the cached clones must be rebuilt.
    """
    for peer in peers:
        if peer.model is None or peer.model.training != engine.model.training:
            return True
        for (_, original), (_, cloned) in zip(
            engine.model.named_buffers(), peer.model.named_buffers()
        ):
            if original is not cloned:
                return True
    return False


def _thread_peers_for(engine, count: int) -> List:
    """Sibling engines over model clones, cached on the engine.

    Rebuilding clones per run would defeat the cross-run caches (the
    effective-weight LRU is keyed by module identity, so fresh clone
    ids would miss it every time and fill it with dead entries); the
    peers persist until the bound model changes under them.
    """
    peers = engine._thread_peers.get(count)
    if peers is None or _peers_stale(engine, peers):
        peers = []
        for _ in range(count):
            peer = engine._sibling()
            peer.bind(clone_for_inference(engine.model))
            peers.append(peer)
        engine._thread_peers[count] = peers
    return peers


def _thread_pool_for(engine, count: int) -> ThreadPoolExecutor:
    """One long-lived pool per engine, grown when more shards appear.

    Persistent worker threads keep their thread-local im2col pad
    workspaces warm across runs; Python's executor machinery drains and
    joins the threads at interpreter exit.
    """
    if engine._thread_pool is None or engine._thread_pool_size < count:
        if engine._thread_pool is not None:
            engine._thread_pool.shutdown(wait=False)
        engine._thread_pool = ThreadPoolExecutor(
            max_workers=count, thread_name_prefix="snn-shard"
        )
        engine._thread_pool_size = count
    return engine._thread_pool


def _discard_thread_pool(engine) -> None:
    """Abandon the engine's cached pool after a hang poisoned it.

    The wedged worker thread cannot be joined; the executor is shut
    down without waiting (its threads die with the process) and the
    cache cleared so the next thread attempt gets fresh workers.
    """
    if engine._thread_pool is not None:
        engine._thread_pool.shutdown(wait=False)
    engine._thread_pool = None
    engine._thread_pool_size = 0


# ----------------------------------------------------------------------
def run_batch_shards(
    engine,
    x,
    timesteps: int,
    per_step: bool,
    bounds: List[Tuple[int, int]],
    mode: str,
    policy: Optional[ShardPolicy] = None,
) -> SupervisedOutcome:
    """Run contiguous batch shards in parallel on the resolved substrate.

    ``mode`` must already be resolved (``"fork"`` or ``"thread"``).
    Every substrate — including a supervised degradation re-run —
    produces the same per-shard results and merged statistics: a shard
    is the same ``_run_single`` on the same contiguous slice with the
    same kernels.
    """
    if len(bounds) <= 1:
        runs = [engine._run_single(x[lo:hi], timesteps, per_step) for lo, hi in bounds]
        return SupervisedOutcome(
            results=runs, requested_mode=mode, completed_mode=mode
        )

    def serial_fn(index: int):
        lo, hi = bounds[index]
        return engine._run_single(x[lo:hi], timesteps, per_step)

    # Thread shards run on per-shard sibling engines over model clones
    # so concurrent shards never race on module state.  The peers are
    # built lazily (a fork-first run only pays for clones if it actually
    # degrades to threads) and indexed by shard, so a retry wave of only
    # the failed shards still lands on each shard's own peer.
    peers_box: List[List] = []

    def thread_prepare() -> None:
        peers_box[:] = [_thread_peers_for(engine, len(bounds))]

    def thread_fn(index: int):
        lo, hi = bounds[index]
        return peers_box[0][index]._run_single(x[lo:hi], timesteps, per_step)

    return run_supervised(
        count=len(bounds),
        mode=mode,
        policy=policy,
        serial_fn=serial_fn,
        thread_fn=thread_fn,
        thread_prepare=thread_prepare,
        thread_executor_factory=lambda n: _thread_pool_for(engine, n),
        thread_executor_discard=lambda: _discard_thread_pool(engine),
        label="batch-shard",
    )


# ----------------------------------------------------------------------
def run_layer_shards(
    kernel: Callable[[int, int], object],
    bounds: List[Tuple[int, int]],
    mode: str,
    policy: Optional[ShardPolicy] = None,
    label: str = "layer-shard",
) -> SupervisedOutcome:
    """Run one layer's row blocks in parallel under supervision.

    The execution substrate for the planner's *per-layer* shard
    decisions: ``kernel(lo, hi)`` computes the layer's output for rows
    ``[lo, hi)`` of its stacked input, each block is an independent
    pure-array task (no module state, no engine), and the supervisor
    gives it the same fault semantics as whole-batch sharding — per
    -block failure capture, bounded retries with backoff, and
    degradation down to serial execution re-running only the failed
    blocks with bit-identical results (same kernel, same rows).

    Only ``"thread"`` and ``"serial"`` substrates make sense here: the
    blocks close over live per-run arrays, and forking a pool inside a
    single layer's forward would cost more than the layer.  The hot
    kernels are BLAS GEMMs, which release the GIL, so threads
    parallelise them for real.
    """
    if mode not in ("thread", "serial"):
        raise ValueError(
            f"per-layer shards run on 'thread' or 'serial', not {mode!r}"
        )

    def task(index: int):
        lo, hi = bounds[index]
        return kernel(lo, hi)

    return run_supervised(
        count=len(bounds),
        mode=mode,
        policy=policy,
        serial_fn=task,
        label=label,
    )
