"""Batch sharding across forked processes or a thread pool.

``SimulationEngine.run(workers=K)`` splits the batch into contiguous
shards and runs them in parallel.  Two substrates are available:

``fork``
    The classic path: worker processes forked from the parent inherit
    the engine, model weights and input batch copy-on-write, so nothing
    is pickled.  Only available where the platform has the ``fork``
    start method (not Windows, not some embedded interpreters).

``thread``
    A thread pool.  Each shard gets a *sibling* engine (same
    configuration, shared thread-safe cross-run caches) bound to a
    structural clone of the model that shares every parameter and
    buffer array but owns its own module objects — so concurrent shards
    never race on interceptors, membrane state or spike counters.  The
    hot work is BLAS GEMMs and large-array ufuncs, which release the
    GIL, so threads parallelise the same way fork does and work
    everywhere fork does not.

``resolve_shard_mode("auto")`` picks fork where available and threads
otherwise, so ``workers=K`` never silently degrades to sequential
execution.
"""

from __future__ import annotations

import multiprocessing
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

from repro.nn.module import Module

SHARD_MODES = ("auto", "fork", "thread")


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_shard_mode(mode: str) -> str:
    """Normalise a user-facing shard mode to ``"fork"`` or ``"thread"``."""
    if mode == "thread":
        return "thread"
    if mode == "fork":
        if not fork_available():
            raise RuntimeError(
                "the 'fork' start method is unavailable on this platform; "
                "use shard_mode='thread' (or 'auto')"
            )
        return "fork"
    if mode == "auto":
        return "fork" if fork_available() else "thread"
    raise ValueError(f"unknown shard_mode {mode!r}; choose from {SHARD_MODES}")


# ----------------------------------------------------------------------
# Fork sharding
# ----------------------------------------------------------------------
# Fork-shard context: set by the parent immediately before the pool
# fork so children inherit the engine, model weights and input batch
# copy-on-write instead of through pickling.
_SHARD_CONTEXT: Optional[tuple] = None


def _shard_worker(index: int):
    engine, x, timesteps, per_step, bounds = _SHARD_CONTEXT
    lo, hi = bounds[index]
    return engine._run_single(x[lo:hi], timesteps, per_step)


def _run_fork_shards(engine, x, timesteps, per_step, bounds) -> List:
    global _SHARD_CONTEXT
    context = multiprocessing.get_context("fork")
    _SHARD_CONTEXT = (engine, x, timesteps, per_step, bounds)
    try:
        with context.Pool(processes=len(bounds)) as pool:
            return pool.map(_shard_worker, range(len(bounds)))
    finally:
        _SHARD_CONTEXT = None


# ----------------------------------------------------------------------
# Thread sharding
# ----------------------------------------------------------------------
def clone_for_inference(module: Module) -> Module:
    """Structurally clone a module tree, sharing all parameters/buffers.

    Every :class:`Module` object is fresh (own ``_modules`` /
    ``_parameters`` / ``_buffers`` dicts, own neuron membrane and spike
    counters once it runs), while every Parameter and buffer array is
    the *same object* as the source's — weights are shared, never
    copied, and a training step that rebinds ``param.data`` is visible
    to every clone because the Parameter itself is shared.  Attributes
    that point at child modules (``self.conv1`` and friends) are
    remapped onto the corresponding clones; an installed forward
    interceptor (only present mid-run) is never carried over.
    """
    children = OrderedDict(
        (name, clone_for_inference(child)) for name, child in module._modules.items()
    )
    remap = {
        id(original): children[name]
        for name, original in module._modules.items()
    }
    clone = object.__new__(type(module))
    for key, value in module.__dict__.items():
        if key == "_modules":
            value = children
        elif key in ("_parameters", "_buffers"):
            value = OrderedDict(value)
        elif key == "forward":
            continue
        elif isinstance(value, Module):
            value = remap.get(id(value), value)
        elif isinstance(value, (list, tuple)):
            value = type(value)(remap.get(id(item), item) for item in value)
        object.__setattr__(clone, key, value)
    return clone


def _peers_stale(engine, peers) -> bool:
    """Detect model changes the weight-sharing clones cannot mirror.

    Shared Parameter objects track ``param.data`` rebinds for free, but
    a rebound *buffer* (``load_state_dict`` on BN running stats) or a
    train/eval flip only lands on the original modules — either one
    means the cached clones must be rebuilt.
    """
    for peer in peers:
        if peer.model is None or peer.model.training != engine.model.training:
            return True
        for (_, original), (_, cloned) in zip(
            engine.model.named_buffers(), peer.model.named_buffers()
        ):
            if original is not cloned:
                return True
    return False


def _thread_peers_for(engine, count: int) -> List:
    """Sibling engines over model clones, cached on the engine.

    Rebuilding clones per run would defeat the cross-run caches (the
    effective-weight LRU is keyed by module identity, so fresh clone
    ids would miss it every time and fill it with dead entries); the
    peers persist until the bound model changes under them.
    """
    peers = engine._thread_peers.get(count)
    if peers is None or _peers_stale(engine, peers):
        peers = []
        for _ in range(count):
            peer = engine._sibling()
            peer.bind(clone_for_inference(engine.model))
            peers.append(peer)
        engine._thread_peers[count] = peers
    return peers


def _thread_pool_for(engine, count: int) -> ThreadPoolExecutor:
    """One long-lived pool per engine, grown when more shards appear.

    Persistent worker threads keep their thread-local im2col pad
    workspaces warm across runs; Python's executor machinery drains and
    joins the threads at interpreter exit.
    """
    if engine._thread_pool is None or engine._thread_pool_size < count:
        if engine._thread_pool is not None:
            engine._thread_pool.shutdown(wait=False)
        engine._thread_pool = ThreadPoolExecutor(
            max_workers=count, thread_name_prefix="snn-shard"
        )
        engine._thread_pool_size = count
    return engine._thread_pool


def _run_thread_shards(engine, x, timesteps, per_step, bounds) -> List:
    peers = _thread_peers_for(engine, len(bounds))
    pool = _thread_pool_for(engine, len(bounds))
    futures = [
        pool.submit(peer._run_single, x[lo:hi], timesteps, per_step)
        for peer, (lo, hi) in zip(peers, bounds)
    ]
    return [future.result() for future in futures]


# ----------------------------------------------------------------------
def run_batch_shards(
    engine,
    x,
    timesteps: int,
    per_step: bool,
    bounds: List[Tuple[int, int]],
    mode: str,
) -> List:
    """Run contiguous batch shards in parallel on the resolved substrate.

    ``mode`` must already be resolved (``"fork"`` or ``"thread"``).
    Either substrate produces the same per-shard results and merged
    statistics: a shard is the same ``_run_single`` on the same
    contiguous slice with the same kernels.
    """
    if len(bounds) <= 1:
        return [engine._run_single(x[lo:hi], timesteps, per_step) for lo, hi in bounds]
    if mode == "fork":
        return _run_fork_shards(engine, x, timesteps, per_step, bounds)
    return _run_thread_shards(engine, x, timesteps, per_step, bounds)
