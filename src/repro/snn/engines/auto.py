"""The adaptive backend: profile once, then specialise per layer.

The paper's accelerator wins by exploiting *per-layer* sparsity — the
mapper measures each layer's activity and lays it onto the aggregation
core accordingly.  A single global backend choice (dense / event /
batched) throws that structure away: measured densities vary widely
across layers, so the best kernel is a per-layer property.

:class:`AutoEngine` (``engine="auto"``) closes the same
measure-then-specialise loop in software:

1. **Calibrate.** The first run for a given (input shape, T) executes
   the time-batched GEMM schedule while the per-layer profiler records
   each synapse layer's wall clock and observed input density (and
   whether its input is the constant analog frame).
2. **Compile a plan.** For every genuinely sparse layer the event
   gather kernel is timed on the very activations the calibration run
   produced; a layer switches to the event backend only when the
   measured gather beats its measured GEMM by a safety margin.  Dense,
   high-density and constant-frame layers stay on the batched GEMM.
3. **Cache.** The plan is cached by (bound model, input shape, T) in a
   bounded LRU, so repeat inferences skip calibration entirely and run
   straight on the specialised per-layer schedule.  The key is the
   *full* input shape, batch included: the GEMM/gather crossover moves
   with the ``(T*N, ...)`` stack size, so a plan calibrated at batch 1
   must not be extrapolated to batch 64.

Because the event gather equals the dense kernel up to float summation
order and everything else *is* the batched schedule, auto logits match
``DenseEngine`` within summation-order tolerance, while wall clock
tracks the best per-layer mix — never worse than the batched backend
beyond measurement noise, and faster wherever real sparsity pays.

Op accounting follows the chosen backend per layer: GEMM layers bill
full dense MACs, event layers bill performed (per-spike) ops, and every
layer's :class:`repro.snn.stats.LayerStats` records which backend ran
(``profile_table`` / ``BENCH_engines.json`` show the plan).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.layers import Conv2d
from repro.snn.engines.base import LRUCache, _dense_op_count, _effective_weight
from repro.snn.engines.batched import TimeBatchedEngine
from repro.snn.engines.event import sparse_conv2d, sparse_linear
from repro.tensor import Tensor

#: Distinct (input shape, T) execution plans kept per engine.
PLAN_CACHE_CAPACITY = 8


@dataclass
class LayerDecision:
    """One synapse layer's calibrated backend choice."""

    name: str
    backend: str                 # "gemm" | "event"
    density: float               # observed input density during calibration
    gemm_seconds: float          # measured batched-GEMM wall clock
    event_seconds: Optional[float] = None  # measured gather wall clock (if tried)


@dataclass
class ExecutionPlan:
    """A compiled per-layer backend assignment for one (shape, T) key."""

    key: Tuple
    decisions: Dict[str, LayerDecision] = field(default_factory=dict)

    def backend_of(self, name: str) -> str:
        decision = self.decisions.get(name)
        return decision.backend if decision is not None else "gemm"

    @property
    def event_layers(self) -> int:
        return sum(1 for d in self.decisions.values() if d.backend == "event")


@dataclass
class _Capture:
    """Per-layer calibration measurement.

    Numbers only — the event kernel is raced inline while the layer's
    input is naturally live, so calibration never retains activation
    stacks (a batched run's whole working set would otherwise stay
    pinned until the plan compiles).
    """

    density: float
    gemm_seconds: float
    event_seconds: Optional[float]  # None: constant/dense input, not raced


class AutoEngine(TimeBatchedEngine):
    """Adaptive backend: calibrated per-layer GEMM/event execution plan.

    Parameters
    ----------
    density_threshold:
        Input densities at or above this never try the event kernel
        (there is no sparsity to exploit; the gather would only copy).
    margin:
        The event kernel must beat the measured GEMM by this factor to
        be chosen (< 1.0 adds hysteresis against timing noise, so a
        borderline layer stays on the safe GEMM path).
    """

    name = "auto"

    def __init__(
        self,
        density_threshold: float = 0.5,
        margin: float = 0.9,
        profile_layers: bool = True,
    ) -> None:
        # Calibration *is* the per-layer profile, so profiling stays on
        # regardless of the flag an explicit False would suggest.
        super().__init__(profile_layers=True)
        if not 0.0 < density_threshold <= 1.0:
            raise ValueError("density_threshold must be in (0, 1]")
        if not 0.0 < margin <= 1.0:
            raise ValueError("margin must be in (0, 1]")
        self.density_threshold = density_threshold
        self.margin = margin
        self.calibration_runs = 0
        self._plans = LRUCache(PLAN_CACHE_CAPACITY)
        self._active_plan: Optional[ExecutionPlan] = None
        self._calibration: Optional[Dict[str, _Capture]] = None

    def _config(self) -> dict:
        config = super()._config()
        config["density_threshold"] = self.density_threshold
        config["margin"] = self.margin
        return config

    def _share_caches(self, peer: "AutoEngine") -> None:
        super()._share_caches(peer)
        peer._plans = self._plans

    # ------------------------------------------------------------------
    def plan_for(self, input_shape, timesteps: int) -> Optional[ExecutionPlan]:
        """The cached plan for a full input shape (batch included) and T."""
        return self._plans.get((tuple(input_shape), int(timesteps)))

    def _run_single(self, x, timesteps, per_step):
        key = (tuple(np.asarray(x).shape), int(timesteps))
        plan = self._plans.get(key)
        self._active_plan = plan
        self._calibration = {} if plan is None else None
        try:
            run = super()._run_single(x, timesteps, per_step)
            if self._calibration is not None:
                plan = self._compile_plan(key, self._calibration)
                self._plans.put(key, plan)
                self.calibration_runs += 1
                # Ship the fresh plan back on the run: a fork-pool shard
                # compiles in a throwaway child process, and only this
                # payload (absorbed by the parent's _absorb_shard_runs)
                # gets it into the surviving cache.
                run.plan = plan
            for layer in run.stats.layers:
                if layer.kind == "neuron":
                    layer.backend = "stepped"
                else:
                    layer.backend = plan.backend_of(layer.name)
            return run
        finally:
            self._active_plan = None
            self._calibration = None

    def _absorb_shard_runs(self, runs) -> None:
        for run in runs:
            if run is not None and run.plan is not None:
                self._plans.put(run.plan.key, run.plan)

    # ------------------------------------------------------------------
    def _compile_plan(
        self, key: Tuple, captures: Dict[str, _Capture]
    ) -> ExecutionPlan:
        """Turn calibration measurements into a backend assignment.

        The racing already happened inline (see the interceptor); here
        the measured gather simply has to beat the measured GEMM by the
        ``margin`` hysteresis to win the layer.
        """
        plan = ExecutionPlan(key=key)
        for name, capture in captures.items():
            backend = "gemm"
            if (
                capture.event_seconds is not None
                and capture.event_seconds < capture.gemm_seconds * self.margin
            ):
                backend = "event"
            plan.decisions[name] = LayerDecision(
                name=name,
                backend=backend,
                density=capture.density,
                gemm_seconds=capture.gemm_seconds,
                event_seconds=capture.event_seconds,
            )
        return plan

    # ------------------------------------------------------------------
    def _make_interceptor(self, module, stat, orig):
        gemm = super()._make_interceptor(module, stat, orig)
        is_conv = isinstance(module, Conv2d)
        name = stat.name

        def forward(x: Tensor) -> Tensor:
            data = x.data
            plan = self._active_plan
            if plan is None:
                # Calibration: time the GEMM path, then race the event
                # gather right here while the input is naturally live —
                # recording numbers, never activations, keeps the
                # calibration run's memory profile identical to a plain
                # batched run.
                constant = id(data) in self._constant_arrays
                density = np.count_nonzero(data) / max(data.size, 1)
                started = time.perf_counter()
                out = gemm(x)
                gemm_seconds = time.perf_counter() - started
                event_seconds: Optional[float] = None
                if not constant and density < self.density_threshold:
                    weight = _effective_weight(module, self._weight_cache)
                    bias = module.bias.data if module.bias is not None else None
                    event_seconds = float("inf")
                    for _ in range(2):  # best-of-2 filters scheduler noise
                        trial = time.perf_counter()
                        if is_conv:
                            sparse_conv2d(
                                data, weight, bias, module.stride, module.padding
                            )
                        else:
                            sparse_linear(data, weight, bias)
                        event_seconds = min(
                            event_seconds, time.perf_counter() - trial
                        )
                self._calibration[name] = _Capture(
                    density=density,
                    gemm_seconds=gemm_seconds,
                    event_seconds=event_seconds,
                )
                return out
            if (
                plan.backend_of(name) != "event"
                or id(data) in self._constant_arrays
            ):
                return gemm(x)
            # Planned event layer: one gather over the whole (T*N, ...)
            # stack; bills performed (per-spike) ops like the event
            # engine, with the dense MAC count as the baseline.
            stat.dense_synaptic_ops += _dense_op_count(module, data.shape)
            weight = _effective_weight(module, self._weight_cache)
            bias = module.bias.data if module.bias is not None else None
            if is_conv:
                out, billed = sparse_conv2d(
                    data, weight, bias, module.stride, module.padding
                )
            else:
                out, billed = sparse_linear(data, weight, bias)
            stat.synaptic_ops += billed
            return Tensor(out)

        return forward
