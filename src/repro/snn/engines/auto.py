"""The adaptive backend: measure, model, specialise — and re-plan live.

The paper's accelerator wins by exploiting *per-layer* sparsity — the
mapper measures each layer's activity and lays it onto the aggregation
core accordingly.  A single global backend choice (dense / event /
batched) throws that structure away: measured densities vary widely
across layers, so the best kernel is a per-layer property.

:class:`AutoEngine` (``engine="auto"``) closes the same
measure-then-specialise loop in software, in two gears:

1. **Race (cold).** The first runs execute the time-batched GEMM
   schedule while the per-layer profiler records wall clock and input
   density; for every genuinely sparse layer both sparse kernels — the
   per-plane event gather and the bit-exact batched COO row-subset path
   (:mod:`repro.snn.engines.event_batched`) — are timed on the very
   activations the calibration run produced, and heavy GEMM layers
   additionally race a supervised row-sharded execution
   (:func:`repro.snn.engines.sharding.run_layer_shards`).  A layer
   switches off the GEMM only when a measured challenger beats its
   measured GEMM by a safety margin.
2. **Predict (warm).** Every race feeds ``(backend, ops, ms)`` samples
   into a fitted analytic :class:`repro.snn.engines.costmodel.CostModel`
   (wall clock affine in performed ops per backend).  Once the model is
   trustworthy, a plan-cache miss no longer races anything: one plain
   batched pass records densities and geometry, and the plan is
   *predicted* — cold-start calibration collapses to roughly the cost
   of a single ordinary run.  When only a *neighboring density bucket's*
   plan exists, calibration warm-starts from it instead: layers whose
   observed density still matches the neighbor's calibration copy its
   decision and skip the race.

Plans are cached by (bound model, input kind, full input shape, T,
input-density bucket) in a bounded LRU and persisted as JSON beside the
cost model (``AutoEngine(plan_path=...)``).

**Drift and mid-run re-planning.**  Every planned run watches observed
layer densities against the plan's calibration.  With a trustworthy
cost model, drift past ``drift_threshold`` triggers a *mid-run re-plan*:
at that very layer boundary the remaining schedule is re-predicted from
the cost model and swapped in place — the run completes under the new
plan, the cache and plan file are updated, and nothing recalibrates
cold.  Swaps are restricted to the bitwise-agreeing kernel pair (the
batched GEMM and the COO row-subset path compute identical floats), so
a re-planned run's logits are bit-identical to the same run without the
swap.  Without a fitted model the guard falls back to evict-next-run:
the plan is dropped and the next run recalibrates.

Op accounting follows the chosen backend per layer: GEMM layers bill
full dense MACs, event layers bill performed (per-spike) ops, and every
layer's :class:`repro.snn.stats.LayerStats` records which backend ran,
how it was chosen (``raced`` | ``cost-model`` | ``re-planned``) and the
planner's predicted wall clock (``profile_table`` /
``BENCH_engines.json`` show the plan).
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import Conv2d
from repro.snn.engines.base import LRUCache, _dense_op_count, _effective_weight
from repro.snn.engines.batched import TimeBatchedEngine
from repro.snn.engines.costmodel import (
    CostModel,
    cost_model_path_for,
    sparse_feature_ops,
)
from repro.snn.engines.dense import dense_conv2d
from repro.snn.engines.event import sparse_conv2d, sparse_linear
from repro.snn.engines.event_batched import EventBatchedEngine
from repro.snn.engines.sharding import run_layer_shards, split_bounds
from repro.snn.spikes import SpikeStream, StepSpikes
from repro.tensor import Tensor
from repro.utils.io import atomic_write_json

logger = logging.getLogger(__name__)

#: Distinct (input shape, T) execution plans kept per engine.
PLAN_CACHE_CAPACITY = 8

#: On-disk format tag for persisted execution plans.
PLAN_FILE_FORMAT = "repro-execution-plans/v1"

#: Upper edges of the coarse input-density buckets baked into plan keys.
#: The GEMM/gather crossover moves with input density just like it moves
#: with the stack size, so a plan calibrated on a 1%-dense stream must
#: not be replayed on a 40%-dense one of the same shape.  Buckets are
#: deliberately coarse (log-spaced around the observed crossovers) so
#: ordinary batch-to-batch density jitter still hits the cached plan.
DENSITY_BUCKET_EDGES = (0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5)

#: Timing samples per kernel in the calibration race (best-of-N).  All
#: raced kernels — GEMM, event gather, COO row-subset, sharded GEMM —
#: get the same sample count: racing a min-of-N candidate against a
#: single-shot incumbent systematically favours the candidate (one
#: noisy-high GEMM sample near the crossover flips the layer to a slower
#: sparse kernel), which is exactly the miscalibration that pushes
#: ``auto_vs_best_fixed`` past its 1.1 acceptance bound.
CALIBRATION_REPEATS = 3

#: The kernels that compute bit-identical floats per layer: the batched
#: GEMM and the COO row-subset path share summation order exactly, so a
#: mid-run re-plan may swap a layer between them without perturbing the
#: logits.  The per-plane event gather accumulates in per-spike order
#: and is only summation-order equal, so re-plans never touch layers it
#: owns.
BITWISE_BACKENDS = ("gemm", "event-batched")

#: Observed-vs-calibrated density deviations below this absolute value
#: never count as drift: near-silent layers vary by large relative
#: factors between batches without moving any kernel crossover.
MIN_DRIFT_DEVIATION = 0.01

#: EWMA step for the serving-fed density prior: heavy enough to track a
#: tenant's traffic mix within tens of requests, light enough that one
#: outlier batch cannot yank the warm-start bucket.
DENSITY_PRIOR_ALPHA = 0.2

#: Per-layer shard race defaults: a GEMM layer is only worth row-sharding
#: when one calibration call already costs this much wall clock (the
#: thread fan-out has fixed overhead), and the race tries this many
#: workers.
LAYER_SHARD_MIN_SECONDS = 0.05
LAYER_SHARD_WORKERS = 2


def density_bucket(density: float) -> int:
    """The coarse plan-key bucket an input density falls into.

    Bucket ``i`` covers densities in ``(EDGES[i-1], EDGES[i]]``; the
    last bucket (``len(DENSITY_BUCKET_EDGES)``) is everything denser
    than the last edge, which is where direct-coded analog frames land.
    """
    return int(
        np.searchsorted(DENSITY_BUCKET_EDGES, float(density), side="left")
    )


@dataclass
class LayerDecision:
    """One synapse layer's planned backend choice.

    ``source`` records how the choice was made: ``"raced"`` (measured
    kernels), ``"cost-model"`` (predicted from the fitted model) or
    ``"re-planned"`` (swapped by the mid-run drift guard).
    ``shard_mode``/``workers`` extend the plan beyond kernel choice: a
    GEMM layer may execute as supervised row shards
    (:func:`~repro.snn.engines.sharding.run_layer_shards`) when the
    calibration race showed the fan-out pays.
    """

    name: str
    backend: str                 # "gemm" | "event" | "event-batched"
    density: float               # observed input density during calibration
    gemm_seconds: float          # measured batched-GEMM wall clock
    event_seconds: Optional[float] = None  # measured gather wall clock (if tried)
    coo_seconds: Optional[float] = None    # measured COO row-subset wall clock
    source: str = "raced"        # "raced" | "cost-model" | "re-planned"
    predicted_ms: float = 0.0    # planner-expected wall clock of the choice
    dense_ops: int = 0           # dense MAC count at the calibrated shape
    shard_mode: str = ""         # "" (in-line) | "thread" row sharding
    workers: int = 1             # row-shard fan-out when shard_mode set


@dataclass
class ExecutionPlan:
    """A compiled per-layer schedule for one (kind, shape, T, bucket) key.

    ``key`` is ``(input_kind, input_shape, timesteps, density_bucket)``
    where ``input_kind`` is ``"dense"`` for direct-coded frames and
    ``"stream"`` for COO spike-stream input — the two present very
    different densities to the layers, so they never share a plan — and
    ``density_bucket`` is the coarse :func:`density_bucket` of the
    input's own nonzero fraction, so same-shaped workloads at genuinely
    different activity levels calibrate separately.
    Plans serialise to JSON (:meth:`to_json` / :meth:`from_json`) so a
    compiled plan can persist beside a model checkpoint and be reloaded
    by another process (``AutoEngine(plan_path=...)``).
    """

    key: Tuple
    decisions: Dict[str, LayerDecision] = field(default_factory=dict)

    def backend_of(self, name: str) -> str:
        decision = self.decisions.get(name)
        return decision.backend if decision is not None else "gemm"

    @property
    def event_layers(self) -> int:
        return sum(1 for d in self.decisions.values() if d.backend == "event")

    @property
    def sharded_layers(self) -> int:
        return sum(1 for d in self.decisions.values() if d.workers > 1)

    @property
    def source(self) -> str:
        """How this plan was produced, taking the strongest claim:
        any re-planned layer marks the whole plan re-planned, any
        model-predicted layer (absent re-plans) marks it cost-model."""
        sources = {d.source for d in self.decisions.values()}
        if "re-planned" in sources:
            return "re-planned"
        if "cost-model" in sources:
            return "cost-model"
        return "raced"

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """This plan as a JSON-serialisable dict."""
        kind, shape, timesteps, bucket = self.key
        return {
            "format": PLAN_FILE_FORMAT,
            "key": {
                "input_kind": kind,
                "input_shape": list(shape),
                "timesteps": timesteps,
                "density_bucket": bucket,
            },
            "decisions": [
                {
                    "name": d.name,
                    "backend": d.backend,
                    "density": d.density,
                    "gemm_seconds": d.gemm_seconds,
                    "event_seconds": d.event_seconds,
                    "coo_seconds": d.coo_seconds,
                    "source": d.source,
                    "predicted_ms": d.predicted_ms,
                    "dense_ops": d.dense_ops,
                    "shard_mode": d.shard_mode,
                    "workers": d.workers,
                }
                for d in self.decisions.values()
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ExecutionPlan":
        """Rebuild a plan from a :meth:`to_payload` dict."""
        if payload.get("format") != PLAN_FILE_FORMAT:
            raise ValueError(
                f"not an execution plan document (format "
                f"{payload.get('format')!r}, expected {PLAN_FILE_FORMAT!r})"
            )
        key_info = payload["key"]
        plan = cls(
            key=(
                str(key_info["input_kind"]),
                tuple(int(s) for s in key_info["input_shape"]),
                int(key_info["timesteps"]),
                # Plans persisted before density bucketing default to the
                # densest bucket — where a frame-calibrated plan belongs.
                int(key_info.get("density_bucket", len(DENSITY_BUCKET_EDGES))),
            )
        )
        for entry in payload["decisions"]:
            plan.decisions[entry["name"]] = LayerDecision(
                name=entry["name"],
                backend=entry["backend"],
                density=float(entry["density"]),
                gemm_seconds=float(entry["gemm_seconds"]),
                event_seconds=(
                    None
                    if entry["event_seconds"] is None
                    else float(entry["event_seconds"])
                ),
                coo_seconds=(
                    None
                    if entry.get("coo_seconds") is None
                    else float(entry.get("coo_seconds"))
                ),
                # Planner-v2 fields; plans persisted before them load as
                # plain raced, unsharded decisions.
                source=str(entry.get("source", "raced")),
                predicted_ms=float(entry.get("predicted_ms", 0.0)),
                dense_ops=int(entry.get("dense_ops", 0)),
                shard_mode=str(entry.get("shard_mode", "")),
                workers=int(entry.get("workers", 1)),
            )
        return plan

    def to_json(self) -> str:
        """This plan as a standalone JSON document."""
        return json.dumps(self.to_payload(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ExecutionPlan":
        """Rebuild a plan serialised by :meth:`to_json`."""
        return cls.from_payload(json.loads(text))


@dataclass
class _Capture:
    """Per-layer calibration measurement.

    Numbers only — the challenger kernels are raced inline while the
    layer's input is naturally live, so calibration never retains
    activation stacks (a batched run's whole working set would
    otherwise stay pinned until the plan compiles).  ``raceable`` marks
    layers whose input was sparse and non-constant (the only ones a
    sparse kernel could serve); ``seeded`` carries the neighboring
    bucket's decision when the warm start skipped this layer's race.
    """

    density: float
    gemm_seconds: float
    event_seconds: Optional[float]  # None: constant/dense input, not raced
    coo_seconds: Optional[float] = None  # COO row-subset kernel, if raced
    shard_seconds: Optional[float] = None  # row-sharded GEMM, if raced
    dense_ops: int = 0
    raceable: bool = False
    seeded: Optional[LayerDecision] = None


class AutoEngine(EventBatchedEngine):
    """Adaptive backend: calibrated/predicted per-layer execution plan.

    Parameters
    ----------
    density_threshold:
        Input densities at or above this never try the sparse kernels
        (there is no sparsity to exploit; the gather would only copy).
    margin:
        A challenger kernel must beat the GEMM by this factor to be
        chosen (< 1.0 adds hysteresis against timing noise, so a
        borderline layer stays on the safe GEMM path).  The same
        hysteresis applies to cost-model predictions.
    drift_threshold:
        The drift guard: each planned layer's *observed* input density
        is compared with the density the plan was calibrated at.  With
        a trustworthy cost model, crossing the threshold re-plans the
        remaining layers *mid-run* (bit-identical swap at the layer
        boundary, ``RunStats.replan_triggered``); without one the plan
        is dropped so the next run recalibrates — the software twin of
        the mapper re-measuring when the workload distribution shifts.
    plan_path:
        Optional JSON file persisting compiled plans across processes
        (kept beside model checkpoints).  Existing plans are loaded at
        construction; every fresh calibration rewrites the file.  The
        cost model persists beside it (``<plan>.cost.json``).
    cost_model:
        Optional externally shared :class:`CostModel`; by default one
        is loaded from beside ``plan_path`` (or created empty).
    midrun_replan:
        Allow the drift guard to swap the plan at a layer boundary
        mid-run (requires a fitted cost model).  Off, drift always
        falls back to evict-next-run.
    layer_shard_workers / layer_shard_min_seconds:
        Per-layer shard race: GEMM layers whose calibration call costs
        at least ``layer_shard_min_seconds`` also race a supervised
        ``layer_shard_workers``-way row-sharded execution, and the plan
        records the fan-out when it wins.  ``layer_shard_workers <= 1``
        disables the race.
    """

    name = "auto"

    def __init__(
        self,
        density_threshold: float = 0.5,
        margin: float = 0.9,
        drift_threshold: float = 0.5,
        plan_path: Optional[str] = None,
        profile_layers: bool = True,
        cost_model: Optional[CostModel] = None,
        midrun_replan: bool = True,
        layer_shard_workers: int = LAYER_SHARD_WORKERS,
        layer_shard_min_seconds: float = LAYER_SHARD_MIN_SECONDS,
    ) -> None:
        # Calibration *is* the per-layer profile, so profiling stays on
        # regardless of the flag an explicit False would suggest.
        super().__init__(
            density_threshold=density_threshold, profile_layers=True
        )
        if not 0.0 < margin <= 1.0:
            raise ValueError("margin must be in (0, 1]")
        if drift_threshold <= 0.0:
            raise ValueError("drift_threshold must be > 0")
        if layer_shard_min_seconds < 0.0:
            raise ValueError("layer_shard_min_seconds must be >= 0")
        self.margin = margin
        self.drift_threshold = drift_threshold
        self.plan_path = plan_path
        self.midrun_replan = bool(midrun_replan)
        self.layer_shard_workers = int(layer_shard_workers)
        self.layer_shard_min_seconds = float(layer_shard_min_seconds)
        self.calibration_runs = 0
        self.replans_triggered = 0
        self.warm_starts = 0
        self.prior_warm_starts = 0
        # kind -> EWMA of serving-observed input density, fed by the
        # engine worker / pool so cold serving keys can warm-start from
        # what production traffic actually looks like.
        self._density_priors: Dict[str, float] = {}
        self._plans = LRUCache(PLAN_CACHE_CAPACITY)
        self._active_plan: Optional[ExecutionPlan] = None
        self._calibration: Optional[Dict[str, _Capture]] = None
        self._seed_plan: Optional[ExecutionPlan] = None
        self._predict_only = False
        self._replanned_at: Optional[str] = None
        self._replan_worst = 0.0
        self._run_observations: List[Tuple[str, float, float]] = []
        self._layer_shard_failures: List = []
        # Single-writer guard for the plan/cost files: fork-pool children
        # inherit this engine (and plan_path) copy-on-write, but only
        # the owning process persists — children ship plans/evictions/
        # observations back on the EngineRun for the parent to absorb
        # and write.
        self._owner_pid = os.getpid()
        if cost_model is not None:
            self.cost_model = cost_model
        elif plan_path is not None:
            self.cost_model = CostModel.load(cost_model_path_for(plan_path))
        else:
            self.cost_model = CostModel()
        if plan_path is not None:
            self.load_plans(plan_path, missing_ok=True)

    def _config(self) -> dict:
        # plan_path is deliberately not inherited by thread-shard
        # siblings: they share this engine's plan cache already, and
        # the parent is the single writer of the persistence file.
        config = super()._config()
        config["margin"] = self.margin
        config["drift_threshold"] = self.drift_threshold
        config["midrun_replan"] = self.midrun_replan
        config["layer_shard_workers"] = self.layer_shard_workers
        config["layer_shard_min_seconds"] = self.layer_shard_min_seconds
        return config

    def _share_caches(self, peer: "AutoEngine") -> None:
        super()._share_caches(peer)
        peer._plans = self._plans
        peer.cost_model = self.cost_model
        peer._density_priors = self._density_priors

    # ------------------------------------------------------------------
    # Plan persistence
    # ------------------------------------------------------------------
    def save_plans(self, path: Optional[str] = None) -> None:
        """Write every cached plan to ``path`` (default: ``plan_path``).

        The write is atomic (temp file + rename) so a concurrent
        ``AutoEngine(plan_path=...)`` in another process never reads a
        torn document.
        """
        path = path if path is not None else self.plan_path
        if path is None:
            raise ValueError("no path given and no plan_path configured")
        payload = {
            "format": PLAN_FILE_FORMAT,
            "plans": [plan.to_payload() for _, plan in self._plans.items()],
        }
        atomic_write_json(path, payload)

    def load_plans(self, path: Optional[str] = None, missing_ok: bool = False) -> int:
        """Load persisted plans into the cache; returns how many.

        A plan file is a cache, never ground truth: if it is corrupt,
        truncated (a crash on a filesystem without atomic rename) or
        written by an incompatible format version, loading logs one
        warning and returns 0 — the engine simply recalibrates, and the
        next persist atomically replaces the bad file.  Only a missing
        file with ``missing_ok=False`` (an explicit load of a path the
        caller asserted exists) still raises.
        """
        path = path if path is not None else self.plan_path
        if path is None:
            raise ValueError("no path given and no plan_path configured")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            if missing_ok:
                return 0
            raise
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
            logger.warning(
                "ignoring unreadable plan file %s (%s); the engine will "
                "recalibrate and rewrite it", path, error
            )
            return 0
        if not isinstance(payload, dict) or payload.get("format") != PLAN_FILE_FORMAT:
            found = payload.get("format") if isinstance(payload, dict) else type(payload).__name__
            logger.warning(
                "ignoring plan file %s: format %r does not match %r; the "
                "engine will recalibrate and rewrite it",
                path, found, PLAN_FILE_FORMAT,
            )
            return 0
        try:
            plans = [
                ExecutionPlan.from_payload(dict(entry, format=PLAN_FILE_FORMAT))
                for entry in payload.get("plans", [])
            ]
        except (KeyError, TypeError, ValueError) as error:
            logger.warning(
                "ignoring plan file %s with malformed plan entries (%s); "
                "the engine will recalibrate and rewrite it", path, error
            )
            return 0
        for plan in plans:
            self._plans.put(plan.key, plan)
        return len(plans)

    def _persist_plans(self) -> None:
        # Fork children inherit plan_path but must not write: their
        # copy-on-write cache is partial, and concurrent writers would
        # race on the file.  The parent persists on absorb.
        if self.plan_path is not None and os.getpid() == self._owner_pid:
            self.save_plans(self.plan_path)

    def _persist_cost_model(self) -> None:
        if self.plan_path is not None and os.getpid() == self._owner_pid:
            self.cost_model.save(cost_model_path_for(self.plan_path))

    # ------------------------------------------------------------------
    @staticmethod
    def _plan_key(x, timesteps: int) -> Tuple:
        if isinstance(x, SpikeStream):
            # O(1) from the stream's own metadata — no plane scan.
            kind, density = "stream", x.density
        else:
            data = np.asarray(x)
            kind = "dense"
            density = np.count_nonzero(data) / max(data.size, 1)
        return (kind, tuple(x.shape), int(timesteps), density_bucket(density))

    def plan_for(
        self,
        input_shape,
        timesteps: int,
        kind: str = "dense",
        density_bucket: Optional[int] = None,
    ) -> Optional[ExecutionPlan]:
        """The cached plan for a full input shape (batch included) and T.

        With ``density_bucket=None`` the most recently cached plan for
        the (kind, shape, T) prefix is returned regardless of its
        bucket; pass a :func:`density_bucket` value to pin one.
        """
        prefix = (str(kind), tuple(int(s) for s in input_shape), int(timesteps))
        if density_bucket is not None:
            return self._plans.get(prefix + (int(density_bucket),))
        match = None
        for key, plan in self._plans.items():
            if key[:3] == prefix:
                match = plan
        return match

    def observe_density_prior(self, kind: str, density: float) -> None:
        """Feed one serving-observed input density into the EWMA prior.

        The serving layer (engine worker and pool replicas) calls this
        with the density of every dispatched batch.  The prior is keyed
        by input kind and shared across sibling engines, so a cold plan
        key can warm-start from what production traffic actually looks
        like instead of racing from scratch (:meth:`_prior_plan`).
        """
        density = min(max(float(density), 0.0), 1.0)
        prior = self._density_priors.get(kind)
        self._density_priors[kind] = (
            density if prior is None
            else prior + DENSITY_PRIOR_ALPHA * (density - prior)
        )

    def _prior_plan(self, key: Tuple) -> Optional[ExecutionPlan]:
        """Cross-shape warm-start seed picked by the serving density prior.

        When a cold key has no same-shape neighbour (a batch size this
        server has never seen), any cached same-(kind, T) plan whose
        density bucket is nearest the EWMA prior is still a useful
        seed: layer names and their per-layer densities transfer across
        batch sizes, and seed adoption in calibration re-checks each
        layer's density agreement before trusting it.
        """
        kind, _, timesteps, _ = key
        prior = self._density_priors.get(kind)
        if prior is None:
            return None
        target = density_bucket(prior)
        best: Optional[ExecutionPlan] = None
        best_distance: Optional[int] = None
        for cached_key, plan in self._plans.items():
            if len(cached_key) != 4:
                continue
            if cached_key[0] != kind or int(cached_key[2]) != int(timesteps):
                continue
            distance = abs(int(cached_key[3]) - target)
            if best_distance is None or distance <= best_distance:
                best, best_distance = plan, distance
        return best

    def _neighbor_plan(self, key: Tuple) -> Optional[ExecutionPlan]:
        """The nearest same-(kind, shape, T) plan in a *different*
        density bucket — the warm-start seed for a plan-key miss."""
        prefix, bucket = key[:3], key[3]
        best: Optional[ExecutionPlan] = None
        best_distance: Optional[int] = None
        for cached_key, plan in self._plans.items():
            if len(cached_key) != 4 or cached_key[:3] != prefix:
                continue
            distance = abs(int(cached_key[3]) - int(bucket))
            # <= so ties go to the most recently used (items() is
            # least-recent first).
            if best_distance is None or distance <= best_distance:
                best, best_distance = plan, distance
        return best

    def _run_single(self, x, timesteps, per_step):
        key = self._plan_key(x, timesteps)
        plan = self._plans.get(key)
        self._active_plan = plan
        self._calibration = {} if plan is None else None
        self._seed_plan = None
        self._predict_only = False
        self._replanned_at = None
        self._replan_worst = 0.0
        self._run_observations = []
        self._layer_shard_failures = []
        if plan is None:
            if self.cost_model.plan_ready():
                # Warm cold start: no races — one plain batched pass
                # records densities, the model predicts the plan.
                self._predict_only = True
            else:
                self._seed_plan = self._neighbor_plan(key)
                if self._seed_plan is None:
                    self._seed_plan = self._prior_plan(key)
                    if self._seed_plan is not None:
                        self.prior_warm_starts += 1
        try:
            run = super()._run_single(x, timesteps, per_step)
            stats = run.stats
            if self._calibration is not None:
                plan = self._compile_plan(key, self._calibration)
                self._plans.put(key, plan)
                self.calibration_runs += 1
                self._persist_plans()
                # Ship the fresh plan back on the run: a fork-pool shard
                # compiles in a throwaway child process, and only this
                # payload (absorbed by the parent's _absorb_shard_runs)
                # gets it into the surviving cache.
                run.plan = plan
            elif self._replanned_at is not None:
                # The mid-run guard already swapped and re-cached the
                # plan; record the event and ship the new plan back.
                plan = self._active_plan
                stats.replan_triggered = True
                stats.plan_drift = self._replan_worst
                stats.replanned_at = self._replanned_at
                run.plan = plan
                self._persist_plans()
            else:
                if self._check_drift(key, plan, stats):
                    # Like a fresh plan, an eviction must ride back to
                    # the parent: a fork shard pops only its throwaway
                    # copy-on-write cache, and thread siblings carry no
                    # plan_path, so the parent re-drops and re-persists.
                    run.dropped_plan_key = key
            stats.plan_source = (
                "re-planned" if self._replanned_at is not None else plan.source
            )
            if self._run_observations:
                # Calibration races feed the cost model; ship the raw
                # samples too so fork-shard calibrations teach the
                # parent's model.
                self.cost_model.observe_many(self._run_observations)
                run.observations = list(self._run_observations)
                self._persist_cost_model()
            if self._layer_shard_failures:
                stats.shard_failures = (
                    list(stats.shard_failures) + list(self._layer_shard_failures)
                )
            for layer in stats.layers:
                if layer.kind == "neuron":
                    layer.backend = "stepped"
                    continue
                decision = plan.decisions.get(layer.name)
                layer.backend = decision.backend if decision else "gemm"
                if decision is not None:
                    layer.backend_source = decision.source
                    layer.predicted_ms = decision.predicted_ms
            return run
        finally:
            self._active_plan = None
            self._calibration = None
            self._seed_plan = None
            self._predict_only = False
            self._replanned_at = None
            self._run_observations = []
            self._layer_shard_failures = []

    def _check_drift(self, key, plan: ExecutionPlan, stats) -> bool:
        """Drop the plan when observed densities left its calibration.

        Relative drift is ``|observed - calibrated| / calibrated`` per
        planned synapse layer; crossing ``drift_threshold`` on any
        layer means the GEMM/event crossover the plan encodes was
        measured on a different activity regime (distribution shift),
        so the plan is evicted and the next run recalibrates.  (With a
        trustworthy cost model the mid-run guard usually re-plans
        before this post-run net is reached; it remains the fallback
        for plans without geometry or runs where the in-flight check
        was disabled.)  Layers whose *absolute* deviation is tiny are
        ignored: near-silent layers naturally vary by large relative
        factors between batches without moving the GEMM/gather
        crossover, and billing them would make the guard oscillate
        calibrate/drop forever.  Returns whether the plan was dropped.
        """
        worst = 0.0
        for layer in stats.layers:
            decision = plan.decisions.get(layer.name)
            if decision is None or layer.input_size == 0:
                continue
            deviation = abs(layer.input_density - decision.density)
            if deviation < MIN_DRIFT_DEVIATION:
                continue  # below any kernel crossover's resolution
            worst = max(worst, deviation / max(decision.density, 1e-6))
        stats.plan_drift = worst
        if worst <= self.drift_threshold:
            return False
        stats.replan_triggered = True
        self.replans_triggered += 1
        self._plans.pop(key)
        self._persist_plans()
        logger.info(
            "auto engine: observed layer density drifted %.0f%% from the "
            "compiled plan's calibration (threshold %.0f%%); plan %s "
            "dropped, next run recalibrates",
            worst * 100.0,
            self.drift_threshold * 100.0,
            key,
        )
        return True

    def _replan_mid_run(
        self, plan: ExecutionPlan, at_name: str, observed_density: float
    ) -> ExecutionPlan:
        """Swap the remaining schedule at the current layer boundary.

        Already-executed layers keep their decisions untouched (their
        work is done); the drifting layer and everything downstream are
        re-predicted from the cost model at densities scaled by the
        observed drift ratio.  Only bitwise-agreeing kernels are
        eligible targets, so the completed run's logits are
        bit-identical to the same run without the swap.  The re-planned
        schedule replaces the cached plan in place — the next run for
        this key starts on it with no cold recalibration.
        """
        at_decision = plan.decisions[at_name]
        scale = observed_density / max(at_decision.density, 1e-6)
        replanned = ExecutionPlan(key=plan.key)
        reached = False
        for name, decision in plan.decisions.items():
            if name == at_name:
                reached = True
            if not reached:
                replanned.decisions[name] = decision
                continue
            replanned.decisions[name] = self._repredict_decision(decision, scale)
        self._plans.put(plan.key, replanned)
        self._active_plan = replanned
        self._replanned_at = at_name
        self._replan_worst = abs(observed_density - at_decision.density) / max(
            at_decision.density, 1e-6
        )
        self.replans_triggered += 1
        swapped = sum(
            1
            for name, decision in replanned.decisions.items()
            if decision.backend != plan.decisions[name].backend
        )
        logger.info(
            "auto engine: density at %s drifted %.0f%% from calibration "
            "(threshold %.0f%%); re-planned mid-run from the cost model — "
            "%d backend swap(s) from %s onward, plan %s updated in place",
            at_name,
            self._replan_worst * 100.0,
            self.drift_threshold * 100.0,
            swapped,
            at_name,
            plan.key,
        )
        return replanned

    def _repredict_decision(
        self, decision: LayerDecision, scale: float
    ) -> LayerDecision:
        """One layer's cost-model re-prediction under a drift ratio."""
        density = min(max(decision.density * scale, 0.0), 1.0)
        if decision.backend not in BITWISE_BACKENDS or decision.dense_ops <= 0:
            # The per-plane gather is only summation-order equal to the
            # GEMM, and geometry-less decisions (old plan files) cannot
            # be priced — both keep their backend, updated density only.
            return replace(decision, density=density)
        gemm_ms = self.cost_model.predict_ms("gemm", decision.dense_ops)
        coo_ms = self.cost_model.predict_ms(
            "event-batched", sparse_feature_ops(decision.dense_ops, density)
        )
        if gemm_ms is None or coo_ms is None:
            return replace(decision, density=density)
        if density < self.density_threshold and coo_ms < gemm_ms * self.margin:
            backend, predicted = "event-batched", coo_ms
        else:
            backend, predicted = "gemm", gemm_ms
        return replace(
            decision,
            backend=backend,
            density=density,
            source="re-planned",
            predicted_ms=predicted,
            # Row sharding was raced for the GEMM only; a swapped layer
            # runs the COO kernel in-line.
            shard_mode=decision.shard_mode if backend == "gemm" else "",
            workers=decision.workers if backend == "gemm" else 1,
        )

    def _absorb_shard_runs(self, runs) -> None:
        changed = False
        learned = False
        for run in runs:
            if run is None:
                continue
            if run.plan is not None:
                self._plans.put(run.plan.key, run.plan)
                changed = True
            if run.dropped_plan_key is not None:
                # Re-drop in the surviving cache (a no-op for thread
                # siblings, which share it) and rewrite the plan file.
                self._plans.pop(run.dropped_plan_key)
                changed = True
            if run.observations:
                # Fork children race in throwaway processes; their cost
                # samples only reach the surviving model through here.
                self.cost_model.observe_many(run.observations)
                learned = True
        if changed:
            self._persist_plans()
        if learned:
            self._persist_cost_model()

    # ------------------------------------------------------------------
    def planner_snapshot(self) -> dict:
        """JSON-ready planner state for ``/metrics`` and ``--profile``.

        One stable shape for every operational consumer: the cached
        plans (key, provenance, specialised layer counts), the
        calibration/re-plan counters, and the cost model's fit quality
        (:meth:`CostModel.snapshot`, residuals included).
        """
        plans = []
        for key, plan in self._plans.items():
            kind, shape, timesteps, bucket = key
            plans.append(
                {
                    "input_kind": kind,
                    "input_shape": list(shape),
                    "timesteps": int(timesteps),
                    "density_bucket": int(bucket),
                    "source": plan.source,
                    "layers": len(plan.decisions),
                    "event_layers": plan.event_layers,
                    "sharded_layers": plan.sharded_layers,
                }
            )
        return {
            "plans": plans,
            "calibration_runs": self.calibration_runs,
            "replans_triggered": self.replans_triggered,
            "warm_starts": self.warm_starts,
            "prior_warm_starts": self.prior_warm_starts,
            "density_priors": {
                kind: round(value, 6)
                for kind, value in self._density_priors.items()
            },
            "cost_model": self.cost_model.snapshot(),
        }

    # ------------------------------------------------------------------
    def _compile_plan(
        self, key: Tuple, captures: Dict[str, _Capture]
    ) -> ExecutionPlan:
        """Turn calibration measurements into a per-layer schedule.

        Raced layers keep the PR 3 rule — a measured challenger must
        beat the measured GEMM by the ``margin`` hysteresis — now with
        the row-sharded GEMM as a fourth candidate.  In predict-only
        calibrations no races happened: every raceable layer is priced
        by the cost model instead (source ``"cost-model"``), and layers
        the warm start seeded copy the neighboring bucket's decision.
        """
        plan = ExecutionPlan(key=key)
        seeded_any = False
        for name, capture in captures.items():
            if capture.seeded is not None:
                seed = capture.seeded
                seeded_any = True
                plan.decisions[name] = replace(
                    seed,
                    name=name,
                    density=capture.density,
                    gemm_seconds=capture.gemm_seconds,
                    dense_ops=capture.dense_ops or seed.dense_ops,
                )
                continue
            if self._predict_only:
                plan.decisions[name] = self._predict_decision(name, capture)
                continue
            backend = "gemm"
            best = capture.gemm_seconds * self.margin
            for candidate, seconds in (
                ("event", capture.event_seconds),
                ("event-batched", capture.coo_seconds),
            ):
                if seconds is not None and seconds < best:
                    backend, best = candidate, seconds
            shard_mode, workers = "", 1
            if (
                backend == "gemm"
                and capture.shard_seconds is not None
                and capture.shard_seconds < capture.gemm_seconds * self.margin
            ):
                shard_mode, workers = "thread", self.layer_shard_workers
                best = capture.shard_seconds
            chosen_seconds = (
                capture.gemm_seconds if backend == "gemm" and workers == 1 else best
            )
            plan.decisions[name] = LayerDecision(
                name=name,
                backend=backend,
                density=capture.density,
                gemm_seconds=capture.gemm_seconds,
                event_seconds=capture.event_seconds,
                coo_seconds=capture.coo_seconds,
                source="raced",
                predicted_ms=chosen_seconds * 1e3,
                dense_ops=capture.dense_ops,
                shard_mode=shard_mode,
                workers=workers,
            )
        if seeded_any:
            self.warm_starts += 1
        return plan

    def _predict_decision(self, name: str, capture: _Capture) -> LayerDecision:
        """Price one layer's kernels from the fitted cost model."""
        gemm_ms = self.cost_model.predict_ms("gemm", capture.dense_ops)
        backend = "gemm"
        predicted = gemm_ms if gemm_ms is not None else capture.gemm_seconds * 1e3
        if capture.raceable and gemm_ms is not None:
            # Only the bit-exact COO challenger is predictable: the
            # per-plane gather's cost has per-plane geometry terms the
            # affine-in-ops model cannot see, so it is chosen by
            # measured races only.  This also keeps every predicted
            # plan inside the bitwise pair a mid-run re-plan may swap.
            ops = sparse_feature_ops(capture.dense_ops, capture.density)
            coo_ms = self.cost_model.predict_ms("event-batched", ops)
            if coo_ms is not None and coo_ms < gemm_ms * self.margin:
                backend, predicted = "event-batched", coo_ms
        return LayerDecision(
            name=name,
            backend=backend,
            density=capture.density,
            gemm_seconds=capture.gemm_seconds,
            source="cost-model",
            predicted_ms=float(predicted),
            dense_ops=capture.dense_ops,
        )

    # ------------------------------------------------------------------
    def _layer_shard_output(
        self, module, data, weight, bias, is_conv: bool, workers: int, mode: str
    ):
        """One layer's output computed as supervised row shards.

        Returns ``(out, failures)``; the concatenation of per-block
        results is bitwise identical to the in-line kernel because each
        output row is an independent reduction over the same input rows
        with the same kernel.
        """
        bounds = split_bounds(int(data.shape[0]), workers)

        def kernel(lo: int, hi: int):
            block = data[lo:hi]
            if is_conv:
                return dense_conv2d(
                    block, weight, bias, module.stride, module.padding
                )
            out = block @ weight.T
            if bias is not None:
                out = out + bias
            return out

        if len(bounds) <= 1:
            return kernel(0, int(data.shape[0])), []
        outcome = run_layer_shards(kernel, bounds, mode or "thread")
        return (
            np.concatenate(outcome.results, axis=0),
            list(outcome.failures),
        )

    # ------------------------------------------------------------------
    def _make_interceptor(self, module, stat, orig):
        # The pure GEMM closure, bypassing EventBatchedEngine's COO
        # dispatch: the plan, not a per-layer density check, decides
        # which kernel runs here.
        gemm = TimeBatchedEngine._make_interceptor(self, module, stat, orig)
        is_conv = isinstance(module, Conv2d)
        name = stat.name

        def coords_of(data) -> StepSpikes:
            carried = self._carried_coords(data)
            if carried is not None:
                return carried
            return StepSpikes(
                coords=np.stack(np.nonzero(data), axis=1), shape=data.shape
            )

        def calibrate(x: Tensor, data) -> Tensor:
            # Calibration: time the GEMM path, then (unless the cost
            # model already prices the kernels, or the warm-start seed
            # still matches) race the challengers right here while the
            # input is naturally live — recording numbers, never
            # activations, keeps the calibration run's memory profile
            # identical to a plain batched run.
            constant = id(data) in self._constant_arrays
            counted = self._carried_count(data)
            if counted is not None and counted[1]:
                density = counted[0] / max(data.size, 1)
            else:
                density = np.count_nonzero(data) / max(data.size, 1)
            dense_ops = _dense_op_count(module, data.shape)
            started = time.perf_counter()
            out = gemm(x)
            gemm_seconds = time.perf_counter() - started
            event_seconds: Optional[float] = None
            coo_seconds: Optional[float] = None
            shard_seconds: Optional[float] = None
            seeded: Optional[LayerDecision] = None
            raceable = not constant and density < self.density_threshold
            seed_decision = (
                self._seed_plan.decisions.get(name)
                if self._seed_plan is not None
                else None
            )
            if seed_decision is not None:
                deviation = abs(density - seed_decision.density)
                if (
                    deviation < MIN_DRIFT_DEVIATION
                    or deviation / max(seed_decision.density, 1e-6)
                    <= self.drift_threshold
                ):
                    # The neighboring bucket calibrated this layer at an
                    # activity level the drift guard would accept: adopt
                    # its decision, skip the race.
                    seeded = seed_decision
            if raceable and seeded is None and not self._predict_only:
                weight = _effective_weight(module, self._weight_cache)
                bias = module.bias.data if module.bias is not None else None
                # Every raced kernel gets the same best-of-N
                # sampling, the GEMM included: its real forward
                # above is one sample, and the raw kernel is
                # re-timed to fill the rest.  An asymmetric race
                # (min-of-N candidates vs a one-shot incumbent)
                # flips crossover layers onto slower sparse kernels
                # whenever the single GEMM sample lands high.
                for _ in range(CALIBRATION_REPEATS - 1):
                    trial = time.perf_counter()
                    if is_conv:
                        dense_conv2d(
                            data, weight, bias, module.stride, module.padding
                        )
                    else:
                        redo = data @ weight.T
                        if bias is not None:
                            redo += bias
                    gemm_seconds = min(
                        gemm_seconds, time.perf_counter() - trial
                    )
                event_seconds = float("inf")
                for _ in range(CALIBRATION_REPEATS):
                    trial = time.perf_counter()
                    if is_conv:
                        sparse_conv2d(
                            data, weight, bias, module.stride, module.padding
                        )
                    else:
                        sparse_linear(data, weight, bias)
                    event_seconds = min(
                        event_seconds, time.perf_counter() - trial
                    )
                coo_seconds = float("inf")
                for _ in range(CALIBRATION_REPEATS):
                    # The coordinate scan stays inside the timed
                    # region when no coordinates are carried — the
                    # planned path pays it too.
                    trial = time.perf_counter()
                    self._coo_synapse(
                        module, data, coords_of(data), weight, bias,
                        register=False,
                    )
                    coo_seconds = min(
                        coo_seconds, time.perf_counter() - trial
                    )
                # The measured race feeds the analytic model: one
                # (backend, ops, ms) sample per kernel, billed in each
                # backend's own work unit.
                sparse_ops = sparse_feature_ops(dense_ops, density)
                self._run_observations.extend(
                    [
                        ("gemm", float(dense_ops), gemm_seconds * 1e3),
                        ("event", sparse_ops, event_seconds * 1e3),
                        ("event-batched", sparse_ops, coo_seconds * 1e3),
                    ]
                )
            if (
                not constant
                and seeded is None
                and not self._predict_only
                and self.layer_shard_workers > 1
                and data.shape[0] >= self.layer_shard_workers
                and gemm_seconds > self.layer_shard_min_seconds
            ):
                weight = _effective_weight(module, self._weight_cache)
                bias = module.bias.data if module.bias is not None else None
                shard_seconds = float("inf")
                for _ in range(CALIBRATION_REPEATS):
                    trial = time.perf_counter()
                    self._layer_shard_output(
                        module, data, weight, bias, is_conv,
                        self.layer_shard_workers, "thread",
                    )
                    shard_seconds = min(
                        shard_seconds, time.perf_counter() - trial
                    )
            self._calibration[name] = _Capture(
                density=density,
                gemm_seconds=gemm_seconds,
                event_seconds=event_seconds,
                coo_seconds=coo_seconds,
                shard_seconds=shard_seconds,
                dense_ops=dense_ops,
                raceable=raceable,
                seeded=seeded,
            )
            return out

        def forward(x: Tensor) -> Tensor:
            data = x.data
            plan = self._active_plan
            if plan is None:
                return calibrate(x, data)
            constant = id(data) in self._constant_arrays
            decision = plan.decisions.get(name)
            if (
                decision is not None
                and not constant
                and self.midrun_replan
                and self._replanned_at is None
                and stat.input_size > 0
                and self.cost_model.plan_ready()
            ):
                # The profiler recorded this layer's density just before
                # this call, so the drift check is free here — and this
                # is exactly the layer boundary a swap must happen at.
                observed = stat.input_nonzero / stat.input_size
                deviation = abs(observed - decision.density)
                if (
                    deviation >= MIN_DRIFT_DEVIATION
                    and deviation / max(decision.density, 1e-6)
                    > self.drift_threshold
                ):
                    plan = self._replan_mid_run(plan, name, observed)
                    decision = plan.decisions.get(name)
            backend = decision.backend if decision is not None else "gemm"
            if backend == "gemm" or constant:
                if (
                    decision is not None
                    and decision.workers > 1
                    and not constant
                ):
                    # Planned row sharding: same GEMM kernel over
                    # contiguous row blocks under the shard supervisor,
                    # billed exactly like the in-line GEMM.
                    ops = _dense_op_count(module, data.shape)
                    stat.synaptic_ops += ops
                    stat.dense_synaptic_ops += ops
                    weight = _effective_weight(module, self._weight_cache)
                    bias = (
                        module.bias.data if module.bias is not None else None
                    )
                    out, failures = self._layer_shard_output(
                        module, data, weight, bias, is_conv,
                        decision.workers, decision.shard_mode,
                    )
                    if failures:
                        self._layer_shard_failures.extend(failures)
                    return Tensor(out)
                return gemm(x)
            # Planned sparse layer: one gather over the whole (T*N, ...)
            # stack; bills performed (per-spike) ops like the event
            # engine, with the dense MAC count as the baseline.
            stat.dense_synaptic_ops += _dense_op_count(module, data.shape)
            weight = _effective_weight(module, self._weight_cache)
            bias = module.bias.data if module.bias is not None else None
            if backend == "event-batched":
                out, billed, _ = self._coo_synapse(
                    module, data, coords_of(data), weight, bias
                )
            elif is_conv:
                out, billed = sparse_conv2d(
                    data, weight, bias, module.stride, module.padding
                )
            else:
                out, billed = sparse_linear(data, weight, bias)
            stat.synaptic_ops += billed
            return Tensor(out)

        return forward
