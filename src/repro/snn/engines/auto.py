"""The adaptive backend: profile once, then specialise per layer.

The paper's accelerator wins by exploiting *per-layer* sparsity — the
mapper measures each layer's activity and lays it onto the aggregation
core accordingly.  A single global backend choice (dense / event /
batched) throws that structure away: measured densities vary widely
across layers, so the best kernel is a per-layer property.

:class:`AutoEngine` (``engine="auto"``) closes the same
measure-then-specialise loop in software:

1. **Calibrate.** The first run for a given (input shape, T) executes
   the time-batched GEMM schedule while the per-layer profiler records
   each synapse layer's wall clock and observed input density (and
   whether its input is the constant analog frame).
2. **Compile a plan.** For every genuinely sparse layer both sparse
   kernels — the per-plane event gather and the bit-exact batched COO
   row-subset path (:mod:`repro.snn.engines.event_batched`) — are timed
   on the very activations the calibration run produced; a layer
   switches off the GEMM only when a measured sparse kernel beats its
   measured GEMM by a safety margin, and then to whichever sparse
   kernel measured faster.  Dense, high-density and constant-frame
   layers stay on the batched GEMM.
3. **Cache.** The plan is cached by (bound model, input shape, T,
   input-density bucket) in a bounded LRU, so repeat inferences skip
   calibration entirely and run straight on the specialised per-layer
   schedule.  The key is the *full* input shape, batch included, plus
   the coarse :func:`density_bucket` of the input itself: the
   GEMM/gather crossover moves with the ``(T*N, ...)`` stack size *and*
   with how many events flow through it, so a plan calibrated at batch
   1 must not be extrapolated to batch 64, nor a 1%-density DVS plan to
   a 40%-density stream of the same shape.

Because the event gather equals the dense kernel up to float summation
order and everything else *is* the batched schedule, auto logits match
``DenseEngine`` within summation-order tolerance, while wall clock
tracks the best per-layer mix — never worse than the batched backend
beyond measurement noise, and faster wherever real sparsity pays.

Op accounting follows the chosen backend per layer: GEMM layers bill
full dense MACs, event layers bill performed (per-spike) ops, and every
layer's :class:`repro.snn.stats.LayerStats` records which backend ran
(``profile_table`` / ``BENCH_engines.json`` show the plan).
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.layers import Conv2d
from repro.snn.engines.base import LRUCache, _dense_op_count, _effective_weight
from repro.snn.engines.batched import TimeBatchedEngine
from repro.snn.engines.dense import dense_conv2d
from repro.snn.engines.event import sparse_conv2d, sparse_linear
from repro.snn.engines.event_batched import EventBatchedEngine
from repro.snn.spikes import SpikeStream, StepSpikes
from repro.tensor import Tensor
from repro.utils.io import atomic_write_json

logger = logging.getLogger(__name__)

#: Distinct (input shape, T) execution plans kept per engine.
PLAN_CACHE_CAPACITY = 8

#: On-disk format tag for persisted execution plans.
PLAN_FILE_FORMAT = "repro-execution-plans/v1"

#: Upper edges of the coarse input-density buckets baked into plan keys.
#: The GEMM/gather crossover moves with input density just like it moves
#: with the stack size, so a plan calibrated on a 1%-dense stream must
#: not be replayed on a 40%-dense one of the same shape.  Buckets are
#: deliberately coarse (log-spaced around the observed crossovers) so
#: ordinary batch-to-batch density jitter still hits the cached plan.
DENSITY_BUCKET_EDGES = (0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5)

#: Timing samples per kernel in the calibration race (best-of-N).  All
#: three kernels — GEMM, event gather, COO row-subset — get the same
#: sample count: racing a min-of-N candidate against a single-shot
#: incumbent systematically favours the candidate (one noisy-high GEMM
#: sample near the crossover flips the layer to a slower sparse kernel),
#: which is exactly the miscalibration that pushes ``auto_vs_best_fixed``
#: past its 1.1 acceptance bound.
CALIBRATION_REPEATS = 3


def density_bucket(density: float) -> int:
    """The coarse plan-key bucket an input density falls into.

    Bucket ``i`` covers densities in ``(EDGES[i-1], EDGES[i]]``; the
    last bucket (``len(DENSITY_BUCKET_EDGES)``) is everything denser
    than the last edge, which is where direct-coded analog frames land.
    """
    return int(
        np.searchsorted(DENSITY_BUCKET_EDGES, float(density), side="left")
    )


@dataclass
class LayerDecision:
    """One synapse layer's calibrated backend choice."""

    name: str
    backend: str                 # "gemm" | "event" | "event-batched"
    density: float               # observed input density during calibration
    gemm_seconds: float          # measured batched-GEMM wall clock
    event_seconds: Optional[float] = None  # measured gather wall clock (if tried)
    coo_seconds: Optional[float] = None    # measured COO row-subset wall clock


@dataclass
class ExecutionPlan:
    """A compiled per-layer backend assignment for one (kind, shape, T) key.

    ``key`` is ``(input_kind, input_shape, timesteps, density_bucket)``
    where ``input_kind`` is ``"dense"`` for direct-coded frames and
    ``"stream"`` for COO spike-stream input — the two present very
    different densities to the layers, so they never share a plan — and
    ``density_bucket`` is the coarse :func:`density_bucket` of the
    input's own nonzero fraction, so same-shaped workloads at genuinely
    different activity levels calibrate separately.
    Plans serialise to JSON (:meth:`to_json` / :meth:`from_json`) so a
    compiled plan can persist beside a model checkpoint and be reloaded
    by another process (``AutoEngine(plan_path=...)``).
    """

    key: Tuple
    decisions: Dict[str, LayerDecision] = field(default_factory=dict)

    def backend_of(self, name: str) -> str:
        decision = self.decisions.get(name)
        return decision.backend if decision is not None else "gemm"

    @property
    def event_layers(self) -> int:
        return sum(1 for d in self.decisions.values() if d.backend == "event")

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """This plan as a JSON-serialisable dict."""
        kind, shape, timesteps, bucket = self.key
        return {
            "format": PLAN_FILE_FORMAT,
            "key": {
                "input_kind": kind,
                "input_shape": list(shape),
                "timesteps": timesteps,
                "density_bucket": bucket,
            },
            "decisions": [
                {
                    "name": d.name,
                    "backend": d.backend,
                    "density": d.density,
                    "gemm_seconds": d.gemm_seconds,
                    "event_seconds": d.event_seconds,
                    "coo_seconds": d.coo_seconds,
                }
                for d in self.decisions.values()
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ExecutionPlan":
        """Rebuild a plan from a :meth:`to_payload` dict."""
        if payload.get("format") != PLAN_FILE_FORMAT:
            raise ValueError(
                f"not an execution plan document (format "
                f"{payload.get('format')!r}, expected {PLAN_FILE_FORMAT!r})"
            )
        key_info = payload["key"]
        plan = cls(
            key=(
                str(key_info["input_kind"]),
                tuple(int(s) for s in key_info["input_shape"]),
                int(key_info["timesteps"]),
                # Plans persisted before density bucketing default to the
                # densest bucket — where a frame-calibrated plan belongs.
                int(key_info.get("density_bucket", len(DENSITY_BUCKET_EDGES))),
            )
        )
        for entry in payload["decisions"]:
            plan.decisions[entry["name"]] = LayerDecision(
                name=entry["name"],
                backend=entry["backend"],
                density=float(entry["density"]),
                gemm_seconds=float(entry["gemm_seconds"]),
                event_seconds=(
                    None
                    if entry["event_seconds"] is None
                    else float(entry["event_seconds"])
                ),
                coo_seconds=(
                    None
                    if entry.get("coo_seconds") is None
                    else float(entry["coo_seconds"])
                ),
            )
        return plan

    def to_json(self) -> str:
        """This plan as a standalone JSON document."""
        return json.dumps(self.to_payload(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ExecutionPlan":
        """Rebuild a plan serialised by :meth:`to_json`."""
        return cls.from_payload(json.loads(text))


@dataclass
class _Capture:
    """Per-layer calibration measurement.

    Numbers only — the event kernel is raced inline while the layer's
    input is naturally live, so calibration never retains activation
    stacks (a batched run's whole working set would otherwise stay
    pinned until the plan compiles).
    """

    density: float
    gemm_seconds: float
    event_seconds: Optional[float]  # None: constant/dense input, not raced
    coo_seconds: Optional[float] = None  # COO row-subset kernel, if raced


class AutoEngine(EventBatchedEngine):
    """Adaptive backend: calibrated per-layer GEMM/event execution plan.

    Parameters
    ----------
    density_threshold:
        Input densities at or above this never try the event kernel
        (there is no sparsity to exploit; the gather would only copy).
    margin:
        The event kernel must beat the measured GEMM by this factor to
        be chosen (< 1.0 adds hysteresis against timing noise, so a
        borderline layer stays on the safe GEMM path).
    drift_threshold:
        The drift guard: after a planned run, each layer's *observed*
        input density is compared with the density the plan was
        calibrated at; if the worst relative deviation exceeds this
        threshold the plan is dropped (one log line,
        ``RunStats.replan_triggered``) so the next run recalibrates —
        the software twin of the mapper re-measuring when the workload
        distribution shifts.
    plan_path:
        Optional JSON file persisting compiled plans across processes
        (kept beside model checkpoints).  Existing plans are loaded at
        construction; every fresh calibration rewrites the file.
    """

    name = "auto"

    def __init__(
        self,
        density_threshold: float = 0.5,
        margin: float = 0.9,
        drift_threshold: float = 0.5,
        plan_path: Optional[str] = None,
        profile_layers: bool = True,
    ) -> None:
        # Calibration *is* the per-layer profile, so profiling stays on
        # regardless of the flag an explicit False would suggest.
        super().__init__(
            density_threshold=density_threshold, profile_layers=True
        )
        if not 0.0 < margin <= 1.0:
            raise ValueError("margin must be in (0, 1]")
        if drift_threshold <= 0.0:
            raise ValueError("drift_threshold must be > 0")
        self.margin = margin
        self.drift_threshold = drift_threshold
        self.plan_path = plan_path
        self.calibration_runs = 0
        self.replans_triggered = 0
        self._plans = LRUCache(PLAN_CACHE_CAPACITY)
        self._active_plan: Optional[ExecutionPlan] = None
        self._calibration: Optional[Dict[str, _Capture]] = None
        # Single-writer guard for the plan file: fork-pool children
        # inherit this engine (and plan_path) copy-on-write, but only
        # the owning process persists — children ship plans/evictions
        # back on the EngineRun for the parent to absorb and write.
        self._owner_pid = os.getpid()
        if plan_path is not None:
            self.load_plans(plan_path, missing_ok=True)

    def _config(self) -> dict:
        # plan_path is deliberately not inherited by thread-shard
        # siblings: they share this engine's plan cache already, and
        # the parent is the single writer of the persistence file.
        config = super()._config()
        config["margin"] = self.margin
        config["drift_threshold"] = self.drift_threshold
        return config

    def _share_caches(self, peer: "AutoEngine") -> None:
        super()._share_caches(peer)
        peer._plans = self._plans

    # ------------------------------------------------------------------
    # Plan persistence
    # ------------------------------------------------------------------
    def save_plans(self, path: Optional[str] = None) -> None:
        """Write every cached plan to ``path`` (default: ``plan_path``).

        The write is atomic (temp file + rename) so a concurrent
        ``AutoEngine(plan_path=...)`` in another process never reads a
        torn document.
        """
        path = path if path is not None else self.plan_path
        if path is None:
            raise ValueError("no path given and no plan_path configured")
        payload = {
            "format": PLAN_FILE_FORMAT,
            "plans": [plan.to_payload() for _, plan in self._plans.items()],
        }
        atomic_write_json(path, payload)

    def load_plans(self, path: Optional[str] = None, missing_ok: bool = False) -> int:
        """Load persisted plans into the cache; returns how many.

        A plan file is a cache, never ground truth: if it is corrupt,
        truncated (a crash on a filesystem without atomic rename) or
        written by an incompatible format version, loading logs one
        warning and returns 0 — the engine simply recalibrates, and the
        next persist atomically replaces the bad file.  Only a missing
        file with ``missing_ok=False`` (an explicit load of a path the
        caller asserted exists) still raises.
        """
        path = path if path is not None else self.plan_path
        if path is None:
            raise ValueError("no path given and no plan_path configured")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            if missing_ok:
                return 0
            raise
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
            logger.warning(
                "ignoring unreadable plan file %s (%s); the engine will "
                "recalibrate and rewrite it", path, error
            )
            return 0
        if not isinstance(payload, dict) or payload.get("format") != PLAN_FILE_FORMAT:
            found = payload.get("format") if isinstance(payload, dict) else type(payload).__name__
            logger.warning(
                "ignoring plan file %s: format %r does not match %r; the "
                "engine will recalibrate and rewrite it",
                path, found, PLAN_FILE_FORMAT,
            )
            return 0
        try:
            plans = [
                ExecutionPlan.from_payload(dict(entry, format=PLAN_FILE_FORMAT))
                for entry in payload.get("plans", [])
            ]
        except (KeyError, TypeError, ValueError) as error:
            logger.warning(
                "ignoring plan file %s with malformed plan entries (%s); "
                "the engine will recalibrate and rewrite it", path, error
            )
            return 0
        for plan in plans:
            self._plans.put(plan.key, plan)
        return len(plans)

    def _persist_plans(self) -> None:
        # Fork children inherit plan_path but must not write: their
        # copy-on-write cache is partial, and concurrent writers would
        # race on the file.  The parent persists on absorb.
        if self.plan_path is not None and os.getpid() == self._owner_pid:
            self.save_plans(self.plan_path)

    # ------------------------------------------------------------------
    @staticmethod
    def _plan_key(x, timesteps: int) -> Tuple:
        if isinstance(x, SpikeStream):
            # O(1) from the stream's own metadata — no plane scan.
            kind, density = "stream", x.density
        else:
            data = np.asarray(x)
            kind = "dense"
            density = np.count_nonzero(data) / max(data.size, 1)
        return (kind, tuple(x.shape), int(timesteps), density_bucket(density))

    def plan_for(
        self,
        input_shape,
        timesteps: int,
        kind: str = "dense",
        density_bucket: Optional[int] = None,
    ) -> Optional[ExecutionPlan]:
        """The cached plan for a full input shape (batch included) and T.

        With ``density_bucket=None`` the most recently cached plan for
        the (kind, shape, T) prefix is returned regardless of its
        bucket; pass a :func:`density_bucket` value to pin one.
        """
        prefix = (str(kind), tuple(int(s) for s in input_shape), int(timesteps))
        if density_bucket is not None:
            return self._plans.get(prefix + (int(density_bucket),))
        match = None
        for key, plan in self._plans.items():
            if key[:3] == prefix:
                match = plan
        return match

    def _run_single(self, x, timesteps, per_step):
        key = self._plan_key(x, timesteps)
        plan = self._plans.get(key)
        self._active_plan = plan
        self._calibration = {} if plan is None else None
        try:
            run = super()._run_single(x, timesteps, per_step)
            if self._calibration is not None:
                plan = self._compile_plan(key, self._calibration)
                self._plans.put(key, plan)
                self.calibration_runs += 1
                self._persist_plans()
                # Ship the fresh plan back on the run: a fork-pool shard
                # compiles in a throwaway child process, and only this
                # payload (absorbed by the parent's _absorb_shard_runs)
                # gets it into the surviving cache.
                run.plan = plan
            else:
                if self._check_drift(key, plan, run.stats):
                    # Like a fresh plan, an eviction must ride back to
                    # the parent: a fork shard pops only its throwaway
                    # copy-on-write cache, and thread siblings carry no
                    # plan_path, so the parent re-drops and re-persists.
                    run.dropped_plan_key = key
            for layer in run.stats.layers:
                if layer.kind == "neuron":
                    layer.backend = "stepped"
                else:
                    layer.backend = plan.backend_of(layer.name)
            return run
        finally:
            self._active_plan = None
            self._calibration = None

    def _check_drift(self, key, plan: ExecutionPlan, stats) -> bool:
        """Drop the plan when observed densities left its calibration.

        Relative drift is ``|observed - calibrated| / calibrated`` per
        planned synapse layer; crossing ``drift_threshold`` on any
        layer means the GEMM/event crossover the plan encodes was
        measured on a different activity regime (distribution shift),
        so the plan is evicted and the next run recalibrates.  Layers
        whose *absolute* deviation is tiny are ignored: near-silent
        layers naturally vary by large relative factors between batches
        without moving the GEMM/gather crossover, and billing them
        would make the guard oscillate calibrate/drop forever.  Returns
        whether the plan was dropped.
        """
        worst = 0.0
        for layer in stats.layers:
            decision = plan.decisions.get(layer.name)
            if decision is None or layer.input_size == 0:
                continue
            deviation = abs(layer.input_density - decision.density)
            if deviation < 0.01:  # below any kernel crossover's resolution
                continue
            worst = max(worst, deviation / max(decision.density, 1e-6))
        stats.plan_drift = worst
        if worst <= self.drift_threshold:
            return False
        stats.replan_triggered = True
        self.replans_triggered += 1
        self._plans.pop(key)
        self._persist_plans()
        logger.info(
            "auto engine: observed layer density drifted %.0f%% from the "
            "compiled plan's calibration (threshold %.0f%%); plan %s "
            "dropped, next run recalibrates",
            worst * 100.0,
            self.drift_threshold * 100.0,
            key,
        )
        return True

    def _absorb_shard_runs(self, runs) -> None:
        changed = False
        for run in runs:
            if run is None:
                continue
            if run.plan is not None:
                self._plans.put(run.plan.key, run.plan)
                changed = True
            if run.dropped_plan_key is not None:
                # Re-drop in the surviving cache (a no-op for thread
                # siblings, which share it) and rewrite the plan file.
                self._plans.pop(run.dropped_plan_key)
                changed = True
        if changed:
            self._persist_plans()

    # ------------------------------------------------------------------
    def _compile_plan(
        self, key: Tuple, captures: Dict[str, _Capture]
    ) -> ExecutionPlan:
        """Turn calibration measurements into a backend assignment.

        The racing already happened inline (see the interceptor); here
        the measured gather simply has to beat the measured GEMM by the
        ``margin`` hysteresis to win the layer.
        """
        plan = ExecutionPlan(key=key)
        for name, capture in captures.items():
            backend = "gemm"
            best = capture.gemm_seconds * self.margin
            for candidate, seconds in (
                ("event", capture.event_seconds),
                ("event-batched", capture.coo_seconds),
            ):
                if seconds is not None and seconds < best:
                    backend, best = candidate, seconds
            plan.decisions[name] = LayerDecision(
                name=name,
                backend=backend,
                density=capture.density,
                gemm_seconds=capture.gemm_seconds,
                event_seconds=capture.event_seconds,
                coo_seconds=capture.coo_seconds,
            )
        return plan

    # ------------------------------------------------------------------
    def _make_interceptor(self, module, stat, orig):
        # The pure GEMM closure, bypassing EventBatchedEngine's COO
        # dispatch: the plan, not a per-layer density check, decides
        # which kernel runs here.
        gemm = TimeBatchedEngine._make_interceptor(self, module, stat, orig)
        is_conv = isinstance(module, Conv2d)
        name = stat.name

        def coords_of(data) -> StepSpikes:
            carried = self._carried_coords(data)
            if carried is not None:
                return carried
            return StepSpikes(
                coords=np.stack(np.nonzero(data), axis=1), shape=data.shape
            )

        def forward(x: Tensor) -> Tensor:
            data = x.data
            plan = self._active_plan
            if plan is None:
                # Calibration: time the GEMM path, then race the event
                # gather and the COO row-subset kernel right here while
                # the input is naturally live — recording numbers, never
                # activations, keeps the calibration run's memory
                # profile identical to a plain batched run.
                constant = id(data) in self._constant_arrays
                counted = self._carried_count(data)
                if counted is not None and counted[1]:
                    density = counted[0] / max(data.size, 1)
                else:
                    density = np.count_nonzero(data) / max(data.size, 1)
                started = time.perf_counter()
                out = gemm(x)
                gemm_seconds = time.perf_counter() - started
                event_seconds: Optional[float] = None
                coo_seconds: Optional[float] = None
                if not constant and density < self.density_threshold:
                    weight = _effective_weight(module, self._weight_cache)
                    bias = module.bias.data if module.bias is not None else None
                    # Every raced kernel gets the same best-of-N
                    # sampling, the GEMM included: its real forward
                    # above is one sample, and the raw kernel is
                    # re-timed to fill the rest.  An asymmetric race
                    # (min-of-N candidates vs a one-shot incumbent)
                    # flips crossover layers onto slower sparse kernels
                    # whenever the single GEMM sample lands high.
                    for _ in range(CALIBRATION_REPEATS - 1):
                        trial = time.perf_counter()
                        if is_conv:
                            dense_conv2d(
                                data, weight, bias, module.stride, module.padding
                            )
                        else:
                            redo = data @ weight.T
                            if bias is not None:
                                redo += bias
                        gemm_seconds = min(
                            gemm_seconds, time.perf_counter() - trial
                        )
                    event_seconds = float("inf")
                    for _ in range(CALIBRATION_REPEATS):
                        trial = time.perf_counter()
                        if is_conv:
                            sparse_conv2d(
                                data, weight, bias, module.stride, module.padding
                            )
                        else:
                            sparse_linear(data, weight, bias)
                        event_seconds = min(
                            event_seconds, time.perf_counter() - trial
                        )
                    coo_seconds = float("inf")
                    for _ in range(CALIBRATION_REPEATS):
                        # The coordinate scan stays inside the timed
                        # region when no coordinates are carried — the
                        # planned path pays it too.
                        trial = time.perf_counter()
                        self._coo_synapse(
                            module, data, coords_of(data), weight, bias,
                            register=False,
                        )
                        coo_seconds = min(
                            coo_seconds, time.perf_counter() - trial
                        )
                self._calibration[name] = _Capture(
                    density=density,
                    gemm_seconds=gemm_seconds,
                    event_seconds=event_seconds,
                    coo_seconds=coo_seconds,
                )
                return out
            backend = plan.backend_of(name)
            if backend == "gemm" or id(data) in self._constant_arrays:
                return gemm(x)
            # Planned sparse layer: one gather over the whole (T*N, ...)
            # stack; bills performed (per-spike) ops like the event
            # engine, with the dense MAC count as the baseline.
            stat.dense_synaptic_ops += _dense_op_count(module, data.shape)
            weight = _effective_weight(module, self._weight_cache)
            bias = module.bias.data if module.bias is not None else None
            if backend == "event-batched":
                out, billed, _ = self._coo_synapse(
                    module, data, coords_of(data), weight, bias
                )
            elif is_conv:
                out, billed = sparse_conv2d(
                    data, weight, bias, module.stride, module.padding
                )
            else:
                out, billed = sparse_linear(data, weight, bias)
            stat.synaptic_ops += billed
            return Tensor(out)

        return forward
