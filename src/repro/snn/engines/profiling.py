"""Per-layer wall-clock attribution for the simulation engines.

The paper's mapper measures before it specialises: per-layer activity
decides how each layer is laid onto the aggregation core.  The software
twin needs the same signal, so every engine wraps its per-layer
interceptors in :func:`profiled_call` — two ``perf_counter`` reads per
layer *call* (one call per run on the batched schedule, one per
timestep on the time-outer engines), accumulated straight onto the
layer's :class:`repro.snn.stats.LayerStats`.  Synapse layers
additionally record the observed input density (nonzero fraction),
which is what sets event-driven cost and is the second axis of the
adaptive engine's execution plan.

The wrapper is only installed when ``SimulationEngine.profile_layers``
is on (the default); the overhead is a few hundred nanoseconds plus one
``count_nonzero`` pass per layer call, orders of magnitude below the
GEMMs it brackets — the engine benchmark asserts the end-to-end cost
stays under 5%.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from repro.snn.stats import LayerStats
from repro.tensor import Tensor


def profiled_call(
    fn: Callable[[Tensor], Tensor],
    stat: LayerStats,
    record_density: bool = False,
    nonzero_of: Optional[Callable[[np.ndarray], Optional[int]]] = None,
) -> Callable[[Tensor], Tensor]:
    """Wrap a forward interceptor with wall-clock (and density) recording.

    The timer brackets only ``fn`` itself; the density count runs
    outside the timed region so profiling overhead is never billed to
    the layer.  Density is recorded *before* the layer executes: the
    adaptive engine's mid-run drift guard reads the current layer's
    observed density off ``stat`` inside the interceptor to decide
    whether to swap the plan at this very layer boundary, so the number
    must already be there when ``fn`` runs.  ``nonzero_of`` lets the
    engine answer the nonzero count from metadata it already carries
    (COO stream coordinates) — a ``None`` return falls back to scanning
    the plane.
    """

    def profiled(x: Tensor) -> Tensor:
        data = x.data
        if record_density:
            nonzero = nonzero_of(data) if nonzero_of is not None else None
            if nonzero is None:
                nonzero = int(np.count_nonzero(data))
            stat.input_nonzero += nonzero
            stat.input_size += int(data.size)
        started = time.perf_counter()
        out = fn(x)
        stat.wall_clock_seconds += time.perf_counter() - started
        return out

    return profiled
