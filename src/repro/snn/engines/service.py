"""An async-friendly, replaceable execution slot over a bound engine.

The serving layer (:mod:`repro.serve`) needs three things the raw
:class:`~repro.snn.engines.base.SimulationEngine` interface does not
give it:

* **Serialised submission.**  An engine instance is not reentrant — a
  run installs forward interceptors on the bound model for its
  duration — so concurrent requests must queue behind one another.
  :class:`EngineWorker` owns a single-thread executor per engine: the
  thread *is* the engine's execution slot, and the queue in front of it
  is the natural backpressure the micro-batcher measures.
* **An awaitable API.**  :meth:`EngineWorker.run_async` wraps the
  worker future for ``asyncio`` callers with an optional wall-clock
  timeout, so the event loop never blocks on a GEMM.
* **A health probe and a poison recovery path.**  A worker thread stuck
  inside a wedged run cannot be killed; what *can* be done — the same
  move the shard supervisor makes when a thread shard hangs — is to
  abandon the wedged thread together with the model whose interceptors
  it still holds, and rebuild the slot on a sibling engine bound to a
  weight-sharing clone (:func:`clone_for_inference`).  Weights are
  never copied, warm cross-run caches (effective weights, compiled
  execution plans) are shared with the replacement, and the stuck
  thread dies with the process.  :meth:`EngineWorker.health_probe`
  runs a tiny canary inference through the same slot so liveness means
  "the engine actually completes work", not "the process exists".

Runs inside the worker still ride PR 7's supervised sharding: a
``ShardPolicy`` passed at construction travels into every
``engine.run``, so per-shard crashes and hangs retry and degrade
fork→thread→serial *inside* the slot before the worker-level timeout
ever fires.  The worker-level timeout is the outer net for what the
supervisor cannot catch — a hang in serial execution itself.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.snn.engines.base import EngineRun, SimulationEngine
from repro.snn.engines.sharding import ShardPolicy, clone_for_inference

logger = logging.getLogger(__name__)

_WORKER_IDS = itertools.count(1)


class WorkerTimeout(RuntimeError):
    """A submitted run outlived its wall-clock budget; the worker's
    execution slot was abandoned and rebuilt on a model clone."""


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one health-probe canary inference."""

    ok: bool
    latency_seconds: float
    error: str = ""


class EngineWorker:
    """One serialised, replaceable execution slot over a bound engine.

    Parameters
    ----------
    engine:
        A bound :class:`SimulationEngine` (``engine.model`` set).  The
        worker takes over execution scheduling; callers must not run
        the engine directly while the worker owns it.
    policy:
        Shard-level failure policy threaded into every run (retries,
        per-attempt deadlines, the degradation chain).
    workers / shard_mode:
        Batch-shard fan-out applied to every dispatched batch.
    probe_shape:
        Single-sample input shape ``(C, H, W)`` for health-probe
        canaries; defaults to the shape of the first submitted batch.
    probe_timesteps:
        T for canary runs (small on purpose: a probe asserts liveness,
        not accuracy).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        policy: Optional[ShardPolicy] = None,
        workers: int = 1,
        shard_mode: str = "auto",
        probe_shape: Optional[Sequence[int]] = None,
        probe_timesteps: int = 2,
    ) -> None:
        if engine.model is None:
            raise ValueError("engine must be bound to a model (call bind() first)")
        self._engine = engine
        self._source_model = engine.model
        self.policy = policy
        self.workers = int(workers)
        self.shard_mode = shard_mode
        self.probe_shape: Optional[Tuple[int, ...]] = (
            tuple(int(s) for s in probe_shape) if probe_shape is not None else None
        )
        self.probe_timesteps = int(probe_timesteps)
        self._lock = threading.Lock()
        self._executor = self._fresh_executor()
        self.restarts = 0          # wedged slots abandoned and rebuilt
        self.runs_completed = 0
        self.shard_failures = 0    # supervised failures absorbed inside runs
        self.last_degraded_mode = ""
        self.replans_seen = 0      # planner drift events observed in runs

    # ------------------------------------------------------------------
    def _fresh_executor(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=1,
            thread_name_prefix=f"engine-worker-{next(_WORKER_IDS)}",
        )

    @property
    def engine(self) -> SimulationEngine:
        return self._engine

    @property
    def pending(self) -> int:
        """Queued-but-unfinished runs (approximate; for metrics only)."""
        return getattr(self._executor, "_work_queue").qsize()

    # ------------------------------------------------------------------
    def _run(self, x, timesteps: int, per_step: bool) -> EngineRun:
        if self.probe_shape is None and hasattr(x, "shape"):
            self.probe_shape = tuple(int(s) for s in x.shape[1:])
        observe = getattr(self._engine, "observe_density_prior", None)
        if observe is not None and isinstance(x, np.ndarray):
            # Serving-observed density feeds the planner's EWMA prior so
            # cold plan keys warm-start from real traffic (one
            # count_nonzero pass — noise next to a T-timestep run).
            observe("dense", float(np.count_nonzero(x)) / max(x.size, 1))
        run = self._engine.run(
            x,
            timesteps,
            per_step=per_step,
            workers=self.workers,
            shard_mode=self.shard_mode,
            shard_policy=self.policy,
        )
        with self._lock:
            self.runs_completed += 1
            self.shard_failures += len(run.stats.shard_failures)
            if run.stats.degraded_shard_mode:
                self.last_degraded_mode = run.stats.degraded_shard_mode
            if run.stats.replan_triggered:
                self.replans_seen += 1
        return run

    def submit(self, x, timesteps: int, per_step: bool = False) -> Future:
        """Queue one batch on the execution slot; returns its future."""
        with self._lock:
            executor = self._executor
        return executor.submit(self._run, x, int(timesteps), per_step)

    async def run_async(
        self,
        x,
        timesteps: int,
        per_step: bool = False,
        timeout: Optional[float] = None,
    ) -> EngineRun:
        """Await one batch through the slot, with a hang deadline.

        On timeout the wedged slot is replaced (:meth:`restart`) and
        :class:`WorkerTimeout` raised — the circuit breaker's signal.
        The abandoned thread may still be executing; it holds only the
        abandoned model clone, so the replacement slot is unaffected.
        """
        future = self.submit(x, timesteps, per_step)
        try:
            return await asyncio.wait_for(asyncio.wrap_future(future), timeout)
        except asyncio.TimeoutError:
            self.restart()
            raise WorkerTimeout(
                f"engine run exceeded its {timeout:.3f}s budget; the worker "
                f"slot was abandoned and rebuilt"
            ) from None

    # ------------------------------------------------------------------
    def restart(self) -> None:
        """Abandon the (possibly wedged) slot and rebuild it.

        The old executor is shut down without waiting — its thread, if
        stuck, keeps the *old* model's interceptors and dies with the
        process.  The replacement engine is a sibling (same
        configuration, shared thread-safe cross-run caches, so compiled
        plans and effective weights stay warm) bound to a fresh
        structural clone that shares every weight array with the
        original model.
        """
        with self._lock:
            self._executor.shutdown(wait=False)
            self._executor = self._fresh_executor()
            replacement = self._engine._sibling()
            replacement.bind(clone_for_inference(self._source_model))
            self._engine = replacement
            self.restarts += 1
        logger.warning(
            "engine worker restarted (%d restart(s) total): wedged slot "
            "abandoned, engine rebuilt on a weight-sharing model clone",
            self.restarts,
        )

    # ------------------------------------------------------------------
    def planner_snapshot(self) -> Optional[dict]:
        """The engine's planner state, when the engine has a planner.

        ``AutoEngine.planner_snapshot()`` passed through (cached plans,
        calibration/re-plan counters, cost-model fit quality); ``None``
        for fixed-backend engines.  Slot restarts preserve it: sibling
        engines share the plan cache and cost model.
        """
        snapshot = getattr(self._engine, "planner_snapshot", None)
        if snapshot is None:
            return None
        return snapshot()

    # ------------------------------------------------------------------
    def health_probe(self, timeout: Optional[float] = 5.0) -> ProbeResult:
        """Run a canary inference through the slot, bounded by ``timeout``.

        A probe that times out reports unhealthy *and* restarts the
        slot, so the next probe exercises the replacement — the
        half-open handshake the circuit breaker builds on.
        """
        if self.probe_shape is None:
            return ProbeResult(
                ok=False, latency_seconds=0.0,
                error="no probe shape known yet (no batch seen, none configured)",
            )
        canary = np.zeros((1,) + self.probe_shape, dtype=np.float32)
        started = time.perf_counter()
        future = self.submit(canary, self.probe_timesteps)
        try:
            future.result(timeout)
        except Exception as error:  # noqa: BLE001 - probes report, never raise
            elapsed = time.perf_counter() - started
            if not future.done():
                self.restart()
                return ProbeResult(
                    ok=False, latency_seconds=elapsed,
                    error=f"probe timed out after {elapsed:.3f}s",
                )
            return ProbeResult(
                ok=False, latency_seconds=elapsed,
                error=f"{type(error).__name__}: {error}",
            )
        return ProbeResult(ok=True, latency_seconds=time.perf_counter() - started)

    async def health_probe_async(
        self, timeout: Optional[float] = 5.0
    ) -> ProbeResult:
        """:meth:`health_probe` off the event loop thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.health_probe, timeout)

    def shutdown(self) -> None:
        """Release the slot's thread (idempotent)."""
        self._executor.shutdown(wait=False)
