"""COO-native time-batched backend: one gather+scatter per layer.

:class:`EventBatchedEngine` merges the two fast paths the suite already
has — the time-batched schedule (one pass over the t-major ``(T*N, ...)``
stack, T-fold fewer layer dispatches) and the event-driven selection of
the sparse engine (compute scales with spikes, not plane size) — without
inheriting the per-step Python loop that makes the event engine lose
wall clock at low density.  A :class:`repro.snn.spikes.SpikeStream`
enters as one *stacked coordinate batch* (:meth:`SpikeStream.stacked`)
and its sparsity structure is carried across the layer graph alongside
the dense planes at three levels of detail:

* *exact coordinates* (stream input, COO pool outputs, sparse-neuron
  outputs) — conv/linear run the bit-exact row-subset kernels
  (:func:`repro.snn.engines.event.sparse_conv2d` with ``rows_only``,
  :func:`repro.snn.engines.event.sparse_linear` with ``rows``): one
  gather + one GEMM + one scatter covering all T timesteps;
* *active sites* (conv outputs) — the channel-collapsed superset of a
  conv output's nonzeros, which lets eval-mode BatchNorm fill the plane
  with its zero-input response and run the module's exact arithmetic
  only at touched sites, and licenses the sparse membrane update;
* *nonzero counts* (neuron outputs, pooled planes) — exact or bounded
  event counts that cost nothing to produce (the neuron already counts
  its spikes) and let the next conv reject the gather in O(1) without
  ever scanning the plane.

The count layer is what makes the backend safe at moderate density:
full-plane coordinate scans cost milliseconds at the sizes where dense
GEMM wins anyway, so the engine budgets them.  A conv first bounds its
active-window fraction from the carried count (``events x windows-per-
event / output rows``); only if the bound passes ``window_pregate``
does it enumerate windows, and only if the enumerated fraction passes
``gather_limit`` does it gather — otherwise it falls back to the dense
kernel having spent O(1) or O(events), not O(plane).

Every fast path is *bitwise identical* to the dense time-batched
reference: row-subset GEMMs reduce each output element with the same
summation the full GEMM uses (unlike the event engine's column-subset
shrink, which only matches up to float summation order), silent rows
come out exactly ``+0.0``, BN and pooling replicate the reference
kernels' exact op sequences at active sites, and the sparse membrane
update is gated to configurations where skipping zero-current sites
cannot change any value.  Logits, per-step outputs, spike counts and
recorded densities all match ``TimeBatchedEngine`` exactly; op billing
matches the event engine (performed ops) on layers that took a
coordinate path and the dense engines (full MACs) on layers that fell
back — ``LayerStats.backend`` records which.

Dense inputs (analog frames) keep the inherited GEMM path per layer, so
the engine never loses to ``batched`` by more than the O(1) checks; at
low input density the gathers shrink with the event count and the
backend wins outright — see ``benchmarks/test_engine_speedup.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, MaxPool2d
from repro.nn.module import Module
from repro.snn.dynamics import ResetMode, initial_membrane
from repro.snn.engines.base import (
    _conv_out_size,
    _dense_op_count,
    _effective_weight,
)
from repro.snn.engines.batched import TimeBatchedEngine
from repro.snn.engines.dense import dense_conv2d
from repro.snn.engines.event import (
    conv_active_windows,
    pooled_coords,
    sparse_conv2d,
    sparse_linear,
)
from repro.snn.neurons import IFNeuron
from repro.snn.spikes import SpikeStream, StepSpikes
from repro.snn.stats import LayerStats
from repro.tensor import Tensor


@dataclass(frozen=True)
class _ActiveSites:
    """Active-site metadata carried in place of exact coordinates.

    ``rows`` are the sorted flattened spatial sites ``b * OH * OW + oy *
    OW + ox`` (over the stacked ``(T*N, C, OH, OW)`` plane, channel
    axis excluded — a window touches all output channels at once) that
    a convolution actually computed (or that survived BN's site-local
    rewrite); ``background`` is the per-channel value every *other*
    site of the plane holds — exactly zero for a bias-free conv, the
    bias vector for a biased one, the zero-input response ``h0`` after
    eval BN.  A constant background is what licenses the sparse
    membrane update downstream: untouched sites of one channel all
    follow a single shared trajectory.
    """

    rows: np.ndarray
    background: np.ndarray


class EventBatchedEngine(TimeBatchedEngine):
    """Time-batched schedule with COO-native layer execution.

    See the module docstring for the dataflow.  ``density_threshold``
    gates the coordinate paths exactly like the event engine's: a plane
    whose nonzero fraction reaches it runs the inherited dense GEMM
    path (and bills dense MACs).  The class-level ``window_pregate``
    (O(1) bound on the active-window fraction before enumerating) and
    ``gather_limit`` (enumerated fraction above which one BLAS GEMM
    beats the row gather) encode this machine's measured crossover; all
    paths are bitwise identical to :class:`TimeBatchedEngine`, so the
    thresholds trade wall clock only.
    """

    name = "event-batched"

    #: Reject the conv gather in O(1) when ``events * windows-per-event``
    #: reaches this fraction of the output rows (the bound overcounts
    #: overlaps ~2x at low density, hence > ``gather_limit``).
    window_pregate = 0.75
    #: Row gather + subset GEMM beat one dense GEMM below roughly this
    #: active-row fraction (measured crossover ~0.3 on OpenBLAS).
    gather_limit = 0.3
    #: Build pooled planes in COO form below this input density.
    pool_coo_limit = 0.25

    def __init__(
        self, density_threshold: float = 0.6, profile_layers: bool = True
    ) -> None:
        super().__init__(profile_layers=profile_layers)
        if not 0.0 < density_threshold <= 1.0:
            raise ValueError("density_threshold must be in (0, 1]")
        self.density_threshold = density_threshold
        # Carried sparsity structure of live planes, keyed by array id;
        # the entries hold the plane itself so ids cannot be recycled
        # while registered.  ``_coords`` holds *exact* nonzero
        # coordinates; ``_sites`` the active-window superset of conv
        # outputs; ``_counts`` nonzero counts (exact flag) for planes
        # whose structure is unknown but whose magnitude is.
        self._coords: Dict[int, Tuple[np.ndarray, StepSpikes]] = {}
        self._sites: Dict[int, Tuple[np.ndarray, _ActiveSites]] = {}
        self._counts: Dict[int, Tuple[np.ndarray, int, bool]] = {}

    def _config(self) -> dict:
        config = super()._config()
        config["density_threshold"] = self.density_threshold
        return config

    # ------------------------------------------------------------------
    # Carried-structure registry
    # ------------------------------------------------------------------
    def _register_coords(self, plane: np.ndarray, step: StepSpikes) -> None:
        self._coords[id(plane)] = (plane, step)
        self._counts[id(plane)] = (plane, step.num_events, True)

    def _register_sites(self, plane: np.ndarray, sites: _ActiveSites) -> None:
        self._sites[id(plane)] = (plane, sites)

    def _register_count(self, plane: np.ndarray, count: int, exact: bool) -> None:
        self._counts[id(plane)] = (plane, int(count), exact)

    def _carried_coords(self, data: np.ndarray) -> Optional[StepSpikes]:
        entry = self._coords.get(id(data))
        return None if entry is None else entry[1]

    def _carried_count(self, data: np.ndarray) -> Optional[Tuple[int, bool]]:
        """``(nonzero count, is_exact)`` if carried; None when unknown."""
        entry = self._counts.get(id(data))
        return None if entry is None else (entry[1], entry[2])

    def _site_rows(self, data: np.ndarray) -> Optional[np.ndarray]:
        """Flattened spatial sites (channel-collapsed) of a 4D plane's
        possible nonzeros, from either registry; None when unknown."""
        entry = self._sites.get(id(data))
        if entry is not None:
            return entry[1].rows
        step = self._carried_coords(data)
        if step is not None and len(step.shape) == 4:
            w = step.shape[3]
            s = step.shape[2] * w
            return np.unique(
                step.coords[:, 0] * s + step.coords[:, 2] * w + step.coords[:, 3]
            )
        return None

    def _input_nonzero_of(self, data: np.ndarray) -> Optional[int]:
        # Exact carried counts make density recording free; bounds are
        # not exact, so those planes fall back to the batched engine's
        # shortcuts (neuron-emitted counts, constant-prefix scaling)
        # and only then to the profiler's scan.
        info = self._carried_count(data)
        if info is not None and info[1]:
            return info[0]
        return super()._input_nonzero_of(data)

    # ------------------------------------------------------------------
    def _stack_stream(self, stream: SpikeStream) -> np.ndarray:
        tiled = super()._stack_stream(stream)
        # The whole stream becomes one stacked coordinate batch: every
        # layer's gather covers all T timesteps in a single call.
        self._register_coords(tiled, stream.stacked())
        return tiled

    def _install(self, synapse_stats, neuron_stats) -> None:
        self._coords = {}
        self._sites = {}
        self._counts = {}
        super()._install(synapse_stats, neuron_stats)

    def _uninstall(self) -> None:
        super()._uninstall()
        self._coords = {}
        self._sites = {}
        self._counts = {}

    # ------------------------------------------------------------------
    # Synapse layers
    # ------------------------------------------------------------------
    def _coo_synapse(
        self,
        module: Module,
        data: np.ndarray,
        step: StepSpikes,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        register: bool = True,
    ) -> Tuple[np.ndarray, int, bool]:
        """Run a conv/linear from a coordinate batch.

        Returns ``(output, performed_ops, gathered)``; the output is
        bitwise identical to the dense kernel's either way.  For convs
        the enumerated active-window fraction decides between the
        row-subset gather and one dense GEMM (``gathered`` records
        which); performed ops are billed from the coordinates in both
        cases, and the active sites are registered for the downstream
        BN/neuron fast paths.  ``register=False`` skips registration
        (calibration trials whose outputs are discarded).
        """
        if isinstance(module, Conv2d):
            k, s_, p = module.kernel_size, module.stride, module.padding
            active_rows, entries = conv_active_windows(
                step.coords, data.shape, k, s_, p
            )
            performed = entries * module.out_channels
            oh = _conv_out_size(data.shape[2], k, s_, p)
            ow = _conv_out_size(data.shape[3], k, s_, p)
            n_rows = data.shape[0] * oh * ow
            if active_rows.size <= self.gather_limit * n_rows:
                out, _ = sparse_conv2d(
                    data,
                    weight,
                    bias,
                    s_,
                    p,
                    active_rows=active_rows,
                    performed=performed,
                    rows_only=True,
                )
                gathered = True
            else:
                out = dense_conv2d(data, weight, bias, s_, p)
                gathered = False
            if register:
                background = (
                    np.zeros(module.out_channels, dtype=out.dtype)
                    if bias is None
                    else np.asarray(bias, dtype=out.dtype)
                )
                self._register_sites(
                    out, _ActiveSites(rows=active_rows, background=background)
                )
                self._register_count(
                    out,
                    min(active_rows.size * module.out_channels, out.size),
                    exact=False,
                )
            return out, performed, gathered
        rows = np.unique(step.coords[:, 0])
        performed = step.num_events * weight.shape[0]
        out, _ = sparse_linear(data, weight, bias, performed=performed, rows=rows)
        return out, performed, True

    def _make_interceptor(self, module, stat, orig):
        gemm = super()._make_interceptor(module, stat, orig)
        is_conv = isinstance(module, Conv2d)

        def forward(x: Tensor) -> Tensor:
            data = x.data
            if id(data) in self._constant_arrays:
                stat.backend = "gemm"
                return gemm(x)
            info = self._carried_count(data)
            if info is None:
                # Unknown plane (flattened features, residual sums):
                # one cheap count decides; coordinates only if it pays.
                count, exact = int(np.count_nonzero(data)), True
            else:
                count, exact = info
            if count >= self.density_threshold * data.size:
                stat.backend = "gemm"
                return gemm(x)
            if is_conv:
                k, s_, p = module.kernel_size, module.stride, module.padding
                oh = _conv_out_size(data.shape[2], k, s_, p)
                ow = _conv_out_size(data.shape[3], k, s_, p)
                nwin = (1 + (k - 1) // s_) ** 2
                if count * nwin >= self.window_pregate * data.shape[0] * oh * ow:
                    # O(1) rejection: even the loosest bound on the
                    # active-window fraction says one GEMM wins.
                    stat.backend = "gemm"
                    return gemm(x)
            step = self._carried_coords(data)
            if step is None:
                coords = np.stack(np.nonzero(data), axis=1)
                step = StepSpikes(coords=coords, shape=data.shape)
            stat.dense_synaptic_ops += _dense_op_count(module, data.shape)
            weight = _effective_weight(module, self._weight_cache)
            bias = module.bias.data if module.bias is not None else None
            out, performed, gathered = self._coo_synapse(
                module, data, step, weight, bias
            )
            stat.synaptic_ops += performed
            stat.backend = "event-batched" if gathered else "gemm"
            return Tensor(out)

        return forward

    # ------------------------------------------------------------------
    # Stateless layers: BN at active sites, COO pooling
    # ------------------------------------------------------------------
    def _make_stateless_interceptor(
        self, module: Module
    ) -> Callable[[Tensor], Tensor]:
        base = super()._make_stateless_interceptor(module)
        if isinstance(module, BatchNorm2d):
            return self._make_bn_interceptor(module, base)
        return self._make_pool_interceptor(module, base)

    def _make_bn_interceptor(self, module, base):
        terms: List[Optional[Tuple[np.ndarray, ...]]] = [None]

        def forward(x: Tensor) -> Tensor:
            data = x.data
            if (
                module.training
                or data.ndim != 4
                or id(data) in self._constant_arrays
            ):
                return base(x)
            rows = self._site_rows(data)
            spatial = data.shape[2] * data.shape[3]
            if rows is None or 2 * rows.size >= data.shape[0] * spatial:
                return base(x)
            return Tensor(self._bn_at_sites(module, data, rows, terms))

        return forward

    def _bn_at_sites(self, module, data, rows, terms) -> np.ndarray:
        """Eval BN applied only at active sites, zero-response elsewhere.

        The background fill is the per-channel response to a zero input
        computed with the module's exact op sequence, so it is bitwise
        what the dense kernel produces at silent sites; active sites run
        that same sequence on their gathered values.  BN-fold thus
        costs ``O(active sites · C)`` instead of a full-plane pass.
        """
        if terms[0] is None:
            mu = module.running_mean
            inv = (module.running_var + module.eps) ** -0.5
            g = module.gamma.data
            b = module.beta.data
            h0 = ((np.zeros_like(mu) - mu) * inv) * g + b
            terms[0] = (mu, inv, g, b, h0)
        mu, inv, g, b, h0 = terms[0]
        n, c, h, w = data.shape
        s = h * w
        out = np.empty_like(data)
        flat = out.reshape(n, c, s)
        flat[:] = h0.reshape(1, c, 1)
        bi = rows // s
        sp = rows % s
        vals = data.reshape(n, c, s)[bi, :, sp]  # (active sites, C)
        flat[bi, :, sp] = ((vals - mu) * inv) * g + b
        # BN is site-local, so the active sites survive it verbatim —
        # with the zero response as the new constant background.  This
        # keeps the sparse membrane update alive across BN.
        self._register_sites(
            out, _ActiveSites(rows=rows, background=h0.astype(out.dtype, copy=False))
        )
        return out

    def _make_pool_interceptor(self, module, base):
        kernel, stride = module.kernel_size, module.stride

        def forward(x: Tensor) -> Tensor:
            data = x.data
            if id(data) in self._constant_arrays:
                return base(x)
            step = self._carried_coords(data)
            if (
                step is not None
                and data.ndim == 4
                and step.density < self.pool_coo_limit
            ):
                out = self._coo_pool(module, data, step)
                if out is not None:
                    return Tensor(out)
            result = base(x)
            rdata = result.data
            if id(rdata) in self._constant_arrays:
                return result
            if step is not None:
                # COO construction didn't apply, but the coordinates can
                # still map through non-overlapping windows for the
                # layers downstream.
                coords = pooled_coords(step, kernel, stride, rdata.shape)
                if coords is not None:
                    self._register_coords(
                        rdata,
                        StepSpikes(
                            coords=coords, shape=rdata.shape, scale=step.scale
                        ),
                    )
                    return result
            info = self._carried_count(data)
            if info is not None:
                # Pooling cannot create nonzeros: the input count bounds
                # the output count, which keeps the O(1) conv pregate
                # alive downstream with no scan.
                self._register_count(rdata, min(info[0], rdata.size), exact=False)
            return result

        return forward

    def _coo_pool(self, module, data, step) -> Optional[np.ndarray]:
        """Build the pooled plane directly in COO form, or None.

        Applies to non-overlapping pools of planes with exact carried
        coordinates and positive uniform amplitude, on dimensions the
        dense tiled kernel also handles (evenly divisible).  Max pooling
        scatters the amplitude at the mapped coordinates (the max over a
        window of ``{0, s}`` values is exactly ``s``); average pooling
        gathers the window taps in the dense kernel's tap order and
        replicates its summation sequence, so both are bitwise identical
        to the reference kernels.  The output's coordinates are
        registered, keeping the stream alive with no plane scan.
        """
        k, stride = module.kernel_size, module.stride
        n, c, h, w = data.shape
        if (
            k != stride
            or h % k
            or w % k
            or step.values is not None
            or step.scale <= 0
        ):
            return None
        out_shape = (n, c, h // k, w // k)
        coords = pooled_coords(step, k, stride, out_shape)
        if coords is None:
            return None
        out = np.zeros(out_shape, dtype=data.dtype)
        idx = tuple(coords.T)
        if isinstance(module, MaxPool2d):
            out[idx] = step.scale
            self._register_coords(
                out, StepSpikes(coords=coords, shape=out_shape, scale=step.scale)
            )
            return out
        if coords.shape[0]:
            bi, ci, oy, ox = idx
            taps = [
                data[bi, ci, oy * k + i, ox * k + j]
                for i in range(k)
                for j in range(k)
            ]
            if len(taps) == 1:
                acc = taps[0].copy()
            else:
                acc = taps[0] + taps[1]
                for tap in taps[2:]:
                    np.add(acc, tap, out=acc)
            vals = acc * np.asarray(1.0 / (k * k), dtype=acc.dtype)
            out[idx] = vals
        else:
            vals = np.zeros(0, dtype=data.dtype)
        self._register_coords(
            out, StepSpikes(coords=coords, shape=out_shape, values=vals)
        )
        return out

    # ------------------------------------------------------------------
    # Neuron layers
    # ------------------------------------------------------------------
    def _make_neuron_interceptor(
        self, module: IFNeuron, stat: LayerStats
    ) -> Callable[[Tensor], Tensor]:
        dense_step = super()._make_neuron_interceptor(module, stat)

        def forward(x: Tensor) -> Tensor:
            data = x.data
            entry = self._sites.get(id(data))
            if (
                entry is not None
                and module.v is None
                and module.reset == ResetMode.SUBTRACT
                and module._leak_fn() is None
            ):
                result = self._sparse_neuron(module, data, entry[1])
                if result is not None:
                    return result
            before = module.spike_count
            result = dense_step(x)
            # The dense step already counted its spikes, so the output's
            # exact nonzero count is free — enough for the next conv's
            # O(1) decision without a coordinate scan.
            self._register_count(
                result.data, int(module.spike_count - before), exact=True
            )
            return result

        return forward

    def _sparse_neuron(self, module, data, sites: _ActiveSites) -> Optional[Tensor]:
        """Membrane update via one shared trajectory per channel.

        Valid for leak-free IF neurons with subtract reset fed a plane
        that is a constant per-channel ``background`` everywhere except
        the carried active sites: every untouched site of channel ``c``
        receives the same input ``background[c]`` at every step, so its
        membrane follows one shared trajectory — computed once on a
        ``(C,)`` vector with the exact dense op sequence (integrate,
        compare, subtract-reset) and broadcast.  Only the sites a
        synapse actually touched (expanded across channels) are stepped
        individually, with their gathered inputs, using that same op
        sequence from the same uniform initial membrane.  Membrane,
        spikes and counters come out bitwise identical to dense
        stepping at ``O(touched sites · C · T)`` plus one broadcast
        fill, instead of ``O(plane · T)``.

        When the background trajectory never fires, the individually
        fired sites double as the output's exact coordinates, which
        re-enter the carried stream at no scan cost.
        """
        t = self._run_timesteps
        b = data.shape[0]
        if t < 1 or b % t or data.ndim != 4:
            return None
        n = b // t
        c = data.shape[1]
        hh, ww = data.shape[2], data.shape[3]
        s = hh * ww
        rows = sites.rows
        # Individual sites: the union over time of touched (sample,
        # spatial) pairs — a site diverges from the shared trajectory at
        # its first touch and must be tracked individually from then on
        # (stepping it individually from step 0 applies the identical
        # ops it would share before the touch, so tracking the union
        # from the start is bitwise equivalent and branch-free).
        mask = np.zeros(n * s, dtype=bool)
        mask[(rows // s) % n * s + rows % s] = True
        ind = np.flatnonzero(mask)
        if 2 * ind.size >= n * s:
            return None  # nearly every site diverges: dense is cheaper
        v0 = initial_membrane((1,), module.threshold, module.v_init_fraction,
                              dtype=data.dtype)[0]
        thr = np.asarray(module.threshold, dtype=data.dtype)
        bg = np.asarray(sites.background, dtype=data.dtype)
        # Shared background trajectory, exact dense op sequence on (C,).
        vbg = np.full(c, v0, dtype=data.dtype)
        pattern = np.empty((t, c), dtype=bool)
        for step in range(t):
            vbg += bg
            spiked_bg = vbg >= thr
            vbg -= spiked_bg * thr
            pattern[step] = spiked_bg
        # Individual sites, expanded across channels, stepped with their
        # gathered inputs.
        cells = (
            ((ind // s) * (c * s) + ind % s)[:, np.newaxis]
            + np.arange(c, dtype=np.int64) * s
        ).reshape(-1)
        xf = data.reshape(t, n * c * s)
        bg_fires = bool(pattern.any())
        # A silent background (the common case: the zero-input response
        # cannot climb to threshold) means the plane outside the
        # individual sites is exactly zero — calloc it instead of
        # broadcasting a fill every step.
        out = (np.empty if bg_fires else np.zeros)(data.shape, dtype=np.float32)
        o4 = out.reshape(t, n, c, s)
        of = out.reshape(t, n * c * s)
        vi = np.full(cells.size, v0, dtype=data.dtype)
        fired_parts: List[Tuple[int, np.ndarray]] = []
        spikes = 0
        bg_cells = n * s - ind.size  # background cells per channel
        for step in range(t):
            if bg_fires:
                o4[step] = (pattern[step] * thr)[np.newaxis, :, np.newaxis]
            vi += xf[step][cells]
            spiked = vi >= thr
            vi -= spiked * thr
            of[step][cells] = spiked * thr
            fired = cells[spiked]
            if fired.size:
                fired_parts.append((step, fired))
                spikes += int(fired.size)
        spikes += int(pattern.sum(dtype=np.int64)) * bg_cells
        v = np.empty((n, c, s), dtype=data.dtype)
        v[:] = vbg[np.newaxis, :, np.newaxis]
        v.reshape(-1)[cells] = vi
        module.v = v.reshape((n,) + data.shape[1:])
        module.spike_count += spikes
        module.neuron_steps += int(out.size)
        module.last_spikes = out[(t - 1) * n :] / module.threshold
        if not pattern.any():
            # Fired flat indices are the output's nonzeros — assemble
            # the stacked coordinates O(spikes), no plane scan.
            if fired_parts:
                cols = []
                for step, fired in fired_parts:
                    bi = step * n + fired // (c * s)
                    rem = fired % (c * s)
                    cols.append(
                        np.stack((bi, rem // s, (rem % s) // ww, rem % ww), axis=1)
                    )
                coords = np.concatenate(cols, axis=0)
            else:
                coords = np.zeros((0, 4), dtype=np.int64)
            self._register_coords(
                out,
                StepSpikes(
                    coords=coords, shape=out.shape, scale=float(module.threshold)
                ),
            )
        else:
            self._register_count(out, spikes, exact=True)
        return Tensor(out)
