"""Layer-sequential backend: one pass over a ``(T*N, ...)`` stack."""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import AvgPool2d, BatchNorm2d, Conv2d, MaxPool2d
from repro.nn.module import Module
from repro.snn.dynamics import initial_membrane, neuron_step
from repro.snn.engines.base import (
    LRUCache,
    SimulationEngine,
    WEIGHT_CACHE_CAPACITY,
    _dense_op_count,
    _effective_weight,
)
from repro.snn.engines.dense import dense_conv2d
from repro.snn.neurons import IFNeuron
from repro.snn.spikes import SpikeStream
from repro.snn.stats import LayerStats
from repro.tensor import Tensor, no_grad


class TimeBatchedEngine(SimulationEngine):
    """Layer-sequential backend: one pass over a ``(T*N, ...)`` stack.

    The direct-coded input is tiled once along the batch axis, so every
    stateless layer executes exactly once per run — conv/linear become
    a single GEMM covering all T timesteps — and only the stateful
    neuron layers iterate over the time axis, stepping the shared
    :func:`repro.snn.dynamics.neuron_step` on a per-run membrane buffer
    vectorised over ``(N, ...)``.  This is valid for any feed-forward
    module graph (chains, residual blocks): stateless layers are
    pointwise in the batch dimension, so reordering time inside them
    changes nothing, and neuron layers see their T inputs in exactly
    the order the dense engine would feed them.

    Arithmetic is the dense reference arithmetic — same kernels, same
    per-sample summation order — so logits match ``DenseEngine``
    exactly, and op accounting bills full dense MACs like the dense
    backend.  The win is wall clock: T-fold fewer Python layer
    dispatches, T-fold larger matmuls (better BLAS utilisation), one
    im2col per layer per run, and the constant input frame's convolution
    is computed once and re-tiled instead of recomputed T times (the
    software twin of the accelerator's frame-psum cache).  Per-step
    logits fall out of the explicit time axis for free, which makes
    accuracy-vs-timesteps sweeps the biggest beneficiary.
    """

    name = "batched"

    def __init__(self, profile_layers: bool = True) -> None:
        super().__init__(profile_layers=profile_layers)
        self._weight_cache = LRUCache(WEIGHT_CACHE_CAPACITY)
        # Arrays known to be T-fold tilings of an (N, ...) prefix, keyed
        # by id.  Strong references keep ids stable for the run's
        # duration.  Seeded with the tiled input; a synapse layer fed a
        # constant array computes its N-batch output once and re-tiles,
        # propagating constancy until a stateful layer breaks it.
        self._constant_arrays: Dict[int, np.ndarray] = {}
        # Arrays whose nonzero count is already known, keyed by id with
        # a weak reference plus the count.  The neuron interceptor pays
        # one count_nonzero per run for its spike accounting whether or
        # not profiling is on; registering the result here lets the
        # profiler answer the *next* layer's density for free instead
        # of re-scanning the same plane.  Weak on purpose: pinning every
        # activation until run end would defeat numpy's buffer reuse,
        # and the consumer reads the count while the plane is its live
        # input anyway.  The identity check at lookup makes a recycled
        # id (dead entry, new array) a harmless miss.
        self._known_nonzero: Dict[int, Tuple[object, int]] = {}
        self._run_timesteps = 0
        self._run_batch = 0
        self._stateless_modules: List[Module] = []

    def _share_caches(self, peer: "SimulationEngine") -> None:
        peer._weight_cache = self._weight_cache

    def bind(self, model: Module) -> "TimeBatchedEngine":
        super().bind(model)
        self._stateless_modules = [
            module
            for _, module in model.named_modules()
            if isinstance(module, (BatchNorm2d, AvgPool2d, MaxPool2d))
        ]
        return self

    # ------------------------------------------------------------------
    def _execute(
        self, x, timesteps: int, per_step: bool
    ) -> Tuple[np.ndarray, Optional[List[np.ndarray]]]:
        n = int(x.shape[0])
        self._run_timesteps = timesteps
        self._run_batch = n
        if isinstance(x, SpikeStream):
            tiled = self._stack_stream(x)
        else:
            tiled = self._tile_constant(x)
        with no_grad():
            out = self.model(Tensor(tiled)).data
        stepped = out.reshape((timesteps, n) + out.shape[1:])
        # Sequential cumulative sum over the time axis: identical float
        # summation order to the dense engine's ``total += logits``.
        cumulative = np.cumsum(stepped, axis=0)
        total = np.ascontiguousarray(cumulative[-1])
        outputs = None
        if per_step:
            outputs = [np.ascontiguousarray(cumulative[t]) for t in range(timesteps)]
        return total, outputs

    def _stack_stream(self, stream: SpikeStream) -> np.ndarray:
        """Materialise a COO stream as the engine's (T*N, ...) stack.

        A stream is genuinely time-varying: it densifies into the
        t-major stack with no constant-tiling tag, so every layer runs
        over the full stack.  The event-batched subclass overrides this
        to also register the stream's stacked coordinates, keeping the
        COO structure alive across the layer graph.
        """
        dense = stream.to_dense(np.float32)
        return np.ascontiguousarray(
            dense.reshape((self._run_timesteps * stream.batch_size,) + dense.shape[2:])
        )

    def _tile_constant(self, out: np.ndarray) -> np.ndarray:
        """Tile an (N, ...) array into the (T*N, ...) stack and mark it
        constant, so downstream stateless layers can keep computing on
        the N-batch prefix only."""
        tiled = np.ascontiguousarray(
            np.broadcast_to(out, (self._run_timesteps,) + out.shape)
        ).reshape((self._run_timesteps * out.shape[0],) + out.shape[1:])
        self._constant_arrays[id(tiled)] = tiled
        return tiled

    # ------------------------------------------------------------------
    def _install(self, synapse_stats, neuron_stats) -> None:
        # The weight cache survives runs (entries self-invalidate on
        # parameter rebinds); constant-tiling tags and known nonzero
        # counts are run-scoped.
        self._constant_arrays = {}
        self._known_nonzero = {}
        super()._install(synapse_stats, neuron_stats)
        for module in self._stateless_modules:
            interceptor = self._make_stateless_interceptor(module)
            self._set_forward(module, interceptor)

    def _uninstall(self) -> None:
        super()._uninstall()
        self._constant_arrays = {}
        self._known_nonzero = {}

    def _input_nonzero_of(self, data: np.ndarray) -> Optional[int]:
        # A plane emitted by a neuron layer carries the count its spike
        # accounting already computed; a constant T-fold tiling needs
        # only its (N, ...) prefix scanned, scaled by T.  Both are exact
        # — identical numbers to a full count_nonzero pass — so billing
        # and the adaptive engine's drift decisions are unchanged.
        known = self._known_nonzero.get(id(data))
        if known is not None and known[0]() is data:
            return known[1]
        if id(data) in self._constant_arrays and self._run_timesteps > 0:
            prefix = int(np.count_nonzero(data[: self._run_batch]))
            return prefix * self._run_timesteps
        return None

    # ------------------------------------------------------------------
    def _make_interceptor(self, module, stat, orig):
        is_conv = isinstance(module, Conv2d)

        def forward(x: Tensor) -> Tensor:
            data = x.data
            ops = _dense_op_count(module, data.shape)
            stat.synaptic_ops += ops
            stat.dense_synaptic_ops += ops
            weight = _effective_weight(module, self._weight_cache)
            bias = module.bias.data if module.bias is not None else None
            constant = id(data) in self._constant_arrays
            work = data[: self._run_batch] if constant else data
            if is_conv:
                out = dense_conv2d(work, weight, bias, module.stride, module.padding)
            else:
                out = work @ weight.T
                if bias is not None:
                    out += bias
            if constant:
                out = self._tile_constant(out)
            return Tensor(out)

        return forward

    def _make_stateless_interceptor(
        self, module: Module
    ) -> Callable[[Tensor], Tensor]:
        """Constancy propagation + lean eval-BN through stateless layers.

        A stateless layer fed a known T-fold tiling computes its output
        on the N-batch prefix once and re-tiles; any other input runs
        once over the full (T*N, ...) stack.  Eval-mode BatchNorm runs
        the module's exact arithmetic directly on the ndarray — the
        same op sequence, so results are bitwise identical to the dense
        engine's, without the autograd wrappers.  Training-mode
        BatchNorm depends on whole-batch statistics, so it always falls
        back to the module's own forward on the full stack.
        """
        orig = module.forward
        is_bn = isinstance(module, BatchNorm2d)
        bn_terms: List[Optional[Tuple[np.ndarray, ...]]] = [None]

        def forward(x: Tensor) -> Tensor:
            data = x.data
            if module.training:
                return orig(x)
            constant = id(data) in self._constant_arrays
            work = data[: self._run_batch] if constant else data
            if is_bn:
                if bn_terms[0] is None:
                    shape = (1, module.num_features, 1, 1)
                    mu = module.running_mean.reshape(shape)
                    inv = (module.running_var.reshape(shape) + module.eps) ** -0.5
                    bn_terms[0] = (
                        mu,
                        inv,
                        module.gamma.data.reshape(shape),
                        module.beta.data.reshape(shape),
                    )
                mu, inv, g, b = bn_terms[0]
                out = ((work - mu) * inv) * g + b
            elif constant:
                out = orig(Tensor(work)).data
            else:
                return orig(x)
            return Tensor(self._tile_constant(out) if constant else out)

        return forward

    def _make_neuron_interceptor(
        self, module: IFNeuron, stat: LayerStats
    ) -> Callable[[Tensor], Tensor]:
        def forward(x: Tensor) -> Tensor:
            data = x.data
            t = self._run_timesteps
            n = data.shape[0] // t
            stacked = data.reshape((t, n) + data.shape[1:])
            leak_fn = module._leak_fn()
            # The membrane buffer is private to this run (reset to None
            # at run start), so stepping integrates in place; the spike
            # plane is scaled by the threshold as it is stored (one
            # fused pass per step instead of an extra (T*N, ...)
            # multiply at the end).
            v = module.v
            if v is None:
                v = initial_membrane(
                    stacked.shape[1:],
                    module.threshold,
                    module.v_init_fraction,
                    dtype=data.dtype,
                )
            out = np.empty(stacked.shape, dtype=np.float32)
            for step in range(t):
                v, spiked = neuron_step(
                    v,
                    stacked[step],
                    module.threshold,
                    reset=module.reset,
                    leak_fn=leak_fn,
                    in_place=True,
                )
                np.multiply(
                    spiked, module.threshold, out=out[step], casting="unsafe"
                )
            module.v = v
            # Spikes are exactly 0 or threshold (> 0), so one count over
            # the whole (T, N, ...) plane replaces T small reductions.
            spikes = int(np.count_nonzero(out))
            module.spike_count += spikes
            module.neuron_steps += int(out.size)
            module.last_spikes = out[-1] / module.threshold
            emitted = out.reshape(data.shape)
            self._known_nonzero[id(emitted)] = (weakref.ref(emitted), spikes)
            return Tensor(emitted)

        return forward
