"""The reference backend: full dense recompute every timestep."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.snn.engines.base import SimulationEngine, _dense_op_count
from repro.tensor import Tensor
from repro.tensor.functional import im2col


def dense_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Plain im2col convolution (the reference kernel, no sparsity scans)."""
    n = x.shape[0]
    c_out, _, k, _ = weight.shape
    cols, oh, ow = im2col(x, k, stride, padding)
    out = cols @ weight.reshape(c_out, -1).T
    if bias is not None:
        out += bias
    return np.ascontiguousarray(out.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2))


class DenseEngine(SimulationEngine):
    """Reference backend: full dense recompute every timestep."""

    name = "dense"

    def _make_interceptor(self, module, stat, orig):
        def forward(x: Tensor) -> Tensor:
            ops = _dense_op_count(module, x.shape)
            stat.synaptic_ops += ops
            stat.dense_synaptic_ops += ops
            return orig(x)

        return forward
