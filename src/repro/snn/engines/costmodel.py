"""Analytic per-backend cost model fitted from profiler measurements.

Racing every kernel on every new (shape, T, density-bucket) key is how
:class:`~repro.snn.engines.auto.AutoEngine` learned its plans through
PR 8 — accurate, but the race itself costs several kernel executions
per layer, which is exactly the cold-start the serving layer eats
whenever a tenant's traffic mix shifts.  The fix mirrors the paper's
mapper: measurements accumulate into an *analytic* model, and once the
model is trustworthy the engine predicts instead of re-measuring.

The model is deliberately simple — per backend, wall clock is affine in
the work the backend performs::

    predicted_ms(backend, ops) = slope_ms[backend] * ops + intercept_ms[backend]

where ``ops`` is the backend's natural work unit: the dense MAC count
for the GEMM path, and ``density * dense_macs`` (events times fan-out)
for the sparse kernels.  Affine-in-ops captures what actually moves the
GEMM/gather crossover — layer geometry scales both terms, density
scales only the sparse one — while staying fittable from a handful of
observations by least squares, with no iterative optimiser.  Slopes and
intercepts are clamped non-negative so a noisy fit can never predict
negative time.

Observations come from the calibration races the auto engine already
runs (every race yields one ``(backend, ops, ms)`` triple per kernel)
and from :meth:`repro.snn.stats.RunStats.profile_records` rows of
planned runs, so the model keeps learning from production traffic.
Models persist beside the engine's plan file via
:mod:`repro.utils.io` and degrade exactly like plans do: a corrupt,
truncated or foreign file logs one warning and yields a fresh empty
model — the engine simply keeps racing until enough observations
accumulate again.
"""

from __future__ import annotations

import json
import logging
import math
import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.utils.io import atomic_write_json

logger = logging.getLogger(__name__)

#: On-disk format tag for persisted cost models.
COST_MODEL_FORMAT = "repro-cost-model/v1"

#: Backends the model prices.  "gemm" is billed in dense MACs; the two
#: sparse kernels are billed in performed (event x fan-out) ops.
COST_BACKENDS = ("gemm", "event", "event-batched")

#: Observations a backend needs before its fit is trusted.  One raced
#: calibration contributes one observation per raced layer, so a deep
#: network crosses this in a single cold start while the 2-3 layer toy
#: models in the test suite never flip behaviour by accident.
MIN_OBSERVATIONS = 6

#: Observations retained per backend (FIFO).  Enough to span several
#: models and density regimes; bounded so a long-lived serving process
#: cannot grow the model file without limit.
MAX_OBSERVATIONS = 256


def cost_model_path_for(plan_path: str) -> str:
    """The sibling file a plan file's cost model persists to.

    ``plans.json`` -> ``plans.cost.json``: alongside the plans (same
    directory, same stem) but a separate document, so a corrupt model
    never takes the plans down with it and vice versa.
    """
    stem, ext = os.path.splitext(str(plan_path))
    return f"{stem}.cost{ext or '.json'}"


def sparse_feature_ops(dense_ops: float, density: float) -> float:
    """The sparse kernels' work feature: events times fan-out.

    Both sparse paths (per-plane gather, COO row-subset) do work
    proportional to the nonzero fraction of the dense MAC count; the
    same expression is used for fitting and for prediction so the
    learned slope absorbs any constant factor between this estimate and
    the kernels' exact billed ops.
    """
    return float(dense_ops) * min(max(float(density), 0.0), 1.0)


class CostModel:
    """Per-backend affine wall-clock model, fitted by least squares.

    Thread-safe: the serving layer's worker threads observe and refit
    concurrently with ``/metrics`` snapshots.  ``fit()`` is cheap (one
    2-column ``lstsq`` per backend) and runs automatically whenever a
    prediction or snapshot needs coefficients newer than the data.
    """

    def __init__(self, min_observations: int = MIN_OBSERVATIONS) -> None:
        if min_observations < 2:
            raise ValueError("min_observations must be >= 2")
        self.min_observations = int(min_observations)
        self._lock = threading.Lock()
        # backend -> list of (ops, ms) observations, oldest first.
        self._observations: Dict[str, List[Tuple[float, float]]] = {
            backend: [] for backend in COST_BACKENDS
        }
        # backend -> (slope_ms_per_op, intercept_ms), refit lazily.
        self._coefficients: Dict[str, Tuple[float, float]] = {}
        self._stale = False

    # ------------------------------------------------------------------
    # Observation intake
    # ------------------------------------------------------------------
    def observe(self, backend: str, ops: float, ms: float) -> None:
        """Record one measured ``(ops, wall-clock ms)`` sample."""
        if backend not in self._observations:
            return  # "stepped" neuron rows and unknown backends: not priced
        if not (math.isfinite(ops) and math.isfinite(ms)) or ms < 0 or ops < 0:
            return
        with self._lock:
            samples = self._observations[backend]
            samples.append((float(ops), float(ms)))
            if len(samples) > MAX_OBSERVATIONS:
                del samples[: len(samples) - MAX_OBSERVATIONS]
            self._stale = True

    def observe_many(self, observations: Iterable[Tuple[str, float, float]]) -> None:
        """Record ``(backend, ops, ms)`` triples (shard-run payloads)."""
        for backend, ops, ms in observations:
            self.observe(backend, ops, ms)

    def observe_records(self, records: Iterable[dict]) -> None:
        """Learn from :meth:`RunStats.profile_records` rows of a planned run.

        A GEMM row's ``synaptic_ops`` is its dense MAC count; a sparse
        row's is its performed ops — both already the model's work unit
        for that backend.  Neuron rows (backend ``"stepped"``) and rows
        without wall clock are skipped.
        """
        for row in records:
            backend = row.get("backend")
            if backend not in COST_BACKENDS:
                continue
            ms = float(row.get("wall_clock_ms", 0.0))
            ops = float(row.get("synaptic_ops", 0))
            if ms <= 0.0 or ops <= 0.0:
                continue
            self.observe(backend, ops, ms)

    # ------------------------------------------------------------------
    # Fitting and prediction
    # ------------------------------------------------------------------
    def _fit_locked(self) -> None:
        self._coefficients = {}
        for backend, samples in self._observations.items():
            usable = [s for s in samples if s[1] > 0.0]
            if len(usable) < self.min_observations:
                continue
            ops = np.array([s[0] for s in usable], dtype=np.float64)
            ms = np.array([s[1] for s in usable], dtype=np.float64)
            if np.unique(ops).size < 2:
                continue  # no spread: slope and intercept are confounded
            # Minimise *relative* residuals (each design row scaled by
            # 1/ms): kernel timings span orders of magnitude across
            # layers, and plain least squares would let the big layers
            # set the intercept — mispricing exactly the small
            # near-crossover layers the plan decisions hinge on.
            design = np.stack([ops / ms, 1.0 / ms], axis=1)
            (slope, intercept), *_ = np.linalg.lstsq(
                design, np.ones_like(ms), rcond=None
            )
            # Time never decreases with work and never goes negative; a
            # noisy fit that says otherwise is clamped rather than
            # allowed to invert a crossover.
            self._coefficients[backend] = (max(float(slope), 0.0), max(float(intercept), 0.0))
        self._stale = False

    def fit(self) -> None:
        """Refit all backend coefficients from the current observations."""
        with self._lock:
            self._fit_locked()

    def _coefficients_for(self, backend: str) -> Optional[Tuple[float, float]]:
        with self._lock:
            if self._stale:
                self._fit_locked()
            return self._coefficients.get(backend)

    def ready(self, backend: str) -> bool:
        """Whether ``backend`` has a trustworthy fit."""
        return self._coefficients_for(backend) is not None

    def plan_ready(self) -> bool:
        """Whether the model can compile/re-plan a full per-layer plan:
        it must price the GEMM incumbent and the bit-exact COO
        challenger (the pair a mid-run swap is allowed between)."""
        return self.ready("gemm") and self.ready("event-batched")

    def predict_ms(self, backend: str, ops: float) -> Optional[float]:
        """Predicted wall clock (ms) for ``ops`` work, or None if unfit."""
        coefficients = self._coefficients_for(backend)
        if coefficients is None:
            return None
        slope, intercept = coefficients
        return slope * max(float(ops), 0.0) + intercept

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def residuals(self) -> Dict[str, dict]:
        """Per-backend fit quality over the retained observations.

        ``rms_ms`` is the root-mean-square absolute residual;
        ``mean_abs_pct`` the mean relative error — the number the
        serving layer's ``/metrics`` exposes so an operator can see
        whether predicted plans are still tracking reality.
        """
        out: Dict[str, dict] = {}
        with self._lock:
            if self._stale:
                self._fit_locked()
            for backend, coefficients in self._coefficients.items():
                slope, intercept = coefficients
                samples = self._observations[backend]
                errors = [
                    (slope * ops + intercept) - ms for ops, ms in samples
                ]
                rel = [
                    abs(e) / ms for e, (_, ms) in zip(errors, samples) if ms > 0
                ]
                out[backend] = {
                    "observations": len(samples),
                    "rms_ms": round(
                        math.sqrt(sum(e * e for e in errors) / len(errors)), 6
                    ),
                    "mean_abs_pct": round(
                        100.0 * sum(rel) / len(rel), 3
                    ) if rel else 0.0,
                }
        return out

    def snapshot(self) -> dict:
        """JSON-ready summary for ``/metrics`` and ``--profile``."""
        with self._lock:
            if self._stale:
                self._fit_locked()
            coefficients = {
                backend: {
                    "slope_ms_per_op": pair[0],
                    "intercept_ms": pair[1],
                }
                for backend, pair in self._coefficients.items()
            }
            observations = {
                backend: len(samples)
                for backend, samples in self._observations.items()
            }
        return {
            "plan_ready": self.plan_ready(),
            "observations": observations,
            "coefficients": coefficients,
            "residuals": self.residuals(),
        }

    def __len__(self) -> int:
        with self._lock:
            return sum(len(s) for s in self._observations.values())

    # ------------------------------------------------------------------
    # Persistence (mirrors the plan file's corrupt-tolerant contract)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        with self._lock:
            return {
                "format": COST_MODEL_FORMAT,
                "min_observations": self.min_observations,
                "backends": {
                    backend: [[ops, ms] for ops, ms in samples]
                    for backend, samples in self._observations.items()
                    if samples
                },
            }

    @classmethod
    def from_payload(cls, payload: dict) -> "CostModel":
        if not isinstance(payload, dict) or payload.get("format") != COST_MODEL_FORMAT:
            found = (
                payload.get("format") if isinstance(payload, dict)
                else type(payload).__name__
            )
            raise ValueError(
                f"not a cost-model document (format {found!r}, expected "
                f"{COST_MODEL_FORMAT!r})"
            )
        model = cls(
            min_observations=int(payload.get("min_observations", MIN_OBSERVATIONS))
        )
        for backend, samples in payload.get("backends", {}).items():
            for entry in samples:
                ops, ms = entry
                model.observe(backend, float(ops), float(ms))
        return model

    def save(self, path: str) -> None:
        """Atomically persist the observations (coefficients refit on load)."""
        atomic_write_json(path, self.to_payload())

    @classmethod
    def load(cls, path: str, min_observations: int = MIN_OBSERVATIONS) -> "CostModel":
        """Load a persisted model; any failure yields a fresh empty one.

        The model file is a cache of measurements, never ground truth —
        corrupt, truncated or foreign documents log one warning and the
        engine simply races until observations accumulate again, exactly
        mirroring ``AutoEngine.load_plans`` hardening.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            model = cls.from_payload(payload)
        except FileNotFoundError:
            return cls(min_observations=min_observations)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                ValueError, TypeError, KeyError) as error:
            logger.warning(
                "ignoring unreadable cost-model file %s (%s); the engine "
                "will race kernels and rewrite it", path, error
            )
            return cls(min_observations=min_observations)
        model.min_observations = int(min_observations)
        return model
