"""Learning-rate schedules.

Schedulers mutate ``optimizer.lr`` when :meth:`step` is called at the end
of each epoch.
"""

from __future__ import annotations

import math

from repro.optim.optimizers import Optimizer


class StepSchedule:
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineSchedule:
    """Cosine annealing from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch = min(self.epoch + 1, self.total_epochs)
        frac = self.epoch / self.total_epochs
        self.optimizer.lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * frac)
        )
