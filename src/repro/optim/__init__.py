"""Optimisers and learning-rate schedulers for the training substrate."""

from repro.optim.optimizers import SGD, Adam, Optimizer, clip_grad_norm
from repro.optim.schedulers import CosineSchedule, StepSchedule

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "StepSchedule", "CosineSchedule"]
