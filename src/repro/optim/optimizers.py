"""First-order optimisers (SGD with momentum, Adam).

These mirror the reference semantics of the corresponding torch
optimisers (decoupled enough to train the paper's networks):
SGD supports classic/Nesterov momentum and L2 weight decay; Adam uses
bias-corrected moment estimates.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser holding a flat parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, vel in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = grad + self.momentum * vel if self.nesterov else vel
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
