"""Name-based model registry used by examples and the experiment harness."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.nn.module import Module

_REGISTRY: Dict[str, Callable[..., Module]] = {}


def register_model(name: str):
    """Decorator registering a builder under ``name``."""

    def wrap(builder: Callable[..., Module]) -> Callable[..., Module]:
        if name in _REGISTRY:
            raise ValueError(f"model {name!r} already registered")
        _REGISTRY[name] = builder
        return builder

    return wrap


def build_model(name: str, **kwargs) -> Module:
    """Instantiate a registered model by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name](**kwargs)


def list_models() -> List[str]:
    return sorted(_REGISTRY)


# Register the paper's two networks.
from repro.models.resnet import resnet18  # noqa: E402
from repro.models.vgg import vgg11  # noqa: E402

register_model("resnet18")(resnet18)
register_model("vgg11")(vgg11)
