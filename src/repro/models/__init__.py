"""Model zoo: the networks the paper evaluates (ResNet-18, VGG-11).

Both builders accept a ``width`` multiplier.  ``width=1.0`` reproduces
the paper's full-size graphs (used by the hardware latency/mapping
experiments, which only need layer geometry); smaller widths train in
seconds-to-minutes on numpy and are used for accuracy experiments.
"""

from repro.models.resnet import BasicBlock, ResNet, resnet18
from repro.models.vgg import VGG, vgg11
from repro.models.registry import build_model, register_model, list_models

__all__ = [
    "ResNet",
    "BasicBlock",
    "resnet18",
    "VGG",
    "vgg11",
    "build_model",
    "register_model",
    "list_models",
]
