"""CIFAR-style ResNet-18 with conversion-friendly activations.

Architecture (He et al. 2016, CIFAR variant, as used by the paper):
a 3x3 stem at 32x32 with 64 channels, then four stages of two basic
blocks each with [64, 128, 256, 512] channels and strides [1, 2, 2, 2],
global average pooling, and a 512->10 classifier — 17 convolutions + 1
FC, matching the paper's Table I layer groups (5 convs @32x32/64ch,
4 @16x16/128, 4 @8x8/256, 4 @4x4/512, FC 512x10).

Activations are built through a factory so the same graph can be
instantiated with plain ReLU (baseline ANN), QuantReLU (fine-tuning
stage) or swapped in-place for IF neurons (SNN inference); see
:func:`repro.snn.convert.convert_to_snn`.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro import nn
from repro.tensor import Tensor

ActivationFactory = Callable[[], nn.Module]


def _scaled(channels: int, width: float) -> int:
    """Scale a channel count, keeping it a positive multiple of 4."""
    return max(4, int(round(channels * width / 4)) * 4)


def _make_conv(
    in_ch: int,
    out_ch: int,
    kernel: int,
    stride: int,
    padding: int,
    quantize: bool,
    rng: np.random.Generator,
) -> nn.Module:
    cls = nn.QuantConv2d if quantize else nn.Conv2d
    return cls(in_ch, out_ch, kernel, stride=stride, padding=padding, bias=False, rng=rng)


class BasicBlock(nn.Module):
    """Two 3x3 convolutions with identity/projection shortcut."""

    expansion = 1

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        activation: ActivationFactory,
        quantize: bool,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.conv1 = _make_conv(in_channels, out_channels, 3, stride, 1, quantize, rng)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.act1 = activation()
        self.conv2 = _make_conv(out_channels, out_channels, 3, 1, 1, quantize, rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.act2 = activation()
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                _make_conv(in_channels, out_channels, 1, stride, 0, quantize, rng),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.act1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = out + self.shortcut(x)
        return self.act2(out)


class ResNet(nn.Module):
    """CIFAR ResNet; ``blocks_per_stage=[2,2,2,2]`` gives ResNet-18."""

    def __init__(
        self,
        blocks_per_stage=(2, 2, 2, 2),
        num_classes: int = 10,
        width: float = 1.0,
        in_channels: int = 3,
        activation: Optional[ActivationFactory] = None,
        quantize: bool = False,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        activation = activation or nn.ReLU
        self.width = width
        channels = [_scaled(c, width) for c in (64, 128, 256, 512)]

        self.conv1 = _make_conv(in_channels, channels[0], 3, 1, 1, quantize, rng)
        self.bn1 = nn.BatchNorm2d(channels[0])
        self.act1 = activation()

        stages = []
        in_ch = channels[0]
        for stage_idx, (out_ch, blocks) in enumerate(zip(channels, blocks_per_stage)):
            stride = 1 if stage_idx == 0 else 2
            layers = []
            for block_idx in range(blocks):
                layers.append(
                    BasicBlock(
                        in_ch,
                        out_ch,
                        stride if block_idx == 0 else 1,
                        activation,
                        quantize,
                        rng,
                    )
                )
                in_ch = out_ch
            stages.append(nn.Sequential(*layers))
        self.layer1, self.layer2, self.layer3, self.layer4 = stages

        self.pool = nn.GlobalAvgPool2d()
        fc_cls = nn.QuantLinear if quantize else nn.Linear
        self.fc = fc_cls(channels[3], num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.act1(self.bn1(self.conv1(x)))
        out = self.layer1(out)
        out = self.layer2(out)
        out = self.layer3(out)
        out = self.layer4(out)
        out = self.pool(out)
        return self.fc(out)


def resnet18(
    num_classes: int = 10,
    width: float = 1.0,
    activation: Optional[ActivationFactory] = None,
    quantize: bool = False,
    seed: int = 0,
) -> ResNet:
    """Build the CIFAR ResNet-18 used throughout the paper."""
    return ResNet(
        blocks_per_stage=(2, 2, 2, 2),
        num_classes=num_classes,
        width=width,
        activation=activation,
        quantize=quantize,
        seed=seed,
    )
