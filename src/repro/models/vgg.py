"""CIFAR-style VGG-11 with conversion-friendly activations.

VGG-11 configuration 'A' (Simonyan & Zisserman), CIFAR variant:
8 convolutions in blocks [64], [128], [256,256], [512,512], [512,512]
with 2x2 max-pool between blocks, then a 512->10 classifier.  This
matches the paper's Table I VGG rows (1 conv @32x32/64, 1 @16x16/128,
2 @8x8/256, 3+... @4x4/512, FC 512x10).

As with :mod:`repro.models.resnet`, the activation is a factory so the
graph can carry ReLU, QuantReLU or (after conversion) IF neurons.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro import nn
from repro.tensor import Tensor

ActivationFactory = Callable[[], nn.Module]

# 'M' denotes 2x2 max-pool; numbers are conv output channels.
VGG11_CONFIG: Sequence[Union[int, str]] = (64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M")


def _scaled(channels: int, width: float) -> int:
    return max(4, int(round(channels * width / 4)) * 4)


class VGG(nn.Module):
    """VGG feature extractor + linear classifier."""

    def __init__(
        self,
        config: Sequence[Union[int, str]] = VGG11_CONFIG,
        num_classes: int = 10,
        width: float = 1.0,
        in_channels: int = 3,
        activation: Optional[ActivationFactory] = None,
        quantize: bool = False,
        pool: str = "avg",
        seed: int = 0,
    ) -> None:
        super().__init__()
        if pool not in ("avg", "max"):
            raise ValueError("pool must be 'avg' or 'max'")
        rng = np.random.default_rng(seed)
        activation = activation or nn.ReLU
        self.width = width
        self.pool = pool
        conv_cls = nn.QuantConv2d if quantize else nn.Conv2d
        # Average pooling by default: max-pool does not commute with
        # spike-rate averaging (stepwise max over {0, theta} inflates
        # rates as T grows), so conversion-targeted VGGs use avg-pool
        # (Rueckauer et al. 2017); it is also what the accelerator's
        # adder-only datapath can execute.
        pool_cls = nn.AvgPool2d if pool == "avg" else nn.MaxPool2d

        layers: List[nn.Module] = []
        ch = in_channels
        for item in config:
            if item == "M":
                layers.append(pool_cls(2))
                continue
            out_ch = _scaled(int(item), width)
            layers.append(conv_cls(ch, out_ch, 3, stride=1, padding=1, bias=False, rng=rng))
            layers.append(nn.BatchNorm2d(out_ch))
            layers.append(activation())
            ch = out_ch
        self.features = nn.Sequential(*layers)
        self.flatten = nn.Flatten()
        fc_cls = nn.QuantLinear if quantize else nn.Linear
        self.fc = fc_cls(ch, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.features(x)
        out = self.flatten(out)
        return self.fc(out)


def vgg11(
    num_classes: int = 10,
    width: float = 1.0,
    activation: Optional[ActivationFactory] = None,
    quantize: bool = False,
    pool: str = "avg",
    seed: int = 0,
) -> VGG:
    """Build the CIFAR VGG-11 used throughout the paper."""
    return VGG(
        config=VGG11_CONFIG,
        num_classes=num_classes,
        width=width,
        activation=activation,
        quantize=quantize,
        pool=pool,
        seed=seed,
    )
