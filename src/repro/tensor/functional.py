"""Neural-network functional primitives with custom autograd kernels.

Convolution and pooling use explicit im2col/col2im kernels with
hand-written backward passes (much faster than composing elementwise
autograd ops, and numerically identical).

Layout convention: NCHW, matching the paper's hardware mapping where a
kernel's rows are streamed into the PE row-by-row.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor, _unbroadcast


# ----------------------------------------------------------------------
# im2col / col2im
# ----------------------------------------------------------------------
def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


# Sliding-window gather plans keyed by (C, H, W, K, stride, padding).
# A plan is the flat tap-index array into one padded sample plus the
# output spatial size; networks reuse a handful of shapes thousands of
# times (every timestep of every layer), so the index arithmetic is
# paid once per shape instead of once per call.  Bounded LRU so
# pathological shape churn (e.g. a DSE sweep) cannot grow it unboundedly
# while the hot working set survives; plans are immutable, so one lock
# around the OrderedDict bookkeeping makes lookups safe under the
# engines' thread-based batch sharding.
_PLAN_CACHE: "OrderedDict[Tuple[int, int, int, int, int, int], Tuple[np.ndarray, int, int]]" = OrderedDict()
_PLAN_CACHE_CAPACITY = 64
_PLAN_CACHE_LOCK = threading.Lock()


def _im2col_plan(
    c: int, h: int, w: int, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Cached flat gather indices mapping a padded (C, HP, WP) sample to
    its im2col rows, with the output spatial size."""
    key = (c, h, w, kernel, stride, padding)
    with _PLAN_CACHE_LOCK:
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            _PLAN_CACHE.move_to_end(key)
            return plan
    oh = _conv_output_size(h, kernel, stride, padding)
    ow = _conv_output_size(w, kernel, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    # Offsets of the C*K*K taps of one window into the flat sample.
    taps = (
        np.arange(c)[:, None, None] * (hp * wp)
        + np.arange(kernel)[None, :, None] * wp
        + np.arange(kernel)[None, None, :]
    ).reshape(-1)
    # Top-left corner of each of the OH*OW windows.
    starts = (
        np.arange(oh)[:, None] * (stride * wp) + np.arange(ow)[None, :] * stride
    ).reshape(-1)
    indices = (starts[:, None] + taps[None, :]).astype(np.intp).reshape(-1)
    plan = (indices, oh, ow)
    with _PLAN_CACHE_LOCK:
        _PLAN_CACHE[key] = plan
        _PLAN_CACHE.move_to_end(key)
        while len(_PLAN_CACHE) > _PLAN_CACHE_CAPACITY:
            _PLAN_CACHE.popitem(last=False)
    return plan


# Reusable zero-padded workspaces keyed by the full call signature
# (N, C, H, W, padding, dtype) so a buffer is only ever reused by calls
# that overwrite exactly the same interior — the border is written once
# (zeros) and stays zero for the buffer's lifetime.  np.pad would
# re-allocate, re-zero and walk its per-axis edge machinery on every
# unfold.  Callers never see the buffer: im2col's gather copies out of
# it immediately.  The cache is *per thread* (threading.local): two
# sharding threads unfolding the same layer shape concurrently must not
# scribble over one shared workspace.  Each thread's dict is a bounded
# LRU, and large arrays skip the cache entirely (the per-call overhead
# is amortised there and pinning multi-hundred-MB activations at module
# scope is not).
class _PadWorkspaces(threading.local):
    def __init__(self) -> None:
        self.buffers: "OrderedDict[Tuple[int, int, int, int, int, str], np.ndarray]" = OrderedDict()


_PAD_CACHE = _PadWorkspaces()
_PAD_CACHE_CAPACITY = 16
_PAD_CACHE_MAX_BYTES = 16 * 1024 * 1024


def _padded_workspace(x: np.ndarray, padding: int) -> np.ndarray:
    n, c, h, w = x.shape
    hp, wp = h + 2 * padding, w + 2 * padding
    if n * c * hp * wp * x.itemsize > _PAD_CACHE_MAX_BYTES:
        return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    key = (n, c, h, w, padding, x.dtype.str)
    buffers = _PAD_CACHE.buffers
    buf = buffers.get(key)
    if buf is None:
        buf = np.zeros((n, c, hp, wp), dtype=x.dtype)
        buffers[key] = buf
    buffers.move_to_end(key)
    while len(buffers) > _PAD_CACHE_CAPACITY:
        buffers.popitem(last=False)
    buf[:, :, padding:-padding, padding:-padding] = x
    return buf


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold ``x`` (N, C, H, W) into columns (N*OH*OW, C*K*K).

    Returns the column matrix together with the output spatial size.
    The gather runs off a cached index plan (one per distinct
    (shape, kernel, stride, padding)) and produces a fresh contiguous
    matrix directly — ready for GEMM with no extra copy.
    """
    n, c, h, w = x.shape
    indices, oh, ow = _im2col_plan(c, h, w, kernel, stride, padding)
    if padding > 0:
        x = _padded_workspace(x, padding)
    flat = x.reshape(n, -1)
    cols = np.take(flat, indices, axis=1).reshape(n * oh * ow, c * kernel * kernel)
    return cols, oh, ow


def im2col_rows(
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    rows: np.ndarray,
) -> Tuple[np.ndarray, int, int]:
    """Gather only the requested im2col rows — the event-driven unfold.

    ``rows`` indexes the ``(N*OH*OW)`` window axis of the full column
    matrix (e.g. the active windows from
    :func:`repro.snn.engines.event.conv_active_windows`); the result's
    row *i* is bitwise-identical to row ``rows[i]`` of
    :func:`im2col` — same cached index plan, same padded workspace,
    one fancy-indexed gather — but the cost is
    ``O(len(rows) * C*K*K)`` instead of ``O(N*OH*OW * C*K*K)``.  This
    is what lets a sparse convolution pay only for windows that carry
    at least one spike while every computed row (and hence the GEMM it
    feeds) stays bitwise equal to the dense reference.
    """
    n, c, h, w = x.shape
    indices, oh, ow = _im2col_plan(c, h, w, kernel, stride, padding)
    if padding > 0:
        x = _padded_workspace(x, padding)
    flat = x.reshape(n, -1)
    windows = indices.reshape(oh * ow, c * kernel * kernel)
    rows = np.asarray(rows, dtype=np.int64)
    # One flat gather instead of a two-axis fancy index: fold the sample
    # offset into the window indices and take from the raveled
    # workspace.  Same elements, same order — bitwise identical — but
    # measurably faster at the low row fractions this path is gated to.
    itype = np.int32 if flat.size < 2**31 else np.int64
    gidx = windows.astype(itype)[rows % (oh * ow)]
    gidx += (rows // (oh * ow)).astype(itype)[:, np.newaxis] * itype(flat.shape[1])
    sub = np.take(flat.reshape(-1), gidx)
    return sub, oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back onto an image, accumulating overlaps (im2col adjoint)."""
    n, c, h, w = x_shape
    oh = _conv_output_size(h, kernel, stride, padding)
    ow = _conv_output_size(w, kernel, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    x_padded = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    for ki in range(kernel):
        h_stop = ki + stride * oh
        for kj in range(kernel):
            w_stop = kj + stride * ow
            x_padded[:, :, ki:h_stop:stride, kj:w_stop:stride] += cols6[:, :, ki, kj]
    if padding > 0:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution (cross-correlation), NCHW.

    ``weight`` has shape (C_out, C_in, K, K). Supports autograd w.r.t.
    ``x``, ``weight`` and ``bias``.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input {c_in} vs weight {c_in_w}")
    if kh != kw:
        raise ValueError("only square kernels are supported")
    kernel = kh

    cols, oh, ow = im2col(x.data, kernel, stride, padding)
    w_mat = weight.data.reshape(c_out, -1)
    out = cols @ w_mat.T  # (N*OH*OW, C_out)
    if bias is not None:
        out = out + bias.data
    out_data = out.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray) -> None:
        g_mat = g.transpose(0, 2, 3, 1).reshape(-1, c_out)
        if weight.requires_grad:
            gw = (g_mat.T @ cols).reshape(weight.shape)
            weight._accumulate(gw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(g_mat.sum(axis=0))
        if x.requires_grad:
            g_cols = g_mat @ w_mat
            gx = col2im(g_cols, x.shape, kernel, stride, padding)
            x._accumulate(gx)

    return Tensor._make(out_data, parents, backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias``; weight shape (out, in)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def _tap_views(data: np.ndarray, kernel: int) -> list:
    """The k*k strided tap views of a (N, C, H, W) array tiled by ``kernel``."""
    return [
        data[:, :, i::kernel, j::kernel]
        for i in range(kernel)
        for j in range(kernel)
    ]


def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows.

    The tiled no-grad case (stride == kernel, spatial dims divisible —
    i.e. every inference/SNN-engine call) reduces k*k strided views
    with ``np.maximum`` — roughly an order of magnitude faster than the
    window gather.  The im2col route remains for training, where the
    backward pass needs the per-window argmax.
    """
    stride = stride or kernel
    n, c, h, w = x.shape
    if (
        stride == kernel
        and h % kernel == 0
        and w % kernel == 0
        and not x.requires_grad
    ):
        taps = _tap_views(x.data, kernel)
        out = np.maximum(taps[0], taps[1]) if len(taps) > 1 else taps[0].copy()
        for tap in taps[2:]:
            np.maximum(out, tap, out=out)
        return Tensor(out)

    cols, oh, ow = im2col(
        x.data.reshape(n * c, 1, h, w), kernel, stride, padding=0
    )  # (N*C*OH*OW, K*K)
    argmax = cols.argmax(axis=1)
    out_flat = cols[np.arange(cols.shape[0]), argmax]
    out_data = out_flat.reshape(n, c, oh, ow)

    def backward(g: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g_flat = g.reshape(-1)
        g_cols = np.zeros_like(cols)
        g_cols[np.arange(cols.shape[0]), argmax] = g_flat
        gx = col2im(g_cols, (n * c, 1, h, w), kernel, stride, padding=0)
        x._accumulate(gx.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling (tiled fast path sums strided views, with a
    strided-scatter backward; strided/ragged windows use im2col)."""
    stride = stride or kernel
    n, c, h, w = x.shape
    if stride == kernel and h % kernel == 0 and w % kernel == 0:
        taps = _tap_views(x.data, kernel)
        acc = taps[0] + taps[1] if len(taps) > 1 else taps[0].copy()
        for tap in taps[2:]:
            np.add(acc, tap, out=acc)
        inv = 1.0 / (kernel * kernel)
        if np.issubdtype(acc.dtype, np.integer):
            out_data = acc * inv  # promote, matching cols.mean on ints
        else:
            out_data = acc * np.asarray(inv, dtype=acc.dtype)

        def backward_tiled(g: np.ndarray) -> None:
            if not x.requires_grad:
                return
            gk = g * inv
            gx = np.empty((n, c, h, w), dtype=gk.dtype)
            for i in range(kernel):
                for j in range(kernel):
                    gx[:, :, i::kernel, j::kernel] = gk
            x._accumulate(gx)

        return Tensor._make(out_data, (x,), backward_tiled)

    cols, oh, ow = im2col(x.data.reshape(n * c, 1, h, w), kernel, stride, padding=0)
    out_data = cols.mean(axis=1).reshape(n, c, oh, ow)
    scale = 1.0 / (kernel * kernel)

    def backward(g: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g_cols = np.repeat(g.reshape(-1, 1), kernel * kernel, axis=1) * scale
        gx = col2im(g_cols, (n * c, 1, h, w), kernel, stride, padding=0)
        x._accumulate(gx.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dimensions, keeping (N, C)."""
    return x.mean(axis=(2, 3))


# ----------------------------------------------------------------------
# Losses and classifiers
# ----------------------------------------------------------------------
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    shifted = x - shift
    logsumexp = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - logsumexp


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits (N, C) and integer labels (N,)."""
    targets = np.asarray(targets)
    n = logits.shape[0]
    logp = log_softmax(logits, axis=-1)
    picked_data = logp.data[np.arange(n), targets]
    out_data = np.float32(-picked_data.mean())

    def backward(g: np.ndarray) -> None:
        if not logp.requires_grad:
            return
        grad = np.zeros_like(logp.data)
        grad[np.arange(n), targets] = -1.0 / n
        logp._accumulate(grad * g)

    return Tensor._make(np.asarray(out_data), (logp,), backward)


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    pred = np.asarray(logits.data).argmax(axis=-1)
    return float((pred == np.asarray(targets)).mean())


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity in eval mode."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    return x * Tensor(mask)
