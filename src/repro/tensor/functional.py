"""Neural-network functional primitives with custom autograd kernels.

Convolution and pooling use explicit im2col/col2im kernels with
hand-written backward passes (much faster than composing elementwise
autograd ops, and numerically identical).

Layout convention: NCHW, matching the paper's hardware mapping where a
kernel's rows are streamed into the PE row-by-row.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor, _unbroadcast


# ----------------------------------------------------------------------
# im2col / col2im
# ----------------------------------------------------------------------
def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold ``x`` (N, C, H, W) into columns (N*OH*OW, C*K*K).

    Returns the column matrix together with the output spatial size.
    """
    n, c, h, w = x.shape
    oh = _conv_output_size(h, kernel, stride, padding)
    ow = _conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    # Strided sliding-window view: (N, C, K, K, OH, OW)
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kernel, kernel, oh, ow),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )
    cols = windows.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kernel * kernel)
    return np.ascontiguousarray(cols), oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back onto an image, accumulating overlaps (im2col adjoint)."""
    n, c, h, w = x_shape
    oh = _conv_output_size(h, kernel, stride, padding)
    ow = _conv_output_size(w, kernel, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    x_padded = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    for ki in range(kernel):
        h_stop = ki + stride * oh
        for kj in range(kernel):
            w_stop = kj + stride * ow
            x_padded[:, :, ki:h_stop:stride, kj:w_stop:stride] += cols6[:, :, ki, kj]
    if padding > 0:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution (cross-correlation), NCHW.

    ``weight`` has shape (C_out, C_in, K, K). Supports autograd w.r.t.
    ``x``, ``weight`` and ``bias``.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input {c_in} vs weight {c_in_w}")
    if kh != kw:
        raise ValueError("only square kernels are supported")
    kernel = kh

    cols, oh, ow = im2col(x.data, kernel, stride, padding)
    w_mat = weight.data.reshape(c_out, -1)
    out = cols @ w_mat.T  # (N*OH*OW, C_out)
    if bias is not None:
        out = out + bias.data
    out_data = out.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray) -> None:
        g_mat = g.transpose(0, 2, 3, 1).reshape(-1, c_out)
        if weight.requires_grad:
            gw = (g_mat.T @ cols).reshape(weight.shape)
            weight._accumulate(gw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(g_mat.sum(axis=0))
        if x.requires_grad:
            g_cols = g_mat @ w_mat
            gx = col2im(g_cols, x.shape, kernel, stride, padding)
            x._accumulate(gx)

    return Tensor._make(out_data, parents, backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias``; weight shape (out, in)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    cols, oh, ow = im2col(
        x.data.reshape(n * c, 1, h, w), kernel, stride, padding=0
    )  # (N*C*OH*OW, K*K)
    argmax = cols.argmax(axis=1)
    out_flat = cols[np.arange(cols.shape[0]), argmax]
    out_data = out_flat.reshape(n, c, oh, ow)

    def backward(g: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g_flat = g.reshape(-1)
        g_cols = np.zeros_like(cols)
        g_cols[np.arange(cols.shape[0]), argmax] = g_flat
        gx = col2im(g_cols, (n * c, 1, h, w), kernel, stride, padding=0)
        x._accumulate(gx.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling."""
    stride = stride or kernel
    n, c, h, w = x.shape
    cols, oh, ow = im2col(x.data.reshape(n * c, 1, h, w), kernel, stride, padding=0)
    out_data = cols.mean(axis=1).reshape(n, c, oh, ow)
    scale = 1.0 / (kernel * kernel)

    def backward(g: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g_cols = np.repeat(g.reshape(-1, 1), kernel * kernel, axis=1) * scale
        gx = col2im(g_cols, (n * c, 1, h, w), kernel, stride, padding=0)
        x._accumulate(gx.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dimensions, keeping (N, C)."""
    return x.mean(axis=(2, 3))


# ----------------------------------------------------------------------
# Losses and classifiers
# ----------------------------------------------------------------------
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    shifted = x - shift
    logsumexp = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - logsumexp


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits (N, C) and integer labels (N,)."""
    targets = np.asarray(targets)
    n = logits.shape[0]
    logp = log_softmax(logits, axis=-1)
    picked_data = logp.data[np.arange(n), targets]
    out_data = np.float32(-picked_data.mean())

    def backward(g: np.ndarray) -> None:
        if not logp.requires_grad:
            return
        grad = np.zeros_like(logp.data)
        grad[np.arange(n), targets] = -1.0 / n
        logp._accumulate(grad * g)

    return Tensor._make(np.asarray(out_data), (logp,), backward)


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    pred = np.asarray(logits.data).argmax(axis=-1)
    return float((pred == np.asarray(targets)).mean())


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity in eval mode."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    return x * Tensor(mask)
