"""Minimal-but-complete autograd tensor engine on top of numpy.

This package is the training substrate for the reproduction: the paper
trains ResNet-18 / VGG-11 in a standard deep-learning framework; offline
we provide the equivalent machinery (reverse-mode autodiff, broadcasting,
im2col convolutions, pooling, batch normalisation) implemented from
scratch on numpy.

Public API
----------
``Tensor``
    The autograd-enabled n-d array.
``no_grad``
    Context manager disabling graph construction (inference mode).
Functional ops live in :mod:`repro.tensor.functional`.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional"]
