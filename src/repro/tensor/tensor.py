"""Reverse-mode automatic differentiation over numpy arrays.

The design follows the classic tape-free dynamic-graph approach: every
``Tensor`` produced by an operation keeps references to its parents and a
closure that maps the output gradient to parent gradients.  Calling
:meth:`Tensor.backward` topologically sorts the graph and accumulates
gradients into ``Tensor.grad`` (a plain numpy array).

Only float arrays participate in differentiation; integer tensors are
allowed but are treated as constants.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

Number = Union[int, float]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]

# Grad mode is per-thread: the simulation engines run inference shards
# on worker threads, and one thread leaving its no_grad block must not
# re-enable (or keep disabled) graph construction for the others.
_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return True when autograd graph construction is active (per thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables autograd graph construction.

    Inside the context, operations on tensors produce result tensors with
    ``requires_grad=False`` and no parent links, mirroring
    ``torch.no_grad``.  The switch is thread-local, so concurrent
    inference threads cannot toggle each other's grad mode.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Broadcasting may have added leading axes and/or stretched size-1 axes;
    the gradient of a broadcast is the sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away the extra leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    elif arr.dtype == np.float64:
        arr = arr.astype(np.float32)
    return arr


class Tensor:
    """An n-dimensional array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array. float64 inputs are
        downcast to float32 (the engine's working precision).
    requires_grad:
        When True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")
    __array_priority__ = 100.0  # numpy defers binary ops to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_part = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_part})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(parents)
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        if requires:
            return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)
        return Tensor(data)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = _as_array(grad).astype(self.data.dtype, copy=False)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        # Topological order via iterative DFS (avoids recursion limits on
        # deep networks such as ResNet-18 unrolled over timesteps).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        # Each op's backward closure accumulates directly into its
        # parents' ``.grad``; processing in reverse topological order
        # guarantees a node's ``.grad`` is complete before its own
        # backward closure runs.
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other_t.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(g, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other_t.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(g * self.data, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other_t)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return self * other_t ** -1.0

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) * self ** -1.0

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other_t.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    self._accumulate(np.outer(g, other_t.data) if self.data.ndim == 2 else g * other_t.data)
                else:
                    self._accumulate(_unbroadcast(g @ other_t.data.swapaxes(-1, -2), self.shape))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    other_t._accumulate(np.outer(self.data, g))
                else:
                    other_t._accumulate(_unbroadcast(self.data.swapaxes(-1, -2) @ g, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable, return plain Tensors)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data > _as_array(other))

    def __ge__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data >= _as_array(other))

    def __lt__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data < _as_array(other))

    def __le__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data <= _as_array(other))

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out_data = self.data.reshape(shape)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        axes_t = axes if axes else tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes_t)
        out_data = self.data.transpose(axes_t)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, g)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two axes symmetrically by ``padding``."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        out_data = np.pad(self.data, pad_width)
        sl = (Ellipsis, slice(padding, -padding), slice(padding, -padding))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g[sl])

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = g
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centred = self - mu
        out = (centred * centred).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = g
            out = out_data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
                out = np.expand_dims(out, axis=axis)
            mask = (self.data == out).astype(self.data.dtype)
            # Split the gradient across ties, mirroring torch semantics.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * grad / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def clip(self, low: Number, high: Number) -> "Tensor":
        """Clamp with a straight-through interior gradient (0 outside)."""
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return Tensor._make(out_data, (self,), backward)

    def floor_ste(self) -> "Tensor":
        """Floor with a straight-through estimator gradient (identity)."""
        out_data = np.floor(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g)

        return Tensor._make(out_data, (self,), backward)

    def round_ste(self) -> "Tensor":
        """Round-to-nearest with a straight-through estimator gradient."""
        out_data = np.round(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * sign)

        return Tensor._make(out_data, (self,), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(start, stop)
                t._accumulate(g[tuple(sl)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new axis."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        parts = np.moveaxis(g, axis, 0)
        for t, part in zip(tensors, parts):
            if t.requires_grad:
                t._accumulate(part)

    return Tensor._make(out_data, tensors, backward)


def where(condition: ArrayLike, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise select; ``condition`` is a constant."""
    cond = _as_array(condition).astype(bool)
    a_t = a if isinstance(a, Tensor) else Tensor(a)
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    out_data = np.where(cond, a_t.data, b_t.data)

    def backward(g: np.ndarray) -> None:
        if a_t.requires_grad:
            a_t._accumulate(_unbroadcast(g * cond, a_t.shape))
        if b_t.requires_grad:
            b_t._accumulate(_unbroadcast(g * ~cond, b_t.shape))

    return Tensor._make(out_data, (a_t, b_t), backward)
