"""Command-line entry point: regenerate any paper artefact.

Usage::

    python -m repro.cli tab1            # Table I latency rows
    python -m repro.cli tab2 tab3 tab4  # several at once
    python -m repro.cli asic
    python -m repro.cli fig7 --epochs 4 --train 800   # trains a model
    python -m repro.cli dse             # design-space exploration
    python -m repro.cli all --skip-training

    # resumable campaigns (parameter grids with atomic per-point records)
    python -m repro.cli campaign faults --out runs/faults
    python -m repro.cli campaign dse --out runs/dse --workers 4 --mode auto

    # robust async inference serving (micro-batching, load shedding,
    # circuit breaking, graceful SIGTERM drain)
    python -m repro.cli serve --port 8080 --timesteps 8 --p99-budget-ms 200

Training-backed artefacts (fig6-fig9) take minutes on the numpy
substrate; hardware tables are instant.  A ``campaign`` writes one JSON
record per grid point under ``--out`` and, re-invoked after a kill,
completes only the missing points (exit status 3 marks a run stopped
early by ``--max-points``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.eval import (
    accuracy_vs_timesteps_experiment,
    asic_projection_experiment,
    render_table,
    spike_rate_experiment,
    table1_experiment,
    table2_experiment,
    table3_experiment,
    table4_experiment,
)
from repro.eval.experiments import INPUT_FORMATS
from repro.snn.engines import ENGINES
from repro.snn.engines.sharding import SHARD_MODES

# argparse `choices` stays in lockstep with the engine registry and the
# sharding substrate list, so a bad --engine/--shard-mode value dies at
# the parser with the valid choices spelled out instead of surfacing as
# a traceback from deep inside the engine factory.
ENGINE_CHOICES = tuple(sorted(set(ENGINES)))

HARDWARE_ARTEFACTS = ("tab1", "tab2", "tab3", "tab4", "asic", "dse")
TRAINING_ARTEFACTS = ("fig6", "fig7", "fig8", "fig9")
ALL_ARTEFACTS = TRAINING_ARTEFACTS + HARDWARE_ARTEFACTS


def _print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def _run_tab1(args) -> None:
    _print_header("Table I: layer-wise latency (ResNet-18 / VGG-11, PYNQ-Z2)")
    result = table1_experiment(timesteps=args.timesteps)
    for name, rows in result.items():
        print(f"\n{name}:")
        print(render_table(rows, ["label", "count", "output_size", "latency_ms"]))


def _run_tab2(args) -> None:
    _print_header("Table II: latency vs kernel size")
    print(render_table(table2_experiment(), ["layer", "output_size", "latency_ms", "kernel_cycles"]))


def _run_tab3(args) -> None:
    _print_header("Table III: FPGA resource utilisation")
    print(render_table(table3_experiment(), ["parameter", "utilized", "available", "percentage"]))


def _run_tab4(args) -> None:
    _print_header("Table IV: comparison with prior art")
    result = table4_experiment()
    print(
        render_table(
            result["rows"],
            ["paper", "platform", "pes", "clock_mhz", "gops", "gops_per_pe",
             "gops_per_watt", "dsp", "gops_per_dsp"],
        )
    )
    print(f"\nPE-efficiency gain:  {result['pe_efficiency_gain']:.2f}x")
    print(f"DSP-efficiency gain: {result['dsp_efficiency_gain']:.2f}x")


def _run_asic(args) -> None:
    _print_header("ASIC projection (TSMC 40 nm, 500 MHz)")
    report = asic_projection_experiment()
    print(
        f"{report.gops:.1f} GOPS, {report.area_mm2:.2f} mm^2, "
        f"{report.power_watts:.3f} W ({report.gops_per_watt:.1f} GOPS/W)"
    )


def _run_dse(args) -> None:
    from repro.hw.dse import DesignSpaceExplorer, SweepSpec, paper_design_point

    _print_header("Design-space exploration (PE array / BN lanes / clock)")
    explorer = DesignSpaceExplorer()
    points = explorer.sweep(SweepSpec())
    feasible = [p for p in points if p.fits]
    front = explorer.pareto_front(points)
    rows = [
        {
            "design": p.label,
            "gops": p.gops,
            "gops_per_watt": p.gops_per_watt,
            "gops_per_dsp": p.gops_per_dsp,
            "luts": p.luts,
            "brams": p.brams,
            "pareto": "*" if p in front else "",
        }
        for p in sorted(feasible, key=lambda p: -p.gops)[: args.top]
    ]
    print(render_table(rows, ["design", "gops", "gops_per_watt", "gops_per_dsp", "luts", "brams", "pareto"]))
    paper = paper_design_point()
    print(
        f"\npaper's design point: {paper.label} -> {paper.gops} GOPS, "
        f"{paper.gops_per_watt} GOPS/W (feasible: {paper.fits})"
    )
    print(f"{len(feasible)}/{len(points)} candidates fit the PYNQ-Z2.")


def _curve_and_rates(model_name: str, args):
    from repro.data import SyntheticCIFAR

    dataset = SyntheticCIFAR(
        num_train=args.train, num_test=args.test, noise=1.0,
        class_overlap=0.55, seed=args.seed,
    )
    curve = accuracy_vs_timesteps_experiment(
        model_name,
        dataset=dataset,
        width=args.width,
        max_timesteps=args.max_timesteps,
        ann_epochs=args.epochs,
        finetune_epochs=max(1, args.epochs - 2),
        seed=args.seed,
        engine=args.engine,
        workers=args.workers,
        shard_mode=args.shard_mode,
    )
    return dataset, curve


def _print_profile(curve, args) -> None:
    """With --profile: per-layer wall-clock/density table of the last run."""
    if not getattr(args, "profile", False):
        return
    snn = curve.result.snn if curve.result is not None else None
    stats = snn.last_run_stats if snn is not None else None
    if stats is None:
        return
    print("\nper-layer profile (last evaluation batch):")
    print(stats.profile_table())
    planner = getattr(snn.engine, "planner_snapshot", None)
    if planner is None:
        return
    snapshot = planner()
    model = snapshot["cost_model"]
    print(
        "planner: {} plan(s) cached; {} calibration(s), {} re-plan(s), "
        "{} warm start(s); cost model {}".format(
            len(snapshot["plans"]),
            snapshot["calibration_runs"],
            snapshot["replans_triggered"],
            snapshot["warm_starts"],
            "ready" if model["plan_ready"] else "not fitted yet",
        )
    )
    for backend, residual in sorted(model.get("residuals", {}).items()):
        print(
            "  {:<14} {:>4} obs  rms {:.3f} ms  mean |err| {:.1f}%".format(
                backend,
                residual["observations"],
                residual["rms_ms"],
                residual["mean_abs_pct"],
            )
        )


def _run_fig7(args) -> None:
    _print_header("Fig. 7: ResNet-18 accuracy vs timesteps")
    _, curve = _curve_and_rates("resnet18", args)
    _print_curve(curve)
    _print_profile(curve, args)


def _run_fig9(args) -> None:
    _print_header("Fig. 9: VGG-11 accuracy vs timesteps")
    _, curve = _curve_and_rates("vgg11", args)
    _print_curve(curve)
    _print_profile(curve, args)


def _run_fig6(args) -> None:
    _print_header("Fig. 6: ResNet-18 per-layer spike rates")
    dataset, curve = _curve_and_rates("resnet18", args)
    stats = spike_rate_experiment(
        curve, dataset, timesteps=8, input_format=args.input_format
    )
    if args.input_format == "events":
        print("input: rate-encoded COO spike stream (event-driven mode)")
    print(stats.layer_table())
    _print_profile(curve, args)


def _run_fig8(args) -> None:
    _print_header("Fig. 8: VGG-11 per-layer spike rates")
    dataset, curve = _curve_and_rates("vgg11", args)
    stats = spike_rate_experiment(
        curve, dataset, timesteps=8, input_format=args.input_format
    )
    if args.input_format == "events":
        print("input: rate-encoded COO spike stream (event-driven mode)")
    print(stats.layer_table())
    _print_profile(curve, args)


def _print_curve(curve) -> None:
    print(f"ANN accuracy:       {curve.ann_accuracy:.4f}")
    print(f"quantised accuracy: {curve.quant_accuracy:.4f}")
    print(f"SNN accuracy (T=8): {curve.per_step_accuracy[7]:.4f}")
    print("accuracy vs T: " + " ".join(f"{a:.3f}" for a in curve.per_step_accuracy))
    if curve.timesteps_to_match_quant is not None:
        print(f"matches the quantised ANN at T={curve.timesteps_to_match_quant}")


# ----------------------------------------------------------------------
# campaign subcommand: resumable parameter-grid runs
# ----------------------------------------------------------------------

CAMPAIGN_KINDS = ("faults", "dse")

#: Exit status when --max-points stopped the run before the grid was
#: complete — lets CI's kill-and-resume smoke distinguish "interrupted
#: as requested" from success (0) and real errors (!= 0, != 3).
EXIT_CAMPAIGN_INCOMPLETE = 3


def _parse_float_list(text: str) -> List[float]:
    values = [float(v) for v in text.split(",") if v.strip()]
    if not values:
        raise argparse.ArgumentTypeError("expected a comma-separated list of numbers")
    return values


def _parse_int_list(text: str) -> List[int]:
    values = [int(v) for v in text.split(",") if v.strip()]
    if not values:
        raise argparse.ArgumentTypeError("expected a comma-separated list of integers")
    return values


def build_campaign_parser() -> argparse.ArgumentParser:
    from repro.eval.campaign import CAMPAIGN_MODES

    parser = argparse.ArgumentParser(
        prog="repro.cli campaign",
        description="Run a resumable parameter-grid campaign: one atomic "
        "JSON record per point under --out; re-invoking after a kill "
        "completes only the missing points.",
    )
    parser.add_argument("kind", choices=CAMPAIGN_KINDS,
                        help="faults: weight-memory bit-error sweep on a "
                        "trained VGG-11; dse: architecture design-space grid")
    parser.add_argument("--out", required=True, help="campaign directory")
    parser.add_argument("--name", default="",
                        help="campaign name (defaults to the kind)")
    parser.add_argument("--seed", type=int, default=0)
    # faults grid + model pipeline
    parser.add_argument("--rates", type=_parse_float_list,
                        default=[0.0, 1e-4, 1e-3, 1e-2],
                        help="comma-separated bit-error rates (faults)")
    parser.add_argument("--trials", type=int, default=2,
                        help="seeded trials per bit-error rate (faults)")
    parser.add_argument("--train", type=int, default=600)
    parser.add_argument("--test", type=int, default=200)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--timesteps", type=int, default=8)
    parser.add_argument("--width", type=float, default=0.125)
    # dse grid
    parser.add_argument("--pe", type=_parse_int_list, default=[4, 8, 16],
                        help="square PE-array sizes (dse)")
    parser.add_argument("--bn-lanes", type=_parse_int_list, default=[8, 16, 32],
                        dest="bn_lanes", help="BN-lane counts (dse)")
    parser.add_argument("--clock", type=_parse_float_list,
                        default=[50.0, 100.0, 150.0, 200.0],
                        help="clock frequencies in MHz (dse)")
    # execution / robustness knobs
    parser.add_argument("--max-points", type=int, default=None, dest="max_points",
                        help="stop after N missing points (kill simulation; "
                        f"exits {EXIT_CAMPAIGN_INCOMPLETE} if the grid is "
                        "left incomplete)")
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts per point per substrate")
    parser.add_argument("--point-timeout", type=float, default=None,
                        dest="point_timeout",
                        help="per-point wall-clock deadline in seconds")
    parser.add_argument("--backoff", type=float, default=0.05,
                        help="base retry backoff in seconds")
    parser.add_argument("--workers", type=int, default=1,
                        help="points evaluated concurrently")
    parser.add_argument("--mode", choices=CAMPAIGN_MODES, default="serial",
                        help="execution substrate for --workers > 1")
    return parser


def _campaign_faults(args):
    """Fault-sweep campaign: grid + point_fn over a trained, mapped net."""
    from repro.data import SyntheticCIFAR
    from repro.eval.campaign import CampaignSpec
    from repro.hw import map_network
    from repro.hw.accelerator import SpikingInferenceAccelerator
    from repro.hw.faults import fault_trial
    from repro.pipeline import TrainConfig, run_conversion_pipeline

    ds = SyntheticCIFAR(
        num_train=args.train, num_test=args.test, noise=1.0,
        class_overlap=0.55, seed=args.seed,
    )
    print("training + converting VGG-11 (shared across all points)...")
    result = run_conversion_pipeline(
        "vgg11",
        ds,
        width=args.width,
        levels=2,
        timesteps=args.timesteps,
        max_timesteps=args.timesteps,
        ann_config=TrainConfig(epochs=args.epochs),
        finetune_config=TrainConfig(epochs=max(1, args.epochs - 1), lr=5e-4),
        seed=args.seed,
    )
    mapped = map_network(result.snn.model, calibration_input=ds.train_x)
    baseline = SpikingInferenceAccelerator(mapped).accuracy(
        ds.test_x, ds.test_y, timesteps=args.timesteps
    )
    spec = CampaignSpec(
        name=args.name or "faults",
        grid={
            "bit_error_rate": list(args.rates),
            "trial": list(range(args.trials)),
        },
        seed=args.seed,
        metadata={
            "model": "vgg11",
            "timesteps": args.timesteps,
            "train": args.train,
            "test": args.test,
            "epochs": args.epochs,
            "width": args.width,
        },
    )

    def point_fn(params, seed):
        report = fault_trial(
            mapped,
            ds.test_x,
            ds.test_y,
            bit_error_rate=params["bit_error_rate"],
            seed=seed,
            timesteps=args.timesteps,
            baseline_accuracy=baseline,
        )
        return report.to_payload()

    columns = ["bit_error_rate", "trial", "flipped_bits", "faulty_accuracy",
               "accuracy_drop"]
    return spec, point_fn, columns


def _campaign_dse(args):
    """DSE campaign: one architecture candidate per grid point."""
    import dataclasses

    from repro.eval.campaign import CampaignSpec
    from repro.hw.config import PYNQ_Z2
    from repro.hw.dse import DesignSpaceExplorer

    explorer = DesignSpaceExplorer()
    spec = CampaignSpec(
        name=args.name or "dse",
        grid={
            "pe": list(args.pe),
            "bn_lanes": list(args.bn_lanes),
            "clock_mhz": list(args.clock),
        },
        seed=args.seed,
        metadata={"base": PYNQ_Z2.name, "square_arrays_only": True},
    )

    def point_fn(params, seed):
        arch = dataclasses.replace(
            PYNQ_Z2,
            pe_rows=int(params["pe"]),
            pe_cols=int(params["pe"]),
            num_bn_multipliers=int(params["bn_lanes"]),
            clock_hz=float(params["clock_mhz"]) * 1e6,
            name=f"SIA-{params['pe']}x{params['pe']}",
        )
        point = explorer.evaluate(arch)
        return {
            "design": point.label,
            "gops": point.gops,
            "gops_per_watt": point.gops_per_watt,
            "gops_per_dsp": point.gops_per_dsp,
            "power_watts": point.power_watts,
            "luts": point.luts,
            "ffs": point.ffs,
            "dsps": point.dsps,
            "brams": point.brams,
            "fits": point.fits,
            "violations": list(point.violations),
        }

    columns = ["design", "gops", "gops_per_watt", "gops_per_dsp", "fits"]
    return spec, point_fn, columns


def campaign_main(argv: Optional[List[str]] = None) -> int:
    from repro.eval.campaign import CampaignRunner
    from repro.snn.engines.sharding import ShardPolicy

    args = build_campaign_parser().parse_args(argv)
    builders = {"faults": _campaign_faults, "dse": _campaign_dse}
    spec, point_fn, columns = builders[args.kind](args)
    runner = CampaignRunner(
        spec,
        point_fn,
        out_dir=args.out,
        policy=ShardPolicy(
            timeout=args.point_timeout,
            retries=args.retries,
            backoff=args.backoff,
        ),
        workers=args.workers,
        mode=args.mode,
    )
    result = runner.run(max_points=args.max_points)

    _print_header(f"campaign {spec.name}: {len(result.records)}/"
                  f"{len(spec.points())} points complete")
    rows = []
    for point in spec.points():
        record = result.records.get(point.id)
        if record is None:
            continue
        row = dict(point.params)
        row.update(record["result"])
        rows.append({c: row.get(c, "") for c in columns})
    if rows:
        print(render_table(rows, columns))
    if result.failures:
        print(f"\n{len(result.failures)} point failure(s) were retried/recovered; "
              "see warnings above")
    if not result.complete:
        print(f"\nINCOMPLETE: {len(result.missing)} point(s) missing; re-run the "
              "same command to resume")
        return EXIT_CAMPAIGN_INCOMPLETE
    print(f"\nrecords: {runner.points_dir}")
    return 0


# ----------------------------------------------------------------------
# serve subcommand: robust async inference serving
# ----------------------------------------------------------------------


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli serve",
        description="Serve SNN inference over HTTP/JSON with deadline-aware "
        "micro-batching, load shedding, a circuit breaker over the engine "
        "worker, and graceful drain on SIGTERM.  Routes: GET /healthz, "
        "GET /readyz, GET /metrics, POST /v1/infer.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="0 picks an ephemeral port (printed at startup)")
    parser.add_argument("--model", default="demo",
                        help="'demo' (tiny calibrated conv net) for now; "
                        "registry models need trained weights")
    parser.add_argument("--input-shape", type=_parse_int_list,
                        default=[2, 8, 8], dest="input_shape",
                        help="single-sample input shape C,H,W for the demo model")
    parser.add_argument("--classes", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--engine", choices=ENGINE_CHOICES, default="auto")
    parser.add_argument("--timesteps", type=int, default=8,
                        help="full T; also the degradation ceiling")
    parser.add_argument("--min-timesteps", type=int, default=1,
                        dest="min_timesteps",
                        help="degradation floor for the timestep ceiling")
    parser.add_argument("--default-deadline-ms", type=float, default=1000.0,
                        dest="default_deadline_ms")
    parser.add_argument("--p99-budget-ms", type=float, default=None,
                        dest="p99_budget_ms",
                        help="degrade T when observed p99 exceeds this "
                        "(unset disables degradation)")
    parser.add_argument("--max-batch", type=int, default=8, dest="max_batch",
                        help="micro-batch coalescing ceiling")
    parser.add_argument("--max-queue", type=int, default=64, dest="max_queue",
                        help="queue depth beyond which requests shed (429)")
    parser.add_argument("--workers", type=int, default=1,
                        help="batch shards per engine run")
    parser.add_argument("--serve-workers", type=int, default=1,
                        dest="serve_workers",
                        help="process-backed engine replicas behind the "
                        "batcher (1 = today's in-process worker; N > 1 "
                        "scales across cores via shared-memory transport)")
    parser.add_argument("--plan-path", default=None, dest="plan_path",
                        help="persisted execution-plan file for adaptive "
                        "engines (shared warm start across restarts and "
                        "replica pools)")
    parser.add_argument("--shard-mode", choices=SHARD_MODES, default="auto",
                        dest="shard_mode")
    parser.add_argument("--hang-timeout", type=float, default=30.0,
                        dest="hang_timeout",
                        help="seconds before a wedged engine run is abandoned "
                        "and the worker slot rebuilt")
    parser.add_argument("--breaker-threshold", type=int, default=3,
                        dest="breaker_threshold",
                        help="consecutive dispatch failures that trip the "
                        "circuit breaker")
    parser.add_argument("--breaker-reset", type=float, default=2.0,
                        dest="breaker_reset",
                        help="seconds the breaker stays open before probing")
    parser.add_argument("--drain-timeout", type=float, default=10.0,
                        dest="drain_timeout",
                        help="SIGTERM drain deadline in seconds")
    parser.add_argument("--auth-token", default=None, dest="auth_token",
                        help="require 'Authorization: Bearer <token>'")
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    import asyncio
    import logging

    from repro.serve import InferenceServer, ServeConfig, build_demo_network

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
    )
    args = build_serve_parser().parse_args(argv)
    if args.model != "demo":
        print(
            f"unsupported --model {args.model!r}: registry models are "
            "untrained; only 'demo' is servable today",
            file=sys.stderr,
        )
        return 2
    model, input_shape = build_demo_network(
        input_shape=args.input_shape, classes=args.classes, seed=args.seed
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        timesteps=args.timesteps,
        min_timesteps=args.min_timesteps,
        default_deadline_ms=args.default_deadline_ms,
        p99_budget_ms=args.p99_budget_ms,
        engine=args.engine,
        workers=args.workers,
        serve_workers=args.serve_workers,
        plan_path=args.plan_path,
        shard_mode=args.shard_mode,
        max_batch_size=args.max_batch,
        max_queue_depth=args.max_queue,
        hang_timeout_seconds=args.hang_timeout,
        breaker_failure_threshold=args.breaker_threshold,
        breaker_reset_seconds=args.breaker_reset,
        drain_timeout_seconds=args.drain_timeout,
        auth_token=args.auth_token,
    )
    server = InferenceServer(model, input_shape, config)
    asyncio.run(server.serve_forever())
    return 0


_RUNNERS = {
    "tab1": _run_tab1,
    "tab2": _run_tab2,
    "tab3": _run_tab3,
    "tab4": _run_tab4,
    "asic": _run_asic,
    "dse": _run_dse,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate the SOCC 2024 SIA paper's tables and figures.",
    )
    parser.add_argument(
        "artefacts",
        nargs="+",
        choices=list(ALL_ARTEFACTS) + ["all"],
        help="which artefacts to regenerate",
    )
    parser.add_argument("--timesteps", type=int, default=8)
    parser.add_argument("--max-timesteps", type=int, default=16, dest="max_timesteps")
    parser.add_argument("--width", type=float, default=0.125,
                        help="model width multiplier for training artefacts")
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--train", type=int, default=1500, help="training samples")
    parser.add_argument("--test", type=int, default=400, help="test samples")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="dense",
        help="SNN simulation backend for training artefacts: full dense "
        "recompute per timestep, sparse event propagation, "
        "time-batched layer-sequential execution, or the adaptive "
        "auto backend (profiles a calibration run, then picks "
        "GEMM vs event-gather per layer; fastest)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="batch shards per SNN inference run in parallel "
        "(1 = in-process); statistics are merged and match a "
        "single-worker run",
    )
    parser.add_argument(
        "--shard-mode",
        choices=SHARD_MODES,
        default="auto",
        dest="shard_mode",
        help="parallel substrate for --workers > 1: forked processes, "
        "a thread pool (works where fork is unavailable), or pick "
        "automatically",
    )
    parser.add_argument(
        "--input-format",
        choices=INPUT_FORMATS,
        default="frames",
        dest="input_format",
        help="input presentation for the spike-rate artefacts (fig6/fig8): "
        "direct-coded analog frames (the PS frame-conversion mode) or "
        "a rate-encoded COO spike stream (the event-driven input mode)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="after a training artefact, print the per-layer profile "
        "(wall clock, density, ops, chosen backend) of the last "
        "evaluation batch (RunStats.profile_table())",
    )
    parser.add_argument("--top", type=int, default=12, help="rows to show for dse")
    parser.add_argument(
        "--skip-training",
        action="store_true",
        help="with 'all': only hardware artefacts",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # `campaign` has its own flag set (grids, resume knobs) that would
    # collide with the artefact parser's; dispatch before parsing.
    if argv and argv[0] == "campaign":
        return campaign_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    artefacts: List[str] = []
    for item in args.artefacts:
        if item == "all":
            artefacts.extend(
                HARDWARE_ARTEFACTS if args.skip_training else ALL_ARTEFACTS
            )
        else:
            artefacts.append(item)
    seen = set()
    for artefact in artefacts:
        if artefact in seen:
            continue
        seen.add(artefact)
        _RUNNERS[artefact](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
