"""Serving metrics: counters, gauges and latency percentiles, as JSON.

One :class:`ServingMetrics` instance is shared by every component of
the request path — admission control increments shed counters, the
micro-batcher observes end-to-end latencies and queue depth, the
circuit breaker reports state transitions, the engine worker feeds
shard-failure counts — and ``GET /metrics`` renders one snapshot.

Everything is stdlib and thread-safe: observations arrive from the
event loop *and* from engine worker threads.  Percentiles come from a
bounded ring of recent latencies (the last ``reservoir`` completions),
which is exact for the window it holds and O(1) per observation —
plenty for a p50/p99 readout; this is an operational signal, not a
statistics library.  Request rate is reported twice: over the whole
uptime and over a short sliding window, because "what is the server
doing *now*" is the question during an overload.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, Optional


def percentile(sorted_values, q: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


class LatencyReservoir:
    """Bounded ring of recent latency observations (seconds)."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._values: deque = deque(maxlen=int(capacity))
        self._count = 0

    def observe(self, seconds: float) -> None:
        self._values.append(float(seconds))
        self._count += 1

    @property
    def count(self) -> int:
        """Total observations ever made (not just the window)."""
        return self._count

    def quantiles(self, qs) -> Dict[float, float]:
        ordered = sorted(self._values)
        return {q: percentile(ordered, q) for q in qs}


class ServingMetrics:
    """Shared counters/gauges/latency state behind ``GET /metrics``."""

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        reservoir: int = 2048,
        rate_window_seconds: float = 10.0,
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._started = clock()
        self._latency = LatencyReservoir(reservoir)
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._labels: Dict[str, str] = {}
        self._rate_window = float(rate_window_seconds)
        self._completions: deque = deque()
        self._sections: Dict[str, Callable[[], dict]] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def set_label(self, name: str, value: str) -> None:
        """A string-valued readout (breaker state, degraded shard mode)."""
        with self._lock:
            self._labels[name] = str(value)

    def set_section(self, name: str, provider: Callable[[], dict]) -> None:
        """Register a callable-backed structured section of the snapshot.

        The provider runs at snapshot time (outside the metrics lock, so
        it may take its own locks) and its JSON-ready dict lands under
        ``name`` — how the worker pool exposes per-replica depth,
        restarts and shared-memory bytes without the metrics object
        knowing pool internals.  A provider that raises contributes an
        ``{"error": ...}`` stub instead of breaking ``/metrics``.
        """
        with self._lock:
            self._sections[str(name)] = provider

    def observe_latency(self, seconds: float) -> None:
        """Record one *completed* request: latency + rate bookkeeping."""
        now = self._clock()
        with self._lock:
            self._latency.observe(seconds)
            self._completions.append(now)
            cutoff = now - self._rate_window
            while self._completions and self._completions[0] < cutoff:
                self._completions.popleft()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-ready view of the whole serving state."""
        now = self._clock()
        with self._lock:
            uptime = max(now - self._started, 1e-9)
            window = min(self._rate_window, uptime)
            quantiles = self._latency.quantiles((0.5, 0.99))
            completed = self._latency.count
            providers = dict(self._sections)
            payload = {
                "uptime_seconds": round(uptime, 3),
                "requests_per_second": round(completed / uptime, 3),
                "recent_requests_per_second": round(
                    len(self._completions) / max(window, 1e-9), 3
                ),
                "latency_ms": {
                    "p50": round(quantiles[0.5] * 1e3, 3),
                    "p99": round(quantiles[0.99] * 1e3, 3),
                    "completed": completed,
                },
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "labels": dict(self._labels),
            }
        for name, provider in providers.items():
            try:
                payload[name] = provider()
            except Exception as error:  # noqa: BLE001 - keep /metrics up
                payload[name] = {"error": f"{type(error).__name__}: {error}"}
        return payload

    def p99_ms(self) -> Optional[float]:
        """Recent p99 latency in ms, or None before any completion
        (the degradation policy's input)."""
        with self._lock:
            if self._latency.count == 0:
                return None
            return self._latency.quantiles((0.99,))[0.99] * 1e3
