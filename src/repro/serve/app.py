"""The async inference service: HTTP front end, lifecycle, drain.

A deliberately small HTTP/1.1 server on ``asyncio`` streams (stdlib
only — no web framework in the container, none needed for four
routes).  The interesting behaviour lives in the layers this file
wires together; the HTTP handler itself only parses, authenticates,
decodes and maps :class:`~repro.serve.middleware.ServeError` onto
status codes.

Routes
------
``GET /healthz``
    Liveness: 200 while the process can answer at all — it stays green
    through breaker trips and drains, because "restart me" is a
    different question from "send me traffic".
``GET /readyz``
    Readiness: 200 only when the server is admitting work (not
    draining, breaker not open).  Load balancers poll this one.
``GET /metrics``
    One JSON snapshot: request rate, p50/p99 latency, queue depth,
    shed/reject counters, breaker state and trip count, engine-worker
    restarts and absorbed shard failures.
``POST /v1/infer``
    The inference path: bearer auth (optional), JSON body with a
    single-sample ``input`` plus optional ``deadline_ms`` /
    ``timesteps``, response with logits and degradation annotations.

Shutdown
--------
``SIGTERM``/``SIGINT`` trigger graceful drain: the listener closes
(no new connections), admission stops (new requests on live keep-alive
connections get 503), queued and in-flight work flushes, bounded by
``ServeConfig.drain_timeout_seconds``, and the process exits 0.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import signal
import socket
import threading
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.serve.batcher import (
    BatcherConfig,
    DegradePolicy,
    MicroBatcher,
    ServiceEstimator,
)
from repro.serve.breaker import CircuitBreaker, OPEN
from repro.serve.metrics import ServingMetrics
from repro.serve.middleware import (
    BadRequestError,
    ServeError,
    authenticate,
    decode_infer_request,
    retry_after_header,
)
from repro.serve.pool import EngineWorkerPool
from repro.snn import convert_to_snn
from repro.snn.engines import make_engine
from repro.snn.engines.costmodel import CostModel, cost_model_path_for
from repro.snn.engines.service import EngineWorker
from repro.snn.engines.sharding import ShardPolicy
from repro.tensor import Tensor, no_grad

logger = logging.getLogger(__name__)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class ServeConfig:
    """Everything the serving stack needs, in one place."""

    host: str = "127.0.0.1"
    port: int = 8080
    timesteps: int = 8                    # full T; the degrade ceiling
    min_timesteps: int = 1
    default_deadline_ms: float = 1000.0
    p99_budget_ms: Optional[float] = None  # None disables degradation
    degrade_cooldown_seconds: float = 2.0
    engine: str = "auto"
    workers: int = 1
    serve_workers: int = 1                # engine replicas (1 = in-process)
    plan_path: Optional[str] = None       # persisted execution plans
    shard_mode: str = "auto"
    shard_timeout_seconds: Optional[float] = 10.0
    shard_retries: int = 1
    max_batch_size: int = 8
    max_queue_depth: int = 64
    max_inflight_bytes: int = 64 * 1024 * 1024
    max_body_bytes: int = 8 * 1024 * 1024
    gather_window_seconds: float = 2e-3
    hang_timeout_seconds: float = 30.0
    breaker_failure_threshold: int = 3
    breaker_reset_seconds: float = 2.0
    drain_timeout_seconds: float = 10.0
    auth_token: Optional[str] = None
    estimator_initial_unit: float = 2e-3
    estimator_overhead: float = 2e-3


def build_demo_network(
    input_shape: Sequence[int] = (2, 8, 8),
    classes: int = 10,
    seed: int = 0,
) -> Tuple[nn.Module, Tuple[int, ...]]:
    """A tiny conv SNN for smoke tests and demos.

    Untrained but *calibrated*: a few train-mode forwards settle the
    BatchNorm running statistics and QuantReLU steps before conversion,
    so the spiking model produces stable, non-degenerate logits.
    """
    shape = tuple(int(s) for s in input_shape)
    channels, height, width = shape
    rng = np.random.default_rng(seed)
    model = nn.Sequential(
        nn.Conv2d(channels, 8, 3, padding=1, rng=np.random.default_rng(seed + 1)),
        nn.BatchNorm2d(8),
        nn.QuantReLU(levels=4, init_step=1.0),
        nn.AvgPool2d(2),
        nn.Flatten(),
        nn.Linear(
            8 * (height // 2) * (width // 2),
            classes,
            rng=np.random.default_rng(seed + 2),
        ),
    )
    model.train()
    with no_grad():
        for _ in range(4):
            model(Tensor(rng.normal(size=(8,) + shape).astype(np.float32)))
    model.eval()
    return convert_to_snn(model), shape


class InferenceServer:
    """Wires model -> engine worker -> breaker -> batcher -> HTTP."""

    def __init__(
        self,
        model: nn.Module,
        input_shape: Sequence[int],
        config: Optional[ServeConfig] = None,
    ) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        self.input_shape = tuple(int(s) for s in input_shape)
        self.metrics = ServingMetrics()
        policy = ShardPolicy(
            timeout=cfg.shard_timeout_seconds, retries=cfg.shard_retries
        )
        engine = make_engine(cfg.engine)
        if cfg.plan_path and hasattr(engine, "load_plans"):
            # make_engine takes no kwargs; thread the plan file through
            # post-construction.  Plans and the sibling cost model are
            # caches — missing files just mean a cold calibration.
            engine.plan_path = cfg.plan_path
            engine.load_plans(missing_ok=True)
            engine.cost_model = CostModel.load(
                cost_model_path_for(cfg.plan_path)
            )
        engine.bind(model)
        if cfg.serve_workers > 1:
            # Process-parallel replicas over shared-memory transport.
            self.worker = EngineWorkerPool(
                engine,
                replicas=cfg.serve_workers,
                policy=policy,
                workers=cfg.workers,
                shard_mode=cfg.shard_mode,
                probe_shape=self.input_shape,
                serve_timesteps=cfg.timesteps,
                max_batch_size=cfg.max_batch_size,
                breaker_failure_threshold=cfg.breaker_failure_threshold,
                breaker_reset_seconds=cfg.breaker_reset_seconds,
                spawn_spec=cfg.engine,
                plan_path=cfg.plan_path,
            )
            self.metrics.set_section("pool", self.worker.snapshot)
        else:
            # serve_workers == 1 keeps today's in-process worker exactly.
            self.worker = EngineWorker(
                engine,
                policy=policy,
                workers=cfg.workers,
                shard_mode=cfg.shard_mode,
                probe_shape=self.input_shape,
            )
        self.breaker = CircuitBreaker(
            failure_threshold=cfg.breaker_failure_threshold,
            reset_timeout=cfg.breaker_reset_seconds,
            on_transition=self._on_breaker_transition,
        )
        self.metrics.set_label("breaker_state", self.breaker.state)
        degrade = DegradePolicy(
            full_timesteps=cfg.timesteps,
            min_timesteps=cfg.min_timesteps,
            p99_budget_ms=cfg.p99_budget_ms,
            cooldown_seconds=cfg.degrade_cooldown_seconds,
        )
        self.batcher = MicroBatcher(
            self.worker,
            self.breaker,
            self.metrics,
            degrade,
            config=BatcherConfig(
                max_batch_size=cfg.max_batch_size,
                max_queue_depth=cfg.max_queue_depth,
                max_inflight_bytes=cfg.max_inflight_bytes,
                gather_window_seconds=cfg.gather_window_seconds,
                hang_timeout_seconds=cfg.hang_timeout_seconds,
            ),
            estimator=ServiceEstimator(
                initial_unit=cfg.estimator_initial_unit,
                overhead=cfg.estimator_overhead,
            ),
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopped = asyncio.Event()
        self._shutdown_started = False
        self.port: Optional[int] = None  # resolved after bind (port 0 -> real)

    # -- lifecycle -----------------------------------------------------
    def _on_breaker_transition(self, old: str, new: str, reason: str) -> None:
        self.metrics.set_label("breaker_state", new)
        if new == OPEN:
            self.metrics.inc("breaker_trips")
        elif old != new:
            self.metrics.inc("breaker_transitions")

    async def start(self) -> None:
        cfg = self.config
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_client, cfg.host, cfg.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._install_signal_handlers()
        logger.info(
            "serving on %s:%d (engine=%s T=%d batch<=%d queue<=%d)",
            cfg.host, self.port, cfg.engine, cfg.timesteps,
            cfg.max_batch_size, cfg.max_queue_depth,
        )

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda s=sig: loop.create_task(self.shutdown(s.name))
                )
            except (NotImplementedError, ValueError, RuntimeError):
                # Not on the main thread (test harness) or unsupported
                # platform; shutdown() can still be called directly.
                break

    async def shutdown(self, cause: str = "shutdown") -> None:
        """Graceful drain: stop admitting, flush, release, signal exit."""
        if self._shutdown_started:
            return
        self._shutdown_started = True
        logger.info("%s received: draining (<= %.1fs)", cause,
                    self.config.drain_timeout_seconds)
        self.metrics.set_label("lifecycle", "draining")
        if self._server is not None:
            self._server.close()
        flushed = await self.batcher.drain(self.config.drain_timeout_seconds)
        logger.info(
            "drain %s: queue flushed, shutting down",
            "complete" if flushed else "deadline elapsed",
        )
        await self.batcher.close()
        self.worker.shutdown()
        self.metrics.set_label("lifecycle", "stopped")
        self._stopped.set()

    async def serve_forever(self) -> None:
        await self.start()
        await self._stopped.wait()

    # -- HTTP plumbing -------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except BadRequestError as error:
                    await self._write_response(
                        writer, error.status, error.payload(), {}, False
                    )
                    break
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                    and not self._shutdown_started
                )
                try:
                    status, payload, extra = await self._route(
                        method, target, headers, body, writer
                    )
                except ServeError as error:
                    status, payload = error.status, error.payload()
                    extra = retry_after_header(error.retry_after)
                except asyncio.CancelledError:
                    break  # client disconnected while queued
                except Exception as error:  # noqa: BLE001 - last-resort 500
                    logger.exception("unhandled error serving %s %s", method, target)
                    status = 500
                    payload = {"error": "internal error", "detail": str(error)}
                    extra = {}
                await self._write_response(
                    writer, status, payload, extra, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not line or line in (b"\r\n", b"\n"):
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise BadRequestError("malformed request line")
        method, target, _version = parts
        headers = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > self.config.max_body_bytes:
            raise BadRequestError(
                f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit"
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _write_response(
        self, writer, status: int, payload: dict, extra: dict, keep_alive: bool
    ) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            "Connection": "keep-alive" if keep_alive else "close",
            **(extra or {}),
        }
        head = f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        head += "".join(f"{k}: {v}\r\n" for k, v in headers.items()) + "\r\n"
        with contextlib.suppress(ConnectionError):
            writer.write(head.encode("latin-1") + body)
            await writer.drain()

    # -- routing -------------------------------------------------------
    async def _route(self, method, target, headers, body, writer):
        path = target.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "method not allowed"}, {}
            return 200, {"status": "ok"}, {}
        if path == "/readyz":
            if method != "GET":
                return 405, {"error": "method not allowed"}, {}
            return self._readyz()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "method not allowed"}, {}
            return 200, self._metrics_payload(), {}
        if path == "/v1/infer":
            if method != "POST":
                return 405, {"error": "method not allowed"}, {}
            return await self._infer(headers, body, writer)
        return 404, {"error": "not found", "detail": path}, {}

    def _readyz(self):
        if self._shutdown_started or self.batcher.draining:
            return 503, {"status": "draining"}, {}
        state = self.breaker.state
        if state == OPEN:
            return (
                503,
                {"status": "circuit breaker open", "breaker_state": state},
                retry_after_header(self.breaker.retry_after()),
            )
        return 200, {"status": "ready", "breaker_state": state}, {}

    def _metrics_payload(self) -> dict:
        snapshot = self.metrics.snapshot()
        snapshot["breaker"] = {
            "state": self.breaker.state,
            "trips": self.breaker.trips,
            "recoveries": self.breaker.recoveries,
            "consecutive_failures": self.breaker.consecutive_failures,
        }
        snapshot["worker"] = {
            "restarts": self.worker.restarts,
            "runs_completed": self.worker.runs_completed,
            "shard_failures": self.worker.shard_failures,
            "degraded_shard_mode": self.worker.last_degraded_mode,
            "replans_seen": self.worker.replans_seen,
        }
        planner = self.worker.planner_snapshot()
        if planner is not None:
            # Adaptive engines only: current plans, calibration/re-plan
            # counters and cost-model residuals for drift diagnosis.
            snapshot["planner"] = planner
        snapshot["degrade"] = {
            "current_timesteps": self.batcher.degrade.current,
            "full_timesteps": self.batcher.degrade.full_timesteps,
            "degradations": self.batcher.degrade.degradations,
            "recoveries": self.batcher.degrade.recoveries,
        }
        snapshot["queue_depth"] = self.batcher.queue_depth
        return snapshot

    async def _infer(self, headers, body, writer):
        authenticate(headers, self.config.auth_token)
        batch, timesteps, deadline_ms = decode_infer_request(
            body,
            self.input_shape,
            self.config.default_deadline_ms,
            self.config.timesteps,
        )
        future = self.batcher.submit(
            batch,
            timesteps,
            deadline_ms,
            is_disconnected=writer.is_closing,
        )
        result = await future
        return 200, result, {}


# ----------------------------------------------------------------------
# Test/benchmark harness: run a server on a background thread.
# ----------------------------------------------------------------------
class ServerHandle:
    """A server running on its own event-loop thread.

    ``with ServerHandle(model, shape, config) as handle:`` gives tests
    and benchmarks a live port (``handle.port`` — bind with port 0 for
    an ephemeral one) plus a blocking JSON client and a clean stop that
    exercises the same drain path as SIGTERM.
    """

    def __init__(
        self,
        model: nn.Module,
        input_shape: Sequence[int],
        config: Optional[ServeConfig] = None,
        startup_timeout: float = 30.0,
    ) -> None:
        self.server: Optional[InferenceServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

        def _main() -> None:
            async def _run() -> None:
                self.server = InferenceServer(model, input_shape, config)
                self._loop = asyncio.get_running_loop()
                try:
                    await self.server.start()
                finally:
                    self._ready.set()
                await self.server._stopped.wait()

            try:
                asyncio.run(_run())
            except BaseException as error:  # noqa: BLE001 - surfaced on join
                self._error = error
                self._ready.set()

        self._thread = threading.Thread(target=_main, name="serve-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(startup_timeout):
            raise RuntimeError("server failed to start in time")
        if self._error is not None:
            raise RuntimeError(f"server startup failed: {self._error!r}")

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        """Trigger the SIGTERM drain path and join the loop thread
        (idempotent: safe to call after the loop has exited)."""
        if (
            self._thread.is_alive()
            and self._loop is not None
            and not self._loop.is_closed()
            and self.server is not None
        ):
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(
                    lambda: self._loop.create_task(self.server.shutdown("stop()"))
                )
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- blocking client ----------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        headers: Optional[dict] = None,
        timeout: float = 30.0,
    ) -> Tuple[int, dict, dict]:
        """One blocking HTTP round trip; returns (status, body, headers)."""
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
        head += f"Content-Length: {len(body)}\r\nConnection: close\r\n"
        for name, value in (headers or {}).items():
            head += f"{name}: {value}\r\n"
        head += "\r\n"
        with socket.create_connection(
            ("127.0.0.1", self.port), timeout=timeout
        ) as conn:
            conn.sendall(head.encode("latin-1") + body)
            raw = b""
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                raw += chunk
        header_blob, _, rest = raw.partition(b"\r\n\r\n")
        lines = header_blob.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        response_headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            response_headers[name.strip().lower()] = value.strip()
        parsed = json.loads(rest.decode("utf-8")) if rest.strip() else {}
        return status, parsed, response_headers

    def infer(
        self,
        sample: np.ndarray,
        deadline_ms: Optional[float] = None,
        timesteps: Optional[int] = None,
        token: Optional[str] = None,
        timeout: float = 30.0,
    ) -> Tuple[int, dict]:
        payload = {"input": np.asarray(sample).tolist()}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if timesteps is not None:
            payload["timesteps"] = timesteps
        headers = {"Authorization": f"Bearer {token}"} if token else None
        status, body, _ = self.request(
            "POST", "/v1/infer", payload, headers, timeout
        )
        return status, body
