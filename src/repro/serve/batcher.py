"""Deadline-aware micro-batching with admission control.

The serving fast path.  Incoming single-image requests land in one
bounded queue; a single dispatch loop coalesces whatever is waiting
into a ``(N, C, H, W)`` batch and runs it through the warm
:class:`~repro.snn.engines.service.EngineWorker`.  Batching is how an
SNN accelerator serves load: per-run overhead (plan lookup, interceptor
install, state reset) is paid once per *batch* instead of once per
request, so throughput under concurrency multiplies while the engine
itself stays untouched.

Robustness decisions all happen here, at well-defined points:

* **Admission** (:meth:`MicroBatcher.submit`): draining and an open
  circuit breaker fast-fail immediately (503); a full queue — by depth
  *or* by queued payload bytes — sheds load (429 + ``Retry-After``);
  a deadline that the current backlog provably cannot meet is rejected
  up front (504) rather than wasting a queue slot on a doomed request.
* **The gather window** is computed from deadlines, not a fixed timer:
  the batch dispatches at the *latest start time* that still meets its
  most urgent member's budget, given the estimated service time for
  the batch that would result.  Idle servers dispatch singles almost
  immediately; loaded servers coalesce aggressively.
* **Culling**: disconnected and deadline-expired entries are dropped
  *before* dispatch so the engine never spends cycles on an answer
  nobody is waiting for.
* **Degradation**: when observed p99 exceeds the configured budget,
  :class:`DegradePolicy` halves the timestep ceiling.  Degraded
  requests still ride the same batch — the engine runs to the largest
  effective T with ``per_step=True`` and each entry is answered from
  the cumulative logits at *its* effective timestep, which makes a
  degraded answer exactly the prefix of the full-T answer.
* **Breaker integration**: dispatch failures (shard-supervision
  exhaustion, worker hang timeouts) feed the breaker; when it trips,
  everything still queued is fast-failed, and the half-open probe is a
  real single-entry batch.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from collections import deque

import numpy as np

from repro.serve.breaker import CircuitBreaker, OPEN
from repro.serve.metrics import ServingMetrics
from repro.serve.middleware import (
    BreakerOpenError,
    DeadlineError,
    DrainingError,
    ShedError,
    WorkerFailedError,
)
from repro.snn.engines.service import EngineWorker, WorkerTimeout

logger = logging.getLogger(__name__)

_REQUEST_IDS = itertools.count(1)


class ServiceEstimator:
    """EWMA model of engine service time: ``overhead + unit * N * T``.

    ``unit`` is seconds per sample-timestep, learned from every
    completed batch; ``overhead`` is the fixed per-dispatch cost.  The
    estimate feeds two decisions — admission feasibility and the gather
    window — both of which apply their own safety factor, so the model
    only needs to be roughly right and quick to adapt.
    """

    def __init__(
        self,
        initial_unit: float = 2e-3,
        overhead: float = 2e-3,
        alpha: float = 0.3,
    ) -> None:
        self.unit = float(initial_unit)
        self.overhead = float(overhead)
        self.alpha = float(alpha)
        self.observations = 0

    def estimate(self, samples: int, timesteps: int) -> float:
        return self.overhead + self.unit * max(samples, 1) * max(timesteps, 1)

    def update(self, samples: int, timesteps: int, elapsed: float) -> None:
        work = max(samples * timesteps, 1)
        observed = max(elapsed - self.overhead, 1e-6) / work
        self.unit += self.alpha * (observed - self.unit)
        self.observations += 1


class DegradePolicy:
    """Shrink the timestep ceiling when p99 latency blows its budget.

    Fewer timesteps is the one knob an SNN gives away almost for free:
    logits accumulate over T, so truncating T trades a little accuracy
    for proportionally less compute while answers stay prefixes of the
    full-T result.  The policy halves the ceiling (down to
    ``min_timesteps``) whenever observed p99 exceeds ``p99_budget_ms``,
    and doubles it back once p99 falls below ``recover_fraction`` of
    the budget; a cooldown between moves keeps it from oscillating on
    a noisy percentile.
    """

    def __init__(
        self,
        full_timesteps: int,
        min_timesteps: int = 1,
        p99_budget_ms: Optional[float] = None,
        recover_fraction: float = 0.6,
        cooldown_seconds: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if full_timesteps < 1:
            raise ValueError("full_timesteps must be >= 1")
        self.full_timesteps = int(full_timesteps)
        self.min_timesteps = max(1, min(int(min_timesteps), self.full_timesteps))
        self.p99_budget_ms = p99_budget_ms
        self.recover_fraction = float(recover_fraction)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._last_change = -float("inf")
        self.current = self.full_timesteps
        self.degradations = 0
        self.recoveries = 0

    @property
    def degraded(self) -> bool:
        return self.current < self.full_timesteps

    def observe(self, p99_ms: Optional[float]) -> int:
        """Feed one p99 reading; returns the (possibly new) ceiling."""
        if self.p99_budget_ms is None or p99_ms is None:
            return self.current
        now = self._clock()
        if now - self._last_change < self.cooldown_seconds:
            return self.current
        if p99_ms > self.p99_budget_ms and self.current > self.min_timesteps:
            self.current = max(self.min_timesteps, self.current // 2)
            self.degradations += 1
            self._last_change = now
            logger.warning(
                "p99 %.1fms over %.1fms budget: degrading timestep ceiling to T=%d",
                p99_ms, self.p99_budget_ms, self.current,
            )
        elif (
            p99_ms < self.recover_fraction * self.p99_budget_ms
            and self.current < self.full_timesteps
        ):
            self.current = min(self.full_timesteps, self.current * 2)
            self.recoveries += 1
            self._last_change = now
            logger.info(
                "p99 %.1fms back under budget: raising timestep ceiling to T=%d",
                p99_ms, self.current,
            )
        return self.current


@dataclass
class InferenceRequest:
    """One admitted request waiting in (or leaving) the queue."""

    batch: np.ndarray          # (1, C, H, W)
    timesteps: int             # requested T (<= the server's full T)
    deadline: float            # absolute monotonic deadline
    enqueued_at: float
    future: "asyncio.Future"
    is_disconnected: Optional[Callable[[], bool]] = None
    id: int = field(default_factory=lambda: next(_REQUEST_IDS))

    @property
    def nbytes(self) -> int:
        return int(self.batch.nbytes)

    def alive(self) -> bool:
        if self.future.done():
            return False
        if self.is_disconnected is not None and self.is_disconnected():
            return False
        return True


@dataclass
class BatcherConfig:
    """Knobs for the queue, the coalescer and the failure paths."""

    max_batch_size: int = 8
    max_queue_depth: int = 64
    max_inflight_bytes: int = 64 * 1024 * 1024
    safety_factor: float = 2.0          # estimate multiplier for feasibility
    gather_window_seconds: float = 2e-3  # max extra wait to coalesce
    hang_timeout_seconds: float = 30.0   # worker-level wedge deadline
    idle_tick_seconds: float = 0.05      # queue poll cadence when idle


class MicroBatcher:
    """The bounded queue + dispatch loop between HTTP and the engine."""

    def __init__(
        self,
        worker: EngineWorker,
        breaker: CircuitBreaker,
        metrics: ServingMetrics,
        degrade: DegradePolicy,
        config: Optional[BatcherConfig] = None,
        estimator: Optional[ServiceEstimator] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.worker = worker
        self.breaker = breaker
        self.metrics = metrics
        self.degrade = degrade
        self.config = config or BatcherConfig()
        self.estimator = estimator or ServiceEstimator()
        self._clock = clock
        self._queue: Deque[InferenceRequest] = deque()
        self._queued_bytes = 0
        self._inflight = 0          # entries inside in-flight dispatches
        self._inflight_work = 0     # sample-timesteps in flight
        self._draining = False
        self._closed = False
        self._wake = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        # Concurrent dispatches, when the worker is a pool.  A plain
        # EngineWorker has capacity 1 and keeps today's single
        # outstanding batch; an EngineWorkerPool advertises capacity N
        # and the loop keeps up to N batches in flight at once.
        self._dispatch_tasks: set = set()

    @property
    def capacity(self) -> int:
        """Concurrent dispatches the worker can absorb (1 = in-process)."""
        return max(1, int(getattr(self.worker, "capacity", 1)))

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._dispatch_loop(), name="microbatcher-dispatch"
            )

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def begin_drain(self) -> None:
        """Stop admitting; in-flight and queued work keeps completing."""
        self._draining = True
        self._wake.set()

    async def drain(self, timeout: float) -> bool:
        """Wait (bounded) for the queue and in-flight batch to empty.

        Returns True if everything flushed inside ``timeout``; on False
        the stragglers are failed with 503 so no future is left hanging.
        """
        self.begin_drain()
        deadline = self._clock() + timeout
        while (self._queue or self._inflight) and self._clock() < deadline:
            await asyncio.sleep(0.01)
        flushed = not self._queue and not self._inflight
        if not flushed:
            self._fail_queue(DrainingError("drain deadline elapsed"), "drain_expired")
        return flushed

    async def close(self) -> None:
        self._closed = True
        self._wake.set()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._task = None
        for task in list(self._dispatch_tasks):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._dispatch_tasks.clear()
        self._fail_queue(DrainingError("server shut down"), "shutdown_dropped")

    # -- admission -----------------------------------------------------
    def submit(
        self,
        batch: np.ndarray,
        timesteps: int,
        deadline_ms: float,
        is_disconnected: Optional[Callable[[], bool]] = None,
    ) -> "asyncio.Future":
        """Admit one request or raise the matching :class:`ServeError`."""
        cfg = self.config
        self.metrics.inc("requests_total")
        if self._draining or self._closed:
            self.metrics.inc("rejected_draining")
            raise DrainingError("server is draining; not admitting new work")
        allowed, retry_after = self.breaker.allow_request()
        if not allowed:
            self.metrics.inc("rejected_breaker")
            raise BreakerOpenError(
                "execution substrate is failing; circuit breaker is open",
                retry_after=retry_after,
            )
        if len(self._queue) >= cfg.max_queue_depth:
            self.metrics.inc("shed_queue")
            raise ShedError(
                f"queue depth limit ({cfg.max_queue_depth}) reached",
                retry_after=self._drain_time_estimate(),
            )
        if self._queued_bytes + batch.nbytes > cfg.max_inflight_bytes:
            self.metrics.inc("shed_bytes")
            raise ShedError(
                "in-flight payload byte limit reached",
                retry_after=self._drain_time_estimate(),
            )
        now = self._clock()
        effective_t = min(int(timesteps), self.degrade.current)
        wait = self.estimator.unit * (self._pending_work() + self._inflight_work)
        service = self.estimator.estimate(1, effective_t) * cfg.safety_factor
        budget = deadline_ms / 1e3
        if wait + service > budget:
            self.metrics.inc("rejected_deadline")
            raise DeadlineError(
                f"deadline of {deadline_ms:.1f}ms cannot be met: estimated "
                f"queue wait {wait * 1e3:.1f}ms + service {service * 1e3:.1f}ms"
            )
        entry = InferenceRequest(
            batch=batch,
            timesteps=int(timesteps),
            deadline=now + budget,
            enqueued_at=now,
            future=asyncio.get_running_loop().create_future(),
            is_disconnected=is_disconnected,
        )
        self._queue.append(entry)
        self._queued_bytes += entry.nbytes
        self.metrics.set_gauge("queue_depth", len(self._queue))
        self.metrics.set_gauge("queued_bytes", self._queued_bytes)
        self._wake.set()
        return entry.future

    def _pending_work(self) -> int:
        return sum(min(e.timesteps, self.degrade.current) for e in self._queue)

    def _drain_time_estimate(self) -> float:
        """Seconds until today's backlog plausibly clears — the 429
        ``Retry-After``.

        Derived from actual load, not a constant: queued plus in-flight
        sample-timesteps priced at the EWMA unit cost (divided across
        the worker's dispatch capacity), plus one per-dispatch overhead
        for every batch the backlog will need.  A client shed at depth
        60 therefore backs off proportionally longer than one shed at
        depth 8, instead of every shed client retrying into the same
        wall simultaneously.
        """
        cfg = self.config
        entries = len(self._queue) + self._inflight
        batches = math.ceil(max(entries, 1) / max(cfg.max_batch_size, 1))
        work = self._pending_work() + self._inflight_work
        return (
            batches * self.estimator.overhead
            + self.estimator.unit * work / self.capacity
        )

    # -- queue maintenance ---------------------------------------------
    def _remove(self, entry: InferenceRequest) -> None:
        try:
            self._queue.remove(entry)
        except ValueError:
            return
        self._queued_bytes -= entry.nbytes
        self.metrics.set_gauge("queue_depth", len(self._queue))
        self.metrics.set_gauge("queued_bytes", self._queued_bytes)

    def _fail_queue(self, error: Exception, counter: str) -> None:
        while self._queue:
            entry = self._queue.popleft()
            self._queued_bytes -= entry.nbytes
            if not entry.future.done():
                entry.future.set_exception(error)
            self.metrics.inc(counter)
        self._queued_bytes = 0
        self.metrics.set_gauge("queue_depth", 0)
        self.metrics.set_gauge("queued_bytes", 0)

    def _cull(self, now: float) -> None:
        """Drop disconnected / already-doomed entries before dispatch."""
        for entry in list(self._queue):
            if not entry.alive():
                self._remove(entry)
                if not entry.future.done():
                    entry.future.cancel()
                self.metrics.inc("cancelled_in_queue")
                continue
            effective_t = min(entry.timesteps, self.degrade.current)
            min_service = self.estimator.estimate(1, effective_t)
            if now + min_service > entry.deadline:
                self._remove(entry)
                if not entry.future.done():
                    entry.future.set_exception(
                        DeadlineError("deadline expired while queued")
                    )
                self.metrics.inc("expired_in_queue")

    # -- dispatch ------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        cfg = self.config
        while not self._closed:
            if not self._queue:
                self._wake.clear()
                try:
                    await asyncio.wait_for(
                        self._wake.wait(), timeout=cfg.idle_tick_seconds
                    )
                except asyncio.TimeoutError:
                    pass
                continue
            now = self._clock()
            self._cull(now)
            if not self._queue:
                continue
            mode = self.breaker.before_dispatch()
            if mode is None:
                if self.breaker.state == OPEN:
                    self._fail_queue(
                        BreakerOpenError(
                            "circuit breaker opened while queued",
                            retry_after=self.breaker.retry_after(),
                        ),
                        "rejected_breaker",
                    )
                else:
                    await asyncio.sleep(cfg.idle_tick_seconds)
                continue
            if mode == "probe" and self._dispatch_tasks:
                # A half-open probe must be the only thing in flight so
                # its verdict is the substrate's, not a stale batch's.
                await asyncio.wait(
                    list(self._dispatch_tasks),
                    return_when=asyncio.ALL_COMPLETED,
                )
            capacity = self.capacity
            if mode != "probe" and capacity > 1:
                if len(self._dispatch_tasks) >= capacity:
                    # Every replica has a batch; resume gathering as
                    # soon as one frees up.
                    await asyncio.wait(
                        list(self._dispatch_tasks),
                        return_when=asyncio.FIRST_COMPLETED,
                    )
                    continue
                members = self._gather(cfg.max_batch_size)
                if not members:
                    continue
                members = await self._hold_gather_window(members)
                if members:
                    task = asyncio.get_running_loop().create_task(
                        self._dispatch_and_observe(members, probe=False)
                    )
                    self._dispatch_tasks.add(task)
                    task.add_done_callback(self._dispatch_tasks.discard)
                continue
            members = self._gather(1 if mode == "probe" else cfg.max_batch_size)
            if not members:
                continue
            if mode != "probe":
                members = await self._hold_gather_window(members)
            if members:
                await self._dispatch_and_observe(members, probe=(mode == "probe"))

    async def _dispatch_and_observe(
        self, members: List[InferenceRequest], probe: bool
    ) -> None:
        await self._dispatch(members, probe=probe)
        self.degrade.observe(self.metrics.p99_ms())
        self.metrics.set_gauge("degrade_timesteps", self.degrade.current)

    def _gather(self, limit: int) -> List[InferenceRequest]:
        members: List[InferenceRequest] = []
        while self._queue and len(members) < limit:
            entry = self._queue.popleft()
            self._queued_bytes -= entry.nbytes
            if entry.alive():
                members.append(entry)
        self.metrics.set_gauge("queue_depth", len(self._queue))
        self.metrics.set_gauge("queued_bytes", self._queued_bytes)
        return members

    async def _hold_gather_window(
        self, members: List[InferenceRequest]
    ) -> List[InferenceRequest]:
        """Wait — bounded by the most urgent deadline — for co-riders.

        The latest admissible start time is ``earliest deadline - safety
        * estimated service``; if that leaves slack and the batch is not
        full, hold briefly so concurrent arrivals coalesce instead of
        paying one engine dispatch each.
        """
        cfg = self.config
        if len(members) >= cfg.max_batch_size or cfg.gather_window_seconds <= 0:
            return members
        t_exec = max(min(e.timesteps, self.degrade.current) for e in members)
        service = self.estimator.estimate(
            len(members) + 1, t_exec
        ) * cfg.safety_factor
        earliest = min(e.deadline for e in members)
        slack = earliest - self._clock() - service
        hold = min(slack, cfg.gather_window_seconds)
        if hold > 1e-4:
            await asyncio.sleep(hold)
            members.extend(self._gather(cfg.max_batch_size - len(members)))
        return [e for e in members if e.alive()]

    async def _dispatch(
        self, members: List[InferenceRequest], probe: bool = False
    ) -> None:
        cfg = self.config
        effective = [min(e.timesteps, self.degrade.current) for e in members]
        t_exec = max(effective)
        stacked = (
            members[0].batch
            if len(members) == 1
            else np.concatenate([e.batch for e in members], axis=0)
        )
        self._inflight += len(members)
        self._inflight_work += sum(effective)
        self.metrics.set_gauge("inflight_requests", self._inflight)
        started = self._clock()
        try:
            run = await self.worker.run_async(
                stacked, t_exec, per_step=True, timeout=cfg.hang_timeout_seconds
            )
        except Exception as error:  # noqa: BLE001 - every failure feeds the breaker
            elapsed = self._clock() - started
            if isinstance(error, WorkerTimeout):
                self.metrics.inc("worker_timeouts")
            self.metrics.inc("dispatch_failures")
            self.breaker.record_failure(
                probe=probe, reason=f"{type(error).__name__}: {error}"
            )
            failure = WorkerFailedError(
                f"batch of {len(members)} failed after {elapsed * 1e3:.1f}ms "
                f"({type(error).__name__}: {error})"
            )
            for entry in members:
                if not entry.future.done():
                    entry.future.set_exception(failure)
            return
        finally:
            self._inflight = max(self._inflight - len(members), 0)
            self._inflight_work = max(self._inflight_work - sum(effective), 0)
            self.metrics.set_gauge("inflight_requests", self._inflight)
            self._export_worker_counters()

        elapsed = self._clock() - started
        self.estimator.update(len(members), t_exec, elapsed)
        self.breaker.record_success(probe=probe)
        self.metrics.inc("batches_dispatched")
        self.metrics.inc("batch_samples", len(members))
        now = self._clock()
        for row, (entry, t_eff) in enumerate(zip(members, effective)):
            logits = run.per_step[t_eff - 1][row]
            degraded = t_eff < entry.timesteps
            if degraded:
                self.metrics.inc("degraded_responses")
            if now > entry.deadline:
                self.metrics.inc("deadline_missed")
            if not entry.future.done():
                entry.future.set_result(
                    {
                        "logits": [float(v) for v in logits],
                        "prediction": int(np.argmax(logits)),
                        "timesteps_requested": entry.timesteps,
                        "timesteps_executed": t_eff,
                        "degraded": degraded,
                        "batch_size": len(members),
                        "latency_ms": round((now - entry.enqueued_at) * 1e3, 3),
                    }
                )
            self.metrics.inc("responses_ok")
            self.metrics.observe_latency(now - entry.enqueued_at)

    def _export_worker_counters(self) -> None:
        self.metrics.set_gauge("worker_restarts", self.worker.restarts)
        self.metrics.set_gauge("shard_failures", self.worker.shard_failures)
        self.metrics.set_label(
            "degraded_shard_mode", self.worker.last_degraded_mode
        )
