"""Circuit breaker around the warm engine worker pool.

When the execution substrate starts failing — consecutive
``ShardExecutionError``s, engine-worker hang timeouts — continuing to
queue work onto it makes everything worse: every queued request rides
the failure to its own deadline, and the backlog grows while the
substrate thrashes.  The breaker converts that cascade into fast,
honest failure:

* **closed** — normal operation.  ``failure_threshold`` *consecutive*
  dispatch failures trip it open (one success resets the count; a
  healthy substrate with occasional faults never trips, because PR 7's
  retry/degradation chain absorbs those inside the run).
* **open** — every request is rejected immediately (HTTP 503 +
  ``Retry-After``) without touching the worker, for ``reset_timeout``
  seconds.  Fast-fail is the point: clients get an answer in
  microseconds instead of a queue slot on a dying substrate.
* **half-open** — after the cooldown, exactly one probe dispatch is
  admitted.  The probe is a real request riding the supervised
  substrate (retry + fork→thread→serial degradation), so "the probe
  succeeded" means the degradation chain found *some* working
  substrate, not merely that a socket opened.  Success closes the
  breaker; failure reopens it for another cooldown.

Transitions are logged, counted, and exported through the shared
metrics (``breaker_state`` label, ``breaker_trips`` /
``breaker_fast_fails`` counters), because a breaker that flips
silently is a debugging session waiting to happen.  All methods are
thread-safe; the batcher drives it from the event loop but probes and
tests may poke it from worker threads.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Callable, Optional, Tuple

logger = logging.getLogger(__name__)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing.

    Parameters
    ----------
    failure_threshold:
        Consecutive dispatch failures that trip the breaker open.
    reset_timeout:
        Seconds the breaker stays open before admitting a probe.
    clock:
        Injectable monotonic clock (tests step it manually).
    on_transition:
        ``fn(old_state, new_state, reason)`` callback — the serving app
        wires this to logging + metrics.
    name:
        Optional label prefixed to transition logs, so the pool's
        per-replica breakers are tellable apart from the global one.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
        name: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.name = str(name)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.trips = 0        # closed/half-open -> open transitions
        self.recoveries = 0   # half-open -> closed transitions

    # ------------------------------------------------------------------
    def _transition(self, new_state: str, reason: str) -> None:
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        if new_state == OPEN:
            self.trips += 1
            self._opened_at = self._clock()
        if new_state == CLOSED and old == HALF_OPEN:
            self.recoveries += 1
        logger.warning(
            "circuit breaker%s %s -> %s: %s",
            f" [{self.name}]" if self.name else "", old, new_state, reason,
        )
        if self._on_transition is not None:
            self._on_transition(old, new_state, reason)

    def _roll_open_to_half_open(self) -> None:
        """Open + cooldown elapsed => half-open (lock held)."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._probe_inflight = False
            self._transition(HALF_OPEN, "reset timeout elapsed; admitting a probe")

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            self._roll_open_to_half_open()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def retry_after(self) -> float:
        """Seconds until the next probe could be admitted (>= 0)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(
                self.reset_timeout - (self._clock() - self._opened_at), 0.0
            )

    # ------------------------------------------------------------------
    def allow_request(self) -> Tuple[bool, float]:
        """Admission gate: may a new request enter the queue?

        Returns ``(allowed, retry_after_seconds)``.  Open rejects with
        the remaining cooldown; half-open admits requests (one of them
        will become the probe at dispatch; the rest wait behind it).
        """
        with self._lock:
            self._roll_open_to_half_open()
            if self._state == OPEN:
                return False, max(
                    self.reset_timeout - (self._clock() - self._opened_at), 0.0
                )
            return True, 0.0

    def before_dispatch(self) -> Optional[str]:
        """Dispatch gate: ``"normal"``, ``"probe"`` or ``None`` (hold).

        Called by the batcher immediately before running a batch.
        Half-open grants exactly one in-flight probe; further batches
        hold (``None``) until the probe resolves.  Open returns
        ``None`` — entries that were already queued when the breaker
        tripped are fast-failed by the batcher rather than dispatched.
        """
        with self._lock:
            self._roll_open_to_half_open()
            if self._state == CLOSED:
                return "normal"
            if self._state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return "probe"
            return None

    def record_success(self, probe: bool = False) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._probe_inflight = False
                self._transition(CLOSED, "half-open probe succeeded")

    def record_failure(self, probe: bool = False, reason: str = "") -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._probe_inflight = False
                self._opened_at = self._clock()
                self._transition(
                    OPEN, f"half-open probe failed ({reason or 'dispatch error'})"
                )
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(
                    OPEN,
                    f"{self._consecutive_failures} consecutive dispatch "
                    f"failure(s) ({reason or 'dispatch error'})",
                )
