"""Request-path policy: errors, auth, decoding, admission bookkeeping.

The HTTP layer (:mod:`repro.serve.app`) stays a thin parser; everything
that decides *whether and how* a request proceeds lives here as plain
functions and exceptions so it is unit-testable without a socket:

* the :class:`ServeError` family maps failure modes to status codes —
  every robustness policy in this package ends in exactly one of these
  (shed → 429, unmeetable deadline → 504, breaker open / draining →
  503, bad payload → 400, bad token → 401);
* :func:`authenticate` implements optional static bearer-token auth;
* :func:`decode_infer_request` turns a raw JSON body into a validated
  ``(input array, timesteps, deadline budget)`` triple, rejecting
  malformed shapes before they ever reach the queue.
"""

from __future__ import annotations

import json
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

#: Deadline budgets are clamped into this range: a microscopic budget
#: would reject everything at admission (client bug, not overload), an
#: enormous one would let a request occupy queue bookkeeping forever.
MIN_DEADLINE_MS = 1.0
MAX_DEADLINE_MS = 600_000.0


class ServeError(Exception):
    """A request-path failure with a definite HTTP mapping."""

    status = 500
    reason = "internal error"

    def __init__(self, detail: str = "", retry_after: Optional[float] = None):
        super().__init__(detail or self.reason)
        self.detail = detail or self.reason
        self.retry_after = retry_after

    def payload(self) -> dict:
        body = {"error": self.reason, "detail": self.detail}
        if self.retry_after is not None:
            body["retry_after_seconds"] = round(self.retry_after, 3)
        return body


class BadRequestError(ServeError):
    status = 400
    reason = "bad request"


class AuthError(ServeError):
    status = 401
    reason = "unauthorized"


class ShedError(ServeError):
    """Load shedding: the bounded queue (depth or bytes) is full."""

    status = 429
    reason = "overloaded"


class BreakerOpenError(ServeError):
    """The execution substrate is failing; fast-fail instead of queueing."""

    status = 503
    reason = "circuit breaker open"


class DrainingError(ServeError):
    """The server is draining (SIGTERM); no new work is admitted."""

    status = 503
    reason = "draining"


class DeadlineError(ServeError):
    """The request's deadline cannot (or could not) be met."""

    status = 504
    reason = "deadline unmeetable"


class WorkerFailedError(ServeError):
    """Dispatch failed beneath the breaker threshold (single batch lost)."""

    status = 503
    reason = "inference backend failed"


# ----------------------------------------------------------------------
def authenticate(headers: Mapping[str, str], token: Optional[str]) -> None:
    """Static bearer-token check; no-op when no token is configured."""
    if not token:
        return
    supplied = headers.get("authorization", "")
    if supplied != f"Bearer {token}":
        raise AuthError("missing or invalid bearer token")


def clamp_deadline_ms(value: float) -> float:
    return min(max(float(value), MIN_DEADLINE_MS), MAX_DEADLINE_MS)


def decode_infer_request(
    body: bytes,
    input_shape: Sequence[int],
    default_deadline_ms: float,
    max_timesteps: int,
) -> Tuple[np.ndarray, int, float]:
    """Validate one ``POST /v1/infer`` body.

    Expected JSON::

        {"input": <nested list, shape (C, H, W)>,
         "deadline_ms": 50.0,          # optional latency budget
         "timesteps": 8}               # optional, <= the server's T

    Returns ``(batch, timesteps, deadline_ms)`` where ``batch`` has the
    single-sample shape ``(1, C, H, W)`` ready for coalescing.  Every
    malformed case raises :class:`BadRequestError` here, before the
    request costs anything downstream.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise BadRequestError(f"body is not JSON ({error})") from None
    if not isinstance(payload, dict) or "input" not in payload:
        raise BadRequestError('body must be a JSON object with an "input" field')
    try:
        batch = np.asarray(payload["input"], dtype=np.float32)
    except (TypeError, ValueError) as error:
        raise BadRequestError(f"input is not a numeric tensor ({error})") from None
    expected = tuple(int(s) for s in input_shape)
    if batch.shape == expected:
        batch = batch[None, ...]
    elif batch.shape != (1,) + expected:
        raise BadRequestError(
            f"input shape {batch.shape} does not match the served model's "
            f"single-sample shape {expected}"
        )
    if not np.all(np.isfinite(batch)):
        raise BadRequestError("input contains non-finite values")

    timesteps = payload.get("timesteps", max_timesteps)
    if not isinstance(timesteps, int) or isinstance(timesteps, bool):
        raise BadRequestError("timesteps must be an integer")
    if not 1 <= timesteps <= max_timesteps:
        raise BadRequestError(
            f"timesteps must be in [1, {max_timesteps}] (the served model's T)"
        )

    deadline_ms = payload.get("deadline_ms", default_deadline_ms)
    if not isinstance(deadline_ms, (int, float)) or isinstance(deadline_ms, bool):
        raise BadRequestError("deadline_ms must be a number")
    if deadline_ms <= 0:
        raise BadRequestError("deadline_ms must be positive")
    return batch, timesteps, clamp_deadline_ms(deadline_ms)


def retry_after_header(seconds: Optional[float]) -> dict:
    """A ``Retry-After`` header from a seconds hint (ceil to >= 1)."""
    if seconds is None:
        return {}
    return {"Retry-After": str(max(1, int(-(-seconds // 1))))}
