"""Robust async inference serving for converted SNNs.

The paper's accelerator exists to serve inference at scale; this
package is the reproduction's serving layer — the part that takes the
engine stack (warm :class:`~repro.snn.engines.auto.AutoEngine` plans,
supervised sharding) and puts a deadline-aware, failure-honest HTTP
service in front of it, stdlib-only:

* :mod:`repro.serve.app` — the asyncio HTTP server, lifecycle and
  graceful SIGTERM drain;
* :mod:`repro.serve.batcher` — bounded admission queue, deadline-aware
  micro-batching, load shedding, timestep degradation;
* :mod:`repro.serve.breaker` — circuit breaker over the engine worker;
* :mod:`repro.serve.metrics` — the JSON ``/metrics`` snapshot;
* :mod:`repro.serve.middleware` — error taxonomy, auth, request
  decoding;
* :mod:`repro.serve.pool` — N process-backed engine replicas behind
  the worker interface (``--serve-workers N``);
* :mod:`repro.serve.shm` — the shared-memory slab ring the pool moves
  batches and per-step logits through, zero-copy.

Start one with ``python -m repro.cli serve`` or programmatically via
:class:`~repro.serve.app.InferenceServer` /
:class:`~repro.serve.app.ServerHandle`.
"""

from __future__ import annotations

from repro.serve.app import (
    InferenceServer,
    ServeConfig,
    ServerHandle,
    build_demo_network,
)
from repro.serve.batcher import (
    BatcherConfig,
    DegradePolicy,
    InferenceRequest,
    MicroBatcher,
    ServiceEstimator,
)
from repro.serve.breaker import CLOSED, CircuitBreaker, HALF_OPEN, OPEN
from repro.serve.metrics import LatencyReservoir, ServingMetrics, percentile
from repro.serve.pool import EngineWorkerPool, PoolRun, pool_start_method
from repro.serve.shm import (
    Slab,
    SlabError,
    SlabOverflowError,
    SlabRing,
    StaleSlabError,
    attach_slab,
    create_slab,
    list_segments,
)
from repro.serve.middleware import (
    AuthError,
    BadRequestError,
    BreakerOpenError,
    DeadlineError,
    DrainingError,
    ServeError,
    ShedError,
    WorkerFailedError,
    authenticate,
    decode_infer_request,
)

__all__ = [
    "AuthError",
    "BadRequestError",
    "BatcherConfig",
    "BreakerOpenError",
    "CLOSED",
    "CircuitBreaker",
    "DeadlineError",
    "DegradePolicy",
    "DrainingError",
    "EngineWorkerPool",
    "HALF_OPEN",
    "InferenceRequest",
    "InferenceServer",
    "LatencyReservoir",
    "MicroBatcher",
    "OPEN",
    "PoolRun",
    "ServeConfig",
    "ServeError",
    "ServerHandle",
    "ServiceEstimator",
    "ServingMetrics",
    "ShedError",
    "Slab",
    "SlabError",
    "SlabOverflowError",
    "SlabRing",
    "StaleSlabError",
    "WorkerFailedError",
    "attach_slab",
    "authenticate",
    "build_demo_network",
    "create_slab",
    "decode_infer_request",
    "list_segments",
    "percentile",
    "pool_start_method",
]
