"""Shared-memory slab transport for the process-parallel serving pool.

The pool (:mod:`repro.serve.pool`) moves every batch between the
asyncio front-end and its engine replica processes through
``multiprocessing.shared_memory`` segments instead of pickled queue
payloads: the batcher writes the stacked ``(N, ...)`` input in place,
the replica maps the same pages read-only, and the per-step cumulative
logits come back the same way.  Nothing but a ~100-byte descriptor ever
crosses a pipe.

Each segment ("slab") reserves :data:`HEADER_SIZE` bytes for a framing
header — magic, a monotonically increasing **generation tag**, dtype
and shape — so a reader can (a) reconstruct the array with zero
out-of-band metadata and (b) reject a stale frame left over from a
previous request that recycled the same slab (:class:`StaleSlabError`).
The payload is written *before* the header: a reader that observes the
expected generation observes a completed payload.

Slabs are owned by the parent process and recycled through a
:class:`SlabRing` free-list; replicas only ever *attach* (and must not
let Python 3.11's resource tracker unlink on their behalf — see
:func:`attach_slab`).  The ring guarantees ``unlink()`` of every
segment on drain and, via ``atexit``, on crash of the owning process.
"""

from __future__ import annotations

import atexit
import logging
import math
import os
import secrets
import struct
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional

import numpy as np

logger = logging.getLogger(__name__)

#: Magic bytes opening every framed slab payload.
SLAB_MAGIC = b"RSL1"

#: Maximum array rank the frame header can describe.
MAX_DIMS = 8

# Little-endian: magic, generation, dtype string, ndim, shape dims.
_HEADER = struct.Struct("<4sQ16sQ" + "Q" * MAX_DIMS)

#: Bytes reserved at the front of every slab for the frame header — a
#: power of two so the payload starts aligned for any numpy dtype.
HEADER_SIZE = 128

#: Name prefix shared by every serving-pool segment, so smoke tests and
#: operators can audit ``/dev/shm`` for leaks with one glob.
SEGMENT_PREFIX = "repro-pool"


class SlabError(RuntimeError):
    """Malformed slab frame (bad magic, rank, dtype, or size)."""


class StaleSlabError(SlabError):
    """The slab's generation tag does not match the expected one."""


class SlabOverflowError(SlabError):
    """The array does not fit in the slab's payload capacity."""


def write_array(buf, array: np.ndarray, generation: int) -> None:
    """Frame ``array`` into ``buf`` (a slab's buffer) under ``generation``.

    The payload lands first and the generation-carrying header last, so
    a concurrent reader polling for the new generation never observes a
    half-written payload behind a fresh tag.
    """
    if not array.flags["C_CONTIGUOUS"]:
        # Note: ascontiguousarray would promote 0-d arrays to 1-d;
        # 0-d arrays are always contiguous, so they never reach it.
        array = np.ascontiguousarray(array)
    if array.ndim > MAX_DIMS:
        raise SlabError(f"array rank {array.ndim} exceeds MAX_DIMS={MAX_DIMS}")
    if HEADER_SIZE + array.nbytes > len(buf):
        raise SlabOverflowError(
            f"array needs {array.nbytes} payload bytes; slab holds "
            f"{len(buf) - HEADER_SIZE}"
        )
    dtype_str = array.dtype.str.encode("ascii")
    if len(dtype_str) > 16:
        raise SlabError(f"dtype tag {array.dtype.str!r} too long to frame")
    dest = np.ndarray(array.shape, dtype=array.dtype, buffer=buf, offset=HEADER_SIZE)
    dest[...] = array
    del dest  # release the exported buffer so close() stays possible
    shape = list(array.shape) + [0] * (MAX_DIMS - array.ndim)
    buf[: _HEADER.size] = _HEADER.pack(
        SLAB_MAGIC, int(generation), dtype_str.ljust(16, b"\0"),
        array.ndim, *shape,
    )


def read_array(buf, expected_generation: Optional[int] = None,
               copy: bool = True) -> np.ndarray:
    """Reconstruct the framed array from ``buf``.

    With ``expected_generation`` set, a mismatching tag raises
    :class:`StaleSlabError` — the frame belongs to a different request
    that recycled this slab.  ``copy=False`` returns a view into the
    shared pages (caller must drop it before the segment closes).
    """
    magic, generation, dtype_raw, ndim, *dims = _HEADER.unpack_from(buf, 0)
    if magic != SLAB_MAGIC:
        raise SlabError(f"bad slab magic {magic!r}")
    if expected_generation is not None and generation != int(expected_generation):
        raise StaleSlabError(
            f"slab frame has generation {generation}, expected "
            f"{int(expected_generation)}"
        )
    if not 0 <= ndim <= MAX_DIMS:
        raise SlabError(f"bad slab rank {ndim}")
    try:
        dtype = np.dtype(dtype_raw.rstrip(b"\0").decode("ascii"))
    except (TypeError, UnicodeDecodeError) as error:
        raise SlabError(f"bad slab dtype tag: {error}") from error
    shape = tuple(int(d) for d in dims[:ndim])
    nbytes = dtype.itemsize * math.prod(shape)
    if HEADER_SIZE + nbytes > len(buf):
        raise SlabError(
            f"frame claims {nbytes} payload bytes; slab holds "
            f"{len(buf) - HEADER_SIZE}"
        )
    view = np.ndarray(shape, dtype=dtype, buffer=buf, offset=HEADER_SIZE)
    return view.copy() if copy else view


class Slab:
    """One shared-memory segment plus its framing state."""

    __slots__ = ("shm", "owner", "generation")

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self.shm = shm
        self.owner = owner
        #: Last generation written through *this* handle (informational;
        #: the authoritative tag lives in the header itself).
        self.generation = 0

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def capacity(self) -> int:
        return self.shm.size

    def write(self, array: np.ndarray, generation: int) -> None:
        write_array(self.shm.buf, array, generation)
        self.generation = int(generation)

    def read(self, expected_generation: Optional[int] = None,
             copy: bool = True) -> np.ndarray:
        return read_array(self.shm.buf, expected_generation, copy=copy)

    def close(self) -> None:
        try:
            self.shm.close()
        except (OSError, BufferError):
            # A still-exported numpy view keeps the mapping alive; the
            # process exit will reclaim it.
            pass

    def unlink(self) -> None:
        if not self.owner:
            return
        try:
            self.shm.unlink()
        except (FileNotFoundError, OSError):
            pass


def create_slab(name: str, payload_bytes: int) -> Slab:
    """Create (and own) a named segment sized for ``payload_bytes``."""
    shm = shared_memory.SharedMemory(
        name=name, create=True, size=HEADER_SIZE + int(payload_bytes)
    )
    return Slab(shm, owner=True)


def attach_slab(name: str) -> Slab:
    """Attach to an existing segment without taking ownership.

    Python 3.11's ``SharedMemory`` registers *attachments* with the
    resource tracker too (bpo-39959), so a replica process exiting would
    unlink segments the parent still serves from.  Attachers never own
    the segment: unregister immediately after mapping.
    """
    shm = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    return Slab(shm, owner=False)


def list_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Names under ``/dev/shm`` starting with ``prefix`` (Linux; else [])."""
    root = "/dev/shm"
    if not os.path.isdir(root):
        return []
    return sorted(n for n in os.listdir(root) if n.startswith(prefix))


class SlabRing:
    """Parent-owned pool of reusable framed slabs.

    ``acquire`` hands out a free slab with enough payload capacity
    (minting or growing segments on demand), ``release`` returns it to
    the free-list, and ``unlink_all`` — called on drain and registered
    via ``atexit`` against crashes — destroys every segment exactly
    once.  Fork children inherit the object *and* the parent's atexit
    hook, so destruction is guarded by the creating pid: replicas can
    never unlink the parent's segments.
    """

    def __init__(self, prefix: Optional[str] = None) -> None:
        pid = os.getpid()
        self.prefix = prefix or f"{SEGMENT_PREFIX}-{pid}-{secrets.token_hex(3)}"
        self._owner_pid = pid
        self._lock = threading.Lock()
        self._slabs: Dict[str, Slab] = {}
        self._free: List[str] = []
        self._generation = 0
        self._counter = 0
        self._closed = False
        atexit.register(self.unlink_all)

    def next_generation(self) -> int:
        with self._lock:
            self._generation += 1
            return self._generation

    def acquire(self, payload_bytes: int) -> Slab:
        """A free slab holding >= ``payload_bytes``, created on demand."""
        need = int(payload_bytes)
        with self._lock:
            if self._closed:
                raise SlabError("slab ring is closed")
            for i, name in enumerate(self._free):
                if self._slabs[name].capacity - HEADER_SIZE >= need:
                    del self._free[i]
                    return self._slabs[name]
            # Every free slab is too small (or none exist).  Retire one
            # undersized free segment before minting, so a burst of
            # larger batches migrates the ring instead of growing it.
            if self._free:
                victim = self._free.pop(0)
                slab = self._slabs.pop(victim)
                slab.close()
                slab.unlink()
            self._counter += 1
            name = f"{self.prefix}-{self._counter}"
            slab = create_slab(name, need)
            self._slabs[name] = slab
            return slab

    def release(self, slab: Slab) -> None:
        """Return ``slab`` to the free-list for recycling."""
        with self._lock:
            if not self._closed and slab.name in self._slabs:
                if slab.name not in self._free:
                    self._free.append(slab.name)
                return
        # Ring already drained: the segment was (or is being) unlinked
        # by unlink_all; just drop this handle's mapping.
        slab.close()

    def bytes_in_flight(self) -> int:
        """Total capacity of slabs currently checked out to requests."""
        with self._lock:
            return sum(
                slab.capacity for name, slab in self._slabs.items()
                if name not in self._free
            )

    def total_bytes(self) -> int:
        with self._lock:
            return sum(slab.capacity for slab in self._slabs.values())

    def slab_count(self) -> int:
        with self._lock:
            return len(self._slabs)

    def snapshot(self) -> dict:
        with self._lock:
            total = sum(slab.capacity for slab in self._slabs.values())
            free = sum(
                self._slabs[name].capacity for name in self._free
                if name in self._slabs
            )
            return {
                "prefix": self.prefix,
                "slabs": len(self._slabs),
                "free_slabs": len(self._free),
                "total_bytes": total,
                "bytes_in_flight": total - free,
                "generation": self._generation,
            }

    def unlink_all(self) -> None:
        """Destroy every segment.  Idempotent; creator-process only."""
        if os.getpid() != self._owner_pid:
            return
        with self._lock:
            self._closed = True
            slabs = list(self._slabs.values())
            self._slabs.clear()
            self._free.clear()
        for slab in slabs:
            slab.close()
            slab.unlink()
