"""Process-parallel engine replicas behind one ``EngineWorker``-shaped facade.

One :class:`~repro.snn.engines.service.EngineWorker` serializes every
batch through a single GIL-bound thread, so serving throughput is
capped at one core.  :class:`EngineWorkerPool` replicates the engine
across **N worker processes** and keeps the rest of the serving stack
unchanged: it duck-types the worker's surface (``run_async`` /
``submit`` / counters / ``planner_snapshot`` / ``health_probe`` /
``shutdown``) plus a ``capacity`` attribute the micro-batcher uses to
keep up to N batches in flight.

Transport is the :mod:`repro.serve.shm` slab ring — input batches and
per-step cumulative logits cross the process boundary in place through
``multiprocessing.shared_memory`` segments; only a ~100-byte descriptor
(slab names, generation tag, T, density) rides the queues.  Slabs are
recycled, generation tags reject stale frames, and the parent-owned
ring guarantees ``unlink()`` on drain and (via ``atexit``) on crash.

Replication strategy:

* **fork** (Linux/macOS): replicas are forked *after* the parent probes
  the engine, so model weights, compiled execution plans and the cost
  model are inherited copy-on-write — zero weight copies, and every
  replica starts from the identical plan cache (which is what keeps
  pool responses bit-identical to the single-worker path).  The
  inherited ``AutoEngine`` owner-pid guard means replicas never write
  the plan file.
* **spawn** (elsewhere): the model and engine spec are pickled once per
  replica at start — a one-time weight broadcast, never per-request.

Scheduling is least-outstanding-work: each dispatch lands on the live
replica with the smallest sum of queued sample-timesteps whose
per-replica circuit breaker admits traffic.  A replica that hangs past
the worker timeout is killed and rebuilt alone; a replica that *dies*
(crash, OOM-kill, chaos test) has its outstanding descriptors re-queued
onto surviving replicas — input slabs are parent-owned and still valid —
so the pool keeps answering through a replica's death.
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import queue as queue_module
import signal
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.breaker import CircuitBreaker
from repro.serve.shm import Slab, SlabError, SlabRing, attach_slab
from repro.snn.engines.service import ProbeResult, WorkerTimeout

logger = logging.getLogger(__name__)

#: Times a dispatch may be (re)assigned across replica deaths before it
#: fails out to the caller — bounds the blast radius of a poison batch
#: that crashes every replica it touches.
MAX_DISPATCH_ATTEMPTS = 2

#: Replica-side cap on cached slab attachments (segments are recycled
#: by name, so steady state is a handful; retired names age out).
_ATTACH_CACHE_LIMIT = 64


def pool_start_method() -> str:
    """``"fork"`` where available (zero-copy weights), else ``"spawn"``."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


# ----------------------------------------------------------------------
# Replica process
# ----------------------------------------------------------------------
def _materialise_engine(payload: dict):
    """Build the replica's bound engine from the start-method payload."""
    if payload["mode"] == "fork":
        # Nothing was pickled: the engine (weights, plan cache, cost
        # model) arrived copy-on-write through fork.
        return payload["engine"]
    from repro.snn.engines import make_engine

    engine = make_engine(payload["spec"])
    engine.bind(payload["model"])
    plan_path = payload.get("plan_path")
    loader = getattr(engine, "load_plans", None)
    if plan_path and loader is not None:
        try:
            loader(plan_path, missing_ok=True)
        except Exception:  # noqa: BLE001 - plans are a cache, never required
            logger.warning("replica could not load plans from %s", plan_path)
    return engine


def _replica_main(index: int, payload: dict, request_queue, response_queue) -> None:
    """One replica: attach slabs, run batches, frame results back.

    Replicas never own segments — they attach, compute, write the
    response frame under the request's generation tag, and answer with
    a small status message.  All exits (sentinel, queue EOF) leave the
    parent's segments untouched.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    engine = _materialise_engine(payload)
    policy = payload.get("policy")
    workers = int(payload.get("workers", 1))
    shard_mode = payload.get("shard_mode", "auto")
    attached: Dict[str, Slab] = {}

    def _attach(name: str) -> Slab:
        slab = attached.get(name)
        if slab is None:
            if len(attached) >= _ATTACH_CACHE_LIMIT:
                _, old = attached.popitem()
                old.close()
            slab = attach_slab(name)
            attached[name] = slab
        return slab

    while True:
        try:
            item = request_queue.get()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if item is None:
            break
        generation = item.get("generation")
        response = {
            "req": item.get("req"), "replica": index, "generation": generation,
            "attempt": item.get("attempt"),
        }
        x = None
        try:
            x = _attach(item["input"]).read(
                expected_generation=generation, copy=False
            )
            density = item.get("density")
            observe = getattr(engine, "observe_density_prior", None)
            if observe is not None and density is not None:
                observe(item.get("kind", "dense"), float(density))
            run = engine.run(
                x,
                int(item["timesteps"]),
                per_step=True,
                workers=workers,
                shard_mode=shard_mode,
                shard_policy=policy,
            )
            _attach(item["output"]).write(np.stack(run.per_step), generation)
            response.update(
                ok=True,
                stats={
                    "shard_failures": len(run.stats.shard_failures),
                    "degraded_shard_mode": run.stats.degraded_shard_mode or "",
                    "replan_triggered": bool(run.stats.replan_triggered),
                    "wall_clock_seconds": float(run.stats.wall_clock_seconds),
                },
            )
        except BaseException as error:  # noqa: BLE001 - replica must answer
            response.update(ok=False, error=f"{type(error).__name__}: {error}")
        finally:
            del x  # drop the shared view before any slab close
        try:
            response_queue.put(response)
        except (EOFError, OSError):
            break
    for slab in attached.values():
        slab.close()


# ----------------------------------------------------------------------
# Parent-side bookkeeping
# ----------------------------------------------------------------------
@dataclass
class _Dispatch:
    """One in-flight batch: its slabs, descriptor, and caller future."""

    rid: int
    descriptor: dict
    input_slab: Slab
    output_slab: Slab
    generation: int
    work: int                       # sample-timesteps, for scheduling
    timesteps: int
    per_step: bool
    future: Future = field(default_factory=Future)
    replica: Optional["_Replica"] = None
    attempts: int = 0


class _Replica:
    """A replica process plus its queue, breaker and outstanding work."""

    def __init__(self, index: int, breaker: CircuitBreaker) -> None:
        self.index = index
        self.breaker = breaker
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.request_queue = None
        self.outstanding: Dict[int, _Dispatch] = {}
        self.restarts = 0
        self.completed = 0
        self.stopping = False

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def outstanding_work(self) -> int:
        return sum(d.work for d in self.outstanding.values())


@dataclass
class _PoolStats:
    """Minimal ``RunStats``-shaped view for pool responses."""

    batch_size: int
    timesteps: int
    engine: str
    wall_clock_seconds: float
    shard_failures: tuple = ()
    degraded_shard_mode: str = ""
    replan_triggered: bool = False


@dataclass
class PoolRun:
    """``EngineRun``-shaped result assembled from a replica's frame."""

    logits: np.ndarray
    stats: _PoolStats
    per_step: Optional[List[np.ndarray]] = None


class EngineWorkerPool:
    """N process-backed engine replicas behind the worker interface.

    Parameters mirror :class:`EngineWorker` where they overlap; the
    engine must already be bound.  The parent runs warm-up probes
    through its own engine *before* starting replicas so fork children
    inherit compiled plans and the pool learns the logit geometry it
    sizes response slabs with.
    """

    def __init__(
        self,
        engine,
        replicas: int,
        policy=None,
        workers: int = 1,
        shard_mode: str = "auto",
        probe_shape: Optional[Sequence[int]] = None,
        probe_timesteps: int = 2,
        serve_timesteps: Optional[int] = None,
        max_batch_size: int = 8,
        breaker_failure_threshold: int = 3,
        breaker_reset_seconds: float = 2.0,
        spawn_spec: Optional[str] = None,
        plan_path: Optional[str] = None,
        slab_prefix: Optional[str] = None,
    ) -> None:
        if engine.model is None:
            raise ValueError("engine must be bound to a model (call bind() first)")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if probe_shape is None:
            raise ValueError("the pool needs probe_shape to size response slabs")
        self._engine = engine
        self.policy = policy
        self.workers = int(workers)
        self.shard_mode = shard_mode
        self.probe_shape: Tuple[int, ...] = tuple(int(s) for s in probe_shape)
        self.probe_timesteps = int(probe_timesteps)
        self.capacity = int(replicas)
        self.max_batch_size = int(max_batch_size)
        self.start_method = pool_start_method()
        self._spawn_spec = spawn_spec
        self._plan_path = plan_path

        # Worker-interface counters (the batcher and /metrics read these).
        self.restarts = 0
        self.runs_completed = 0
        self.shard_failures = 0
        self.last_degraded_mode = ""
        self.replans_seen = 0

        self._lock = threading.Lock()
        self._closed = False
        self._rid_counter = 0
        self._dispatches: Dict[int, _Dispatch] = {}

        # Warm the parent engine before forking: compiles plans for the
        # single-sample and full-batch keys (inherited by replicas) and
        # reveals the logit dtype/width the response slabs are sized by.
        probe = np.zeros((1,) + self.probe_shape, dtype=np.float32)
        serve_t = int(serve_timesteps or self.probe_timesteps)
        warm = self._engine.run(probe, serve_t, per_step=True)
        self.classes = int(warm.logits.shape[-1])
        self._logit_dtype = warm.logits.dtype
        if self.max_batch_size > 1:
            batch = np.zeros(
                (self.max_batch_size,) + self.probe_shape, dtype=np.float32
            )
            self._engine.run(batch, serve_t, per_step=True)

        self.ring = SlabRing(prefix=slab_prefix)
        self._context = multiprocessing.get_context(self.start_method)
        self._response_queue = self._context.Queue()
        self._replicas: List[_Replica] = []
        for index in range(self.capacity):
            replica = _Replica(
                index,
                CircuitBreaker(
                    failure_threshold=breaker_failure_threshold,
                    reset_timeout=breaker_reset_seconds,
                    name=f"replica-{index}",
                ),
            )
            self._start_replica(replica)
            self._replicas.append(replica)
        self._reader = threading.Thread(
            target=self._reader_loop, name="pool-reader", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------------
    # Replica lifecycle
    # ------------------------------------------------------------------
    def _replica_payload(self) -> dict:
        if self.start_method == "fork":
            # Process args are not pickled under fork: the engine and
            # policy ride into the child copy-on-write.
            return {
                "mode": "fork",
                "engine": self._engine,
                "policy": self.policy,
                "workers": self.workers,
                "shard_mode": self.shard_mode,
            }
        return {
            "mode": "spawn",
            "spec": self._spawn_spec or "auto",
            "model": self._engine.model,
            "plan_path": self._plan_path,
            "policy": None,  # ShardPolicy is rebuilt as default on spawn
            "workers": self.workers,
            "shard_mode": self.shard_mode,
        }

    def _start_replica(self, replica: _Replica) -> None:
        replica.request_queue = self._context.Queue()
        replica.process = self._context.Process(
            target=_replica_main,
            args=(
                replica.index,
                self._replica_payload(),
                replica.request_queue,
                self._response_queue,
            ),
            name=f"engine-replica-{replica.index}",
            daemon=True,
        )
        replica.process.start()

    def _rebuild_replica(self, replica: _Replica, reason: str) -> List[_Dispatch]:
        """Kill + restart one replica; returns its orphaned dispatches.

        Called with the pool lock held.  The process is killed *before*
        its outstanding work is re-queued, so no straggler can write a
        recycled slab after its generation moved on.
        """
        process = replica.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5.0)
        orphans = list(replica.outstanding.values())
        replica.outstanding.clear()
        replica.restarts += 1
        self.restarts += 1
        # A fresh breaker: the replacement process starts with a clean
        # failure history.
        replica.breaker = CircuitBreaker(
            failure_threshold=replica.breaker.failure_threshold,
            reset_timeout=replica.breaker.reset_timeout,
            name=f"replica-{replica.index}",
        )
        self._start_replica(replica)
        logger.warning(
            "pool replica %d rebuilt (%s); %d outstanding dispatch(es) "
            "re-queued", replica.index, reason, len(orphans),
        )
        return orphans

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _pick_replica(self) -> _Replica:
        """Least outstanding work among breaker-admitting live replicas.

        Falls back to all live replicas when every breaker is open —
        the pool's contract is to keep answering; per-replica breakers
        only *steer* load away from a flapping replica.
        """
        live = [r for r in self._replicas if r.alive() and not r.stopping]
        if not live:
            raise RuntimeError("no live replicas in the pool")
        admitting = [r for r in live if r.breaker.allow_request()[0]]
        candidates = admitting or live
        return min(candidates, key=lambda r: (r.outstanding_work(), r.index))

    def _assign(self, dispatch: _Dispatch) -> None:
        """Place one dispatch on a replica (lock held)."""
        replica = self._pick_replica()
        dispatch.replica = replica
        dispatch.attempts += 1
        # The attempt tag lets _handle_response drop a late answer from
        # a superseded attempt: a replica that finished just before its
        # SIGKILL may have enqueued a response that would otherwise be
        # taken for the re-queued attempt's and release its slabs while
        # the new replica is still working on them.
        dispatch.descriptor["attempt"] = dispatch.attempts
        replica.outstanding[dispatch.rid] = dispatch
        replica.request_queue.put(dispatch.descriptor)

    # ------------------------------------------------------------------
    # Submission (worker interface)
    # ------------------------------------------------------------------
    def submit(self, x, timesteps: int, per_step: bool = False) -> Future:
        """Frame one batch into shared memory and queue it on a replica."""
        x = np.ascontiguousarray(x)
        timesteps = int(timesteps)
        with self._lock:
            if self._closed:
                raise RuntimeError("the worker pool is shut down")
            self._rid_counter += 1
            rid = self._rid_counter
            generation = self.ring.next_generation()
            input_slab = self.ring.acquire(x.nbytes)
            input_slab.write(x, generation)
            out_bytes = (
                timesteps * x.shape[0] * self.classes * self._logit_dtype.itemsize
            )
            output_slab = self.ring.acquire(out_bytes)
            density = float(np.count_nonzero(x)) / max(x.size, 1)
            # Feed the parent engine's density prior too: /metrics
            # reports the parent's planner snapshot, and replicas built
            # after a rebuild fork from the parent — so a fresh replica
            # warm-starts from the traffic observed so far.
            observe = getattr(self._engine, "observe_density_prior", None)
            if observe is not None:
                observe("dense", density)
            dispatch = _Dispatch(
                rid=rid,
                descriptor={
                    "req": rid,
                    "input": input_slab.name,
                    "output": output_slab.name,
                    "generation": generation,
                    "timesteps": timesteps,
                    "density": density,
                    "kind": "dense",
                },
                input_slab=input_slab,
                output_slab=output_slab,
                generation=generation,
                work=int(x.shape[0]) * timesteps,
                timesteps=timesteps,
                per_step=per_step,
            )
            self._dispatches[rid] = dispatch
            try:
                self._assign(dispatch)
            except Exception as error:
                self._dispatches.pop(rid, None)
                self._release_slabs(dispatch)
                raise
        return dispatch.future

    async def run_async(
        self,
        x,
        timesteps: int,
        per_step: bool = False,
        timeout: Optional[float] = None,
    ):
        """Await one batch through the pool, with a hang deadline.

        A timeout means the assigned replica wedged: it alone is killed
        and rebuilt (:class:`WorkerTimeout` raised, feeding the global
        breaker) while the other replicas keep serving.
        """
        future = self.submit(x, timesteps, per_step)
        try:
            return await asyncio.wait_for(asyncio.wrap_future(future), timeout)
        except asyncio.TimeoutError:
            self._handle_hang(future)
            raise WorkerTimeout(
                f"pool dispatch exceeded its {timeout:.3f}s budget; the "
                f"replica was killed and rebuilt"
            ) from None

    def _handle_hang(self, future: Future) -> None:
        with self._lock:
            dispatch = next(
                (d for d in self._dispatches.values() if d.future is future), None
            )
            if dispatch is None or dispatch.replica is None:
                return
            replica = dispatch.replica
            replica.breaker.record_failure(reason="hang timeout")
            orphans = self._rebuild_replica(replica, "hang timeout")
            for orphan in orphans:
                if orphan.rid == dispatch.rid:
                    # The hung dispatch itself fails (the caller already
                    # got WorkerTimeout); innocent co-residents re-queue.
                    self._dispatches.pop(orphan.rid, None)
                    self._release_slabs(orphan)
                    continue
                self._requeue(orphan, "replica hang")

    # ------------------------------------------------------------------
    # Response handling
    # ------------------------------------------------------------------
    def _release_slabs(self, dispatch: _Dispatch) -> None:
        self.ring.release(dispatch.input_slab)
        self.ring.release(dispatch.output_slab)

    def _requeue(self, dispatch: _Dispatch, reason: str) -> None:
        """Give an orphaned dispatch another replica (lock held)."""
        if dispatch.attempts >= MAX_DISPATCH_ATTEMPTS:
            self._dispatches.pop(dispatch.rid, None)
            self._release_slabs(dispatch)
            if not dispatch.future.done():
                dispatch.future.set_exception(
                    RuntimeError(
                        f"dispatch failed after {dispatch.attempts} attempt(s) "
                        f"({reason})"
                    )
                )
            return
        try:
            self._assign(dispatch)
        except Exception as error:  # no live replica left
            self._dispatches.pop(dispatch.rid, None)
            self._release_slabs(dispatch)
            if not dispatch.future.done():
                dispatch.future.set_exception(RuntimeError(str(error)))

    def _handle_response(self, message: dict) -> None:
        rid = message.get("req")
        with self._lock:
            dispatch = self._dispatches.get(rid)
            if dispatch is None:
                return  # stale duplicate (answered via re-queue already)
            attempt = message.get("attempt")
            if attempt is not None and attempt != dispatch.attempts:
                # A superseded attempt's late answer (the replica died
                # right after responding and the work was re-queued).
                # The current attempt still owns the slabs — touching
                # them here would recycle segments under a live run.
                return
            self._dispatches.pop(rid, None)
            replica = dispatch.replica
            if replica is not None:
                replica.outstanding.pop(rid, None)
            if not message.get("ok"):
                if replica is not None:
                    replica.breaker.record_failure(
                        reason=message.get("error", "replica error")
                    )
                self._release_slabs(dispatch)
                error: Optional[Exception] = RuntimeError(
                    message.get("error", "replica failed")
                )
                result = None
            else:
                error, result = self._collect_result(dispatch, message)
                if replica is not None:
                    if error is None:
                        replica.breaker.record_success()
                        replica.completed += 1
                    else:
                        replica.breaker.record_failure(reason=str(error))
                self._release_slabs(dispatch)
                if error is None:
                    stats = result.stats
                    self.runs_completed += 1
                    self.shard_failures += len(stats.shard_failures)
                    if stats.degraded_shard_mode:
                        self.last_degraded_mode = stats.degraded_shard_mode
                    if stats.replan_triggered:
                        self.replans_seen += 1
        if dispatch.future.done():
            return
        if error is not None:
            dispatch.future.set_exception(error)
        else:
            dispatch.future.set_result(result)

    def _collect_result(
        self, dispatch: _Dispatch, message: dict
    ) -> Tuple[Optional[Exception], Optional[PoolRun]]:
        """Copy the response frame out of shared memory (lock held)."""
        try:
            stacked = dispatch.output_slab.read(
                expected_generation=dispatch.generation, copy=True
            )
        except SlabError as slab_error:
            return RuntimeError(f"stale/corrupt response frame: {slab_error}"), None
        raw = message.get("stats") or {}
        stats = _PoolStats(
            batch_size=int(stacked.shape[1]) if stacked.ndim >= 2 else 1,
            timesteps=dispatch.timesteps,
            engine=type(self._engine).__name__,
            wall_clock_seconds=float(raw.get("wall_clock_seconds", 0.0)),
            shard_failures=tuple(range(int(raw.get("shard_failures", 0)))),
            degraded_shard_mode=str(raw.get("degraded_shard_mode", "")),
            replan_triggered=bool(raw.get("replan_triggered", False)),
        )
        per_step = [stacked[t] for t in range(stacked.shape[0])]
        run = PoolRun(
            logits=per_step[-1],
            stats=stats,
            per_step=per_step if dispatch.per_step else None,
        )
        return None, run

    def _reader_loop(self) -> None:
        last_reap = time.monotonic()
        while True:
            with self._lock:
                if self._closed and not self._dispatches:
                    return
            try:
                message = self._response_queue.get(timeout=0.2)
            except queue_module.Empty:
                self._reap_dead_replicas()
                last_reap = time.monotonic()
                continue
            except (EOFError, OSError):
                return
            self._handle_response(message)
            now = time.monotonic()
            if now - last_reap > 0.5:
                # Death detection must not starve while responses flow.
                self._reap_dead_replicas()
                last_reap = now

    def _reap_dead_replicas(self) -> None:
        """Detect crashed replicas; rebuild and re-queue their work."""
        with self._lock:
            if self._closed:
                return
            for replica in self._replicas:
                if replica.alive() or replica.stopping:
                    continue
                code = (
                    replica.process.exitcode if replica.process is not None else None
                )
                orphans = self._rebuild_replica(
                    replica, f"process died (exitcode {code})"
                )
                for orphan in orphans:
                    self._requeue(orphan, f"replica death (exitcode {code})")

    # ------------------------------------------------------------------
    # Worker-interface odds and ends
    # ------------------------------------------------------------------
    @property
    def engine(self):
        return self._engine

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._dispatches)

    def planner_snapshot(self) -> Optional[dict]:
        """The parent engine's planner state (replicas inherit it at
        start; their in-process learning stays replica-local)."""
        snapshot = getattr(self._engine, "planner_snapshot", None)
        if snapshot is None:
            return None
        return snapshot()

    def health_probe(self, timeout: Optional[float] = 5.0) -> ProbeResult:
        """One canary batch through the pool's normal scheduling path."""
        canary = np.zeros((1,) + self.probe_shape, dtype=np.float32)
        started = time.perf_counter()
        try:
            future = self.submit(canary, self.probe_timesteps)
        except Exception as error:  # noqa: BLE001 - probes report, never raise
            return ProbeResult(
                ok=False, latency_seconds=0.0,
                error=f"{type(error).__name__}: {error}",
            )
        try:
            future.result(timeout)
        except Exception as error:  # noqa: BLE001
            elapsed = time.perf_counter() - started
            if not future.done():
                self._handle_hang(future)
                return ProbeResult(
                    ok=False, latency_seconds=elapsed,
                    error=f"probe timed out after {elapsed:.3f}s",
                )
            return ProbeResult(
                ok=False, latency_seconds=elapsed,
                error=f"{type(error).__name__}: {error}",
            )
        return ProbeResult(ok=True, latency_seconds=time.perf_counter() - started)

    async def health_probe_async(
        self, timeout: Optional[float] = 5.0
    ) -> ProbeResult:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.health_probe, timeout)

    def snapshot(self) -> dict:
        """The ``/metrics`` ``pool`` section."""
        with self._lock:
            replicas = [
                {
                    "index": r.index,
                    "pid": r.pid,
                    "alive": r.alive(),
                    "depth": len(r.outstanding),
                    "outstanding_work": r.outstanding_work(),
                    "completed": r.completed,
                    "restarts": r.restarts,
                    "breaker_state": r.breaker.state,
                }
                for r in self._replicas
            ]
        return {
            "replicas": self.capacity,
            "start_method": self.start_method,
            "restarts": self.restarts,
            "runs_completed": self.runs_completed,
            "per_replica": replicas,
            "shm": self.ring.snapshot(),
        }

    def shutdown(self) -> None:
        """Stop replicas, fail stragglers, destroy every slab (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            stragglers = list(self._dispatches.values())
            self._dispatches.clear()
            for replica in self._replicas:
                replica.stopping = True
                replica.outstanding.clear()
        for dispatch in stragglers:
            if not dispatch.future.done():
                dispatch.future.set_exception(
                    RuntimeError("the worker pool is shutting down")
                )
        for replica in self._replicas:
            try:
                if replica.request_queue is not None:
                    replica.request_queue.put(None)
            except (EOFError, OSError, ValueError):
                pass
        for replica in self._replicas:
            process = replica.process
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        if self._reader.is_alive() and threading.current_thread() is not self._reader:
            self._reader.join(timeout=2.0)
        self.ring.unlink_all()
