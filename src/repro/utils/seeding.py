"""Deterministic RNG management.

The repository never touches numpy's global RNG; every stochastic
component takes an explicit ``numpy.random.Generator``.  These helpers
derive independent generators for the components of an experiment from
one master seed, so runs are reproducible and components are decoupled
(changing the data order does not change weight init).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def seed_everything(seed: int) -> np.random.Generator:
    """Return the master generator for ``seed`` (no global state)."""
    if seed < 0:
        raise ValueError("seed must be non-negative")
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, names: Sequence[str]) -> Dict[str, np.random.Generator]:
    """Independent child generators, one per named component.

    Children are derived with ``SeedSequence.spawn`` so they are
    statistically independent and stable under reordering of ``names``
    additions (each child keyed by its position).
    """
    if len(set(names)) != len(names):
        raise ValueError("component names must be unique")
    seq = np.random.SeedSequence(seed)
    children = seq.spawn(len(names))
    return {name: np.random.default_rng(child) for name, child in zip(names, children)}
