"""Shared utilities: seeding, serialisation, run logging, atomic IO."""

from repro.utils.serialization import load_state, save_state
from repro.utils.seeding import seed_everything, spawn_rngs
from repro.utils.logging import RunLogger
from repro.utils.io import atomic_write_json, atomic_write_text

__all__ = [
    "save_state",
    "load_state",
    "seed_everything",
    "spawn_rngs",
    "RunLogger",
    "atomic_write_json",
    "atomic_write_text",
]
