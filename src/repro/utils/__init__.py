"""Shared utilities: seeding, model serialisation, simple run logging."""

from repro.utils.serialization import load_state, save_state
from repro.utils.seeding import seed_everything, spawn_rngs
from repro.utils.logging import RunLogger

__all__ = ["save_state", "load_state", "seed_everything", "spawn_rngs", "RunLogger"]
