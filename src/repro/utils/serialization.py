"""Model checkpointing via compressed npz archives.

``save_state``/``load_state`` round-trip a module's ``state_dict``
(parameters and buffers) plus optional JSON-serialisable metadata —
enough to cache trained pipelines between experiment runs without any
pickle security surface.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.nn.module import Module

_META_KEY = "__repro_meta__"


def save_state(
    model: Module,
    path: Union[str, Path],
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a model's state dict (and metadata) to ``path`` (.npz)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    if _META_KEY in state:
        raise ValueError(f"state dict may not contain the reserved key {_META_KEY!r}")
    payload = dict(state)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)
    return path


def load_state(
    model: Module, path: Union[str, Path]
) -> Tuple[Module, Dict[str, Any]]:
    """Load a checkpoint written by :func:`save_state` into ``model``.

    Returns ``(model, metadata)``.  Raises KeyError/ValueError on
    key/shape mismatches (propagated from ``load_state_dict``).
    """
    path = Path(path)
    with np.load(path) as archive:
        metadata = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
    model.load_state_dict(state)
    return model, metadata
