"""Crash-safe file writes shared across the repo.

Every JSON artefact a process may be killed while writing — persisted
execution plans (``AutoEngine.save_plans``), benchmark records
(``BENCH_engines.json`` / ``BENCH_serving.json`` and the dated files
under ``benchmarks/history/``), campaign manifests and per-point
results (``repro.eval.campaign``) — goes through
:func:`atomic_write_text`: the payload lands in a same-directory temp
file first and is moved into place with ``os.replace``, which POSIX
guarantees is atomic.  A reader therefore sees either the previous
complete document or the new complete document, never a truncated one,
and a process killed mid-write leaves at worst an orphaned
``*.tmp.<pid>`` file that the next successful write of the same path
does not trip over.

Atomic rename protects against a killed *process*; it does not protect
against a killed *machine*.  On a power cut the page cache dies with
the kernel, and a rename that was only in memory can leave the file
zero-length or pointing at unwritten blocks (filesystem-dependent).
``fsync=True`` closes that window: the temp file's data is fsynced
before the rename and the containing directory is fsynced after it, so
once the call returns the record survives a crash of the whole box.
Durability costs a couple of disk round-trips per write, so it is opt-in
— the resumable-campaign records and benchmark history snapshots (the
artefacts whose entire point is surviving a kill) pass it; hot-path
cache files like execution plans, which can always be recalibrated, do
not.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Union


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (the rename itself) to stable storage.

    Platforms without directory fds (or filesystems that refuse to
    fsync them) degrade to the plain atomic-rename guarantee instead of
    failing the write — durability is best-effort hardening, never a
    reason to lose the record we just produced.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: Union[str, Path], text: str, fsync: bool = False
) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file carries the writer's pid so two processes racing on
    the same path never clobber each other's in-flight temp; whichever
    ``os.replace`` lands last wins with a complete document.  On any
    write error the temp file is removed, leaving ``path`` untouched.

    With ``fsync=True`` the temp file is flushed to disk before the
    rename and the parent directory after it, so the completed record
    survives not just a killed process but a crashed machine (see the
    module docstring for when to pay for that).
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if fsync:
            _fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(
    path: Union[str, Path], payload: Any, indent: int = 2, fsync: bool = False
) -> Path:
    """Serialise ``payload`` and write it atomically as one document."""
    return atomic_write_text(path, json.dumps(payload, indent=indent) + "\n", fsync=fsync)
