"""Crash-safe file writes shared across the repo.

Every JSON artefact a process may be killed while writing — persisted
execution plans (``AutoEngine.save_plans``), benchmark records
(``BENCH_engines.json`` and the dated files under
``benchmarks/history/``), campaign manifests and per-point results
(``repro.eval.campaign``) — goes through :func:`atomic_write_text`:
the payload lands in a same-directory temp file first and is moved into
place with ``os.replace``, which POSIX guarantees is atomic.  A reader
therefore sees either the previous complete document or the new
complete document, never a truncated one, and a process killed
mid-write leaves at worst an orphaned ``*.tmp.<pid>`` file that the
next successful write of the same path does not trip over.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Union


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file carries the writer's pid so two processes racing on
    the same path never clobber each other's in-flight temp; whichever
    ``os.replace`` lands last wins with a complete document.  On any
    write error the temp file is removed, leaving ``path`` untouched.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: Union[str, Path], payload: Any, indent: int = 2) -> Path:
    """Serialise ``payload`` and write it atomically as one document."""
    return atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
