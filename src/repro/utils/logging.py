"""Minimal structured run logging (stdout + optional JSONL file)."""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union


class RunLogger:
    """Collects timestamped metric records; optionally appends JSONL.

    Designed for experiment scripts: cheap, dependency-free, and the
    records stay inspectable in memory for tests.
    """

    def __init__(
        self, name: str = "run", path: Optional[Union[str, Path]] = None
    ) -> None:
        self.name = name
        self.path = Path(path) if path is not None else None
        self.records: List[Dict[str, Any]] = []
        self._start = time.time()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def log(self, event: str, **fields: Any) -> Dict[str, Any]:
        record = {
            "run": self.name,
            "event": event,
            "elapsed_s": round(time.time() - self._start, 3),
            **fields,
        }
        self.records.append(record)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record) + "\n")
        return record

    def metrics(self, event: str) -> List[Dict[str, Any]]:
        """All records of one event type."""
        return [r for r in self.records if r["event"] == event]

    def last(self, event: str) -> Optional[Dict[str, Any]]:
        found = self.metrics(event)
        return found[-1] if found else None
