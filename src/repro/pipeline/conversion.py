"""End-to-end ANN -> quantised ANN -> SNN conversion pipeline.

Mirrors the paper's Fig. 1: the quantised twin of a trained ANN shares
the ANN's weights (transferred by name), replaces ReLU with
:class:`repro.nn.QuantReLU` (L levels, learnable step) and uses INT8
fake-quantised convolutions, then fine-tunes; conversion swaps the
QuantReLUs for IF neurons.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import nn
from repro.data.datasets import SyntheticCIFAR
from repro.models import build_model
from repro.nn.module import Module
from repro.pipeline.trainer import TrainConfig, Trainer, evaluate_model
from repro.snn import SpikingNetwork, convert_to_snn
from repro.snn.engine import EngineSpec
from repro.snn.neurons import ResetMode


def transfer_weights(source: Module, target: Module) -> List[str]:
    """Copy parameters/buffers from ``source`` into ``target`` by name.

    Keys present in only one model (e.g. the quantised twin's
    ``weight_scale`` and ``step`` parameters) are skipped.  Returns the
    list of copied keys; raises if nothing matched (a naming-scheme
    regression, not a user error worth silently accepting).
    """
    src_state = source.state_dict()
    dst_params = dict(target.named_parameters())
    dst_buffers = {name for name, _ in target.named_buffers()}
    copied: List[str] = []
    compatible: Dict[str, np.ndarray] = {}
    for key, value in src_state.items():
        if key in dst_params and dst_params[key].data.shape == value.shape:
            compatible[key] = value
            copied.append(key)
        elif key in dst_buffers:
            compatible[key] = value
            copied.append(key)
    if not copied:
        raise ValueError("no compatible keys between source and target models")
    # Route through load_state_dict for shape validation.
    merged = target.state_dict()
    merged.update(compatible)
    target.load_state_dict(merged)
    return copied


def build_quantized_twin(
    model_name: str,
    width: float,
    num_classes: int,
    levels: int,
    init_step: float = 4.0,
    weight_bits: int = 8,
    seed: int = 0,
) -> Module:
    """Instantiate the QuantReLU/INT8 version of a registered model."""
    activation = functools.partial(nn.QuantReLU, levels=levels, init_step=init_step)
    model = build_model(
        model_name,
        num_classes=num_classes,
        width=width,
        activation=activation,
        quantize=weight_bits is not None,
        seed=seed,
    )
    if weight_bits is not None and weight_bits != 8:
        for module in model.modules():
            if isinstance(module, (nn.QuantConv2d, nn.QuantLinear)):
                module.bits = weight_bits
    return model


def calibrate_quant_steps(
    model: Module,
    x: np.ndarray,
    percentile: float = 99.0,
    batch_size: int = 128,
) -> List[float]:
    """Set every QuantReLU step to a percentile of its pre-activations.

    Runs ``x`` through ``model`` in eval mode with the quantisers in
    pass-through recording mode, then fixes each step at ``percentile``
    of the observed positive inputs.  Returns the calibrated steps.
    """
    from repro.tensor import Tensor, no_grad

    quant_layers = [m for m in model.modules() if isinstance(m, nn.QuantReLU)]
    if not quant_layers:
        raise ValueError("model has no QuantReLU layers to calibrate")
    was_training = model.training
    model.eval()
    for layer in quant_layers:
        layer.begin_calibration()
    with no_grad():
        for start in range(0, len(x), batch_size):
            model(Tensor(x[start : start + batch_size]))
    for layer in quant_layers:
        layer.end_calibration(percentile)
    if was_training:
        model.train()
    return [float(layer.step.data) for layer in quant_layers]


@dataclass
class ConversionResult:
    """Everything the accuracy experiments need from one pipeline run."""

    model_name: str
    ann_model: Module
    quant_model: Module
    snn: SpikingNetwork
    ann_accuracy: float
    quant_accuracy: float
    snn_accuracy: float
    snn_accuracy_per_step: List[float]
    timesteps: int
    thresholds: List[float] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"{self.model_name}: ANN={self.ann_accuracy:.4f} "
            f"quantANN={self.quant_accuracy:.4f} "
            f"SNN(T={self.timesteps})={self.snn_accuracy:.4f}"
        )


def run_conversion_pipeline(
    model_name: str,
    dataset: SyntheticCIFAR,
    width: float = 0.25,
    levels: int = 2,
    timesteps: int = 8,
    max_timesteps: Optional[int] = None,
    ann_config: Optional[TrainConfig] = None,
    finetune_config: Optional[TrainConfig] = None,
    neuron: str = "if",
    reset: ResetMode = ResetMode.SUBTRACT,
    v_init_fraction: float = 0.5,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    engine: EngineSpec = "dense",
    workers: int = 1,
    shard_mode: str = "auto",
) -> ConversionResult:
    """Run the full 3-stage pipeline on ``dataset``.

    ``max_timesteps`` (default ``max(timesteps, 16)``) controls how far
    the per-step accuracy curve extends — paper Figs. 7/9 plot up to ~30.
    ``engine`` selects the SNN execution backend (``"dense"``,
    ``"event"``, ``"batched"`` or the adaptive ``"auto"``), ``workers``
    the number of batch shards per inference and ``shard_mode`` their
    substrate (forked processes or threads); the accuracy numbers are
    independent of all three.
    """
    say = progress or (lambda message: None)
    ann_config = ann_config or TrainConfig(epochs=8, seed=seed)
    finetune_config = finetune_config or TrainConfig(epochs=4, lr=5e-4, seed=seed + 1)
    max_timesteps = max_timesteps or max(timesteps, 16)

    train_x, train_y = dataset.train_split()
    test_x, test_y = dataset.test_split()

    # Stage 1: FP32 ANN.
    say("stage 1/3: training FP32 ANN")
    ann = build_model(
        model_name, num_classes=dataset.num_classes, width=width, seed=seed
    )
    Trainer(ann, ann_config).fit(train_x, train_y)
    ann_acc = evaluate_model(ann, test_x, test_y)

    # Stage 2: quantised twin, fine-tuned.
    say("stage 2/3: quantisation fine-tuning (QuantReLU + INT8 weights)")
    quant = build_quantized_twin(
        model_name,
        width=width,
        num_classes=dataset.num_classes,
        levels=levels,
        seed=seed,
    )
    transfer_weights(ann, quant)
    calibrate_quant_steps(quant, train_x[: min(len(train_x), 512)])
    Trainer(quant, finetune_config).fit(train_x, train_y)
    quant_acc = evaluate_model(quant, test_x, test_y)

    # Stage 3: swap QuantReLU -> IF and evaluate over timesteps.
    say("stage 3/3: converting to SNN and evaluating over timesteps")
    thresholds = [
        m.threshold for m in quant.modules() if isinstance(m, nn.QuantReLU)
    ]
    # Convert a fresh twin so the fine-tuned quantised ANN survives in
    # the result (conversion is in-place module surgery).
    snn_twin = build_quantized_twin(
        model_name,
        width=width,
        num_classes=dataset.num_classes,
        levels=levels,
        seed=seed,
    )
    snn_twin.load_state_dict(quant.state_dict())
    snn_model = convert_to_snn(
        snn_twin, neuron=neuron, reset=reset, v_init_fraction=v_init_fraction
    )
    snn = SpikingNetwork(
        snn_model,
        timesteps=timesteps,
        engine=engine,
        workers=workers,
        shard_mode=shard_mode,
    )
    per_step = snn.accuracy_per_step(test_x, test_y, timesteps=max_timesteps)
    snn_acc = per_step[timesteps - 1]

    return ConversionResult(
        model_name=model_name,
        ann_model=ann,
        quant_model=quant,
        snn=snn,
        ann_accuracy=ann_acc,
        quant_accuracy=quant_acc,
        snn_accuracy=snn_acc,
        snn_accuracy_per_step=per_step,
        timesteps=timesteps,
        thresholds=thresholds,
    )
