"""Generic supervised training loop used by all pipeline stages."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.data.loaders import DataLoader
from repro.nn.module import Module
from repro.optim import Adam, CosineSchedule, Optimizer, SGD, clip_grad_norm
from repro.tensor import Tensor, functional as F, no_grad


@dataclass
class TrainConfig:
    """Hyper-parameters for one training stage."""

    epochs: int = 10
    batch_size: int = 64
    lr: float = 2e-3
    optimizer: str = "adam"  # "adam" | "sgd"
    momentum: float = 0.9
    weight_decay: float = 0.0
    grad_clip: Optional[float] = 5.0
    cosine_lr: bool = True
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainHistory:
    """Per-epoch records of a training run."""

    losses: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)


def evaluate_model(
    model: Module, x: np.ndarray, y: np.ndarray, batch_size: int = 256
) -> float:
    """Top-1 accuracy of an ANN in eval mode."""
    was_training = model.training
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            pred = model(Tensor(xb)).data.argmax(axis=-1)
            correct += int((pred == yb).sum())
    if was_training:
        model.train()
    return correct / len(x)


class Trainer:
    """Cross-entropy trainer with optional cosine LR and gradient clipping."""

    def __init__(self, model: Module, config: TrainConfig) -> None:
        self.model = model
        self.config = config
        self.optimizer = self._build_optimizer()
        self.schedule = (
            CosineSchedule(self.optimizer, config.epochs) if config.cosine_lr else None
        )
        self.history = TrainHistory()

    def _build_optimizer(self) -> Optimizer:
        cfg = self.config
        params = list(self.model.parameters())
        if cfg.optimizer == "adam":
            return Adam(params, lr=cfg.lr, weight_decay=cfg.weight_decay)
        if cfg.optimizer == "sgd":
            return SGD(
                params, lr=cfg.lr, momentum=cfg.momentum, weight_decay=cfg.weight_decay
            )
        raise ValueError(f"unknown optimizer {cfg.optimizer!r}")

    def fit(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: Optional[np.ndarray] = None,
        test_y: Optional[np.ndarray] = None,
        epoch_callback: Optional[Callable[[int, float], None]] = None,
    ) -> TrainHistory:
        """Train for ``config.epochs``; records loss/accuracy history."""
        cfg = self.config
        loader = DataLoader(
            train_x,
            train_y,
            batch_size=cfg.batch_size,
            shuffle=True,
            rng=np.random.default_rng(cfg.seed),
        )
        for epoch in range(cfg.epochs):
            self.model.train()
            epoch_loss = 0.0
            batches = 0
            for xb, yb in loader:
                logits = self.model(Tensor(xb))
                loss = F.cross_entropy(logits, yb)
                self.optimizer.zero_grad()
                loss.backward()
                if cfg.grad_clip is not None:
                    clip_grad_norm(self.model.parameters(), cfg.grad_clip)
                self.optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            mean_loss = epoch_loss / max(batches, 1)
            self.history.losses.append(mean_loss)
            self.history.train_accuracy.append(
                evaluate_model(self.model, train_x, train_y)
            )
            if test_x is not None and test_y is not None:
                self.history.test_accuracy.append(
                    evaluate_model(self.model, test_x, test_y)
                )
            if self.schedule is not None:
                self.schedule.step()
            if epoch_callback is not None:
                epoch_callback(epoch, mean_loss)
            if cfg.verbose:
                test_part = (
                    f" test={self.history.test_accuracy[-1]:.3f}"
                    if self.history.test_accuracy
                    else ""
                )
                print(
                    f"epoch {epoch + 1}/{cfg.epochs} loss={mean_loss:.4f} "
                    f"train={self.history.train_accuracy[-1]:.3f}{test_part}"
                )
        return self.history
