"""The paper's three-stage hardware-software co-optimisation pipeline.

Stage 1  train an FP32 ANN with ReLU activations;
Stage 2  swap ReLU -> L-level QuantReLU (learnable step) and weights ->
         INT8 fake-quantised, then fine-tune;
Stage 3  swap QuantReLU -> IF neurons (threshold = learned step,
         membrane init = threshold/2, reset-by-subtraction) and run for
         T timesteps.

:func:`run_conversion_pipeline` executes all three stages and returns
every intermediate accuracy, which is exactly the data behind the
paper's Figs. 7 and 9.
"""

from repro.pipeline.trainer import Trainer, TrainConfig, evaluate_model
from repro.pipeline.conversion import (
    ConversionResult,
    build_quantized_twin,
    run_conversion_pipeline,
    transfer_weights,
)

__all__ = [
    "Trainer",
    "TrainConfig",
    "evaluate_model",
    "ConversionResult",
    "build_quantized_twin",
    "transfer_weights",
    "run_conversion_pipeline",
]
