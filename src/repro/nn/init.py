"""Weight initialisation schemes (Kaiming / Xavier) used by the layers."""

from __future__ import annotations

import numpy as np


def kaiming_normal(
    shape, fan_in: int, rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He-normal initialisation appropriate for ReLU networks."""
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(
    shape, fan_in: int, rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
