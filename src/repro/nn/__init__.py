"""Neural-network layers on top of :mod:`repro.tensor`.

Contains everything needed to express the paper's software pipeline:
standard CNN layers (conv / batch-norm / pooling / linear), plus the
hardware-friendly quantisation layers — the L-level quantised ReLU with a
learnable step size and INT8 weight quantisers — that make a trained ANN
convertible to the accelerator's spiking domain.
"""

from repro.nn.module import Module, Parameter
from repro.nn.sequential import Sequential
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.quant import (
    QuantConv2d,
    QuantLinear,
    QuantReLU,
    dequantize_weight,
    quantize_weight_int8,
)

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Identity",
    "Dropout",
    "QuantReLU",
    "QuantConv2d",
    "QuantLinear",
    "quantize_weight_int8",
    "dequantize_weight",
]
