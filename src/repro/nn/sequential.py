"""Sequential container."""

from __future__ import annotations

from typing import Iterator

from repro.nn.module import Module
from repro.tensor import Tensor


class Sequential(Module):
    """Chain of modules applied in order.

    Children are registered under their string index so
    ``state_dict`` keys are stable (``"0.weight"``, ``"3.gamma"``, ...).
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for idx, module in enumerate(modules):
            setattr(self, str(idx), module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def __len__(self) -> int:
        return len(self._modules)

    def append(self, module: Module) -> "Sequential":
        setattr(self, str(len(self._modules)), module)
        return self
