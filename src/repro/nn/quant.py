"""Hardware-friendly quantisation layers (the paper's software half).

The conversion strategy (paper Fig. 1, following Li & Furber 2022 and Bu
et al. 2023 "QCFS") replaces each ReLU with an L-level quantised ReLU

    y = (s / L) * clip( floor(x * L / s + 1/2), 0, L )

whose step size ``s`` is *learned* per layer during fine-tuning, and
quantises the weights to INT8 with a learnable scale ``q_w`` (LSQ-style
straight-through estimators throughout).  After fine-tuning, the
quantised ReLU is swapped for an integrate-and-fire neuron with threshold
``s`` and initial membrane potential ``s/2`` (see
:mod:`repro.snn.convert`), and the INT8 weights/thresholds map directly
onto the accelerator's 8-bit datapath.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F


class QuantReLU(Module):
    """L-level quantised ReLU with a learnable step size.

    Parameters
    ----------
    levels:
        Number of quantisation levels L (the paper trains with L=2).
    init_step:
        Initial value of the learnable step size ``s`` (the clipping
        ceiling).  A good default is a high percentile of pre-activation
        values; 4.0 works for normalised inputs.

    Notes
    -----
    The forward pass is exactly the QCFS clip-floor-shift function.  The
    backward pass uses straight-through gradients for the floor and a
    clip mask, so both the inputs and ``s`` receive gradients.  When the
    module is converted to an SNN, ``step.item()`` becomes the layer's
    firing threshold.
    """

    def __init__(self, levels: int = 2, init_step: float = 4.0) -> None:
        super().__init__()
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.levels = int(levels)
        self.step = Parameter(np.float32(init_step))
        self._calibrating = False
        self._calib_values: list = []

    # ------------------------------------------------------------------
    # Step-size calibration: before fine-tuning, the step is set to a
    # high percentile of the observed positive pre-activations so the
    # learnable parameter starts near its optimum (the paper's
    # fine-tuning then only nudges it).
    # ------------------------------------------------------------------
    def begin_calibration(self) -> None:
        self._calibrating = True
        self._calib_values = []

    def end_calibration(self, percentile: float = 99.0) -> None:
        self._calibrating = False
        if self._calib_values:
            pooled = np.concatenate(self._calib_values)
            value = float(np.percentile(pooled, percentile)) if pooled.size else 0.0
            self.step.data = np.float32(max(value, 1e-2))
        self._calib_values = []

    def forward(self, x: Tensor) -> Tensor:
        if self._calibrating:
            positive = x.data[x.data > 0]
            # Subsample to bound memory during calibration sweeps.
            if positive.size > 65536:
                positive = positive[:: positive.size // 65536 + 1]
            self._calib_values.append(positive.astype(np.float32).ravel().copy())
            return x.relu()
        # Guard against the step collapsing to ~0 during optimisation.
        s = self.step.clip(1e-3, np.inf)
        ratio = x * (float(self.levels) / s)
        q = (ratio + 0.5).floor_ste().clip(0.0, float(self.levels))
        return q * (s * (1.0 / self.levels))

    @property
    def threshold(self) -> float:
        """The learned step size, used as the IF threshold after conversion."""
        return float(self.step.data)

    def extra_repr(self) -> str:
        return f"L={self.levels}, step={float(self.step.data):.4f}"


def quantize_weight_int8(
    weight: np.ndarray, scale: Optional[float] = None, bits: int = 8
) -> Tuple[np.ndarray, float]:
    """Symmetric integer quantisation of a weight array.

    Returns ``(w_int, scale)`` with ``w_int`` in
    [-2^{bits-1}, 2^{bits-1}-1] (int32 storage) such that
    ``w ≈ w_int * scale``.  When ``scale`` is None it is chosen so the
    maximum magnitude maps to the integer extreme.
    """
    qmax = 2 ** (bits - 1) - 1
    qmin = -(2 ** (bits - 1))
    if scale is None:
        max_abs = float(np.abs(weight).max())
        scale = max_abs / qmax if max_abs > 0 else 1.0
    w_int = np.clip(np.round(weight / scale), qmin, qmax).astype(np.int32)
    return w_int, float(scale)


def dequantize_weight(w_int: np.ndarray, scale: float) -> np.ndarray:
    """Inverse of :func:`quantize_weight_int8`."""
    return (w_int.astype(np.float32)) * np.float32(scale)


class _WeightFakeQuant:
    """Shared fake-quantisation forward used by QuantConv2d/QuantLinear."""

    @staticmethod
    def apply(weight: Parameter, scale: Parameter, bits: int) -> Tensor:
        qmax = float(2 ** (bits - 1) - 1)
        qmin = float(-(2 ** (bits - 1)))
        s = scale.clip(1e-6, np.inf)
        q = (weight / s).round_ste().clip(qmin, qmax)
        return q * s


class QuantConv2d(Conv2d):
    """Conv2d whose weights are fake-quantised to ``bits`` on the fly.

    The quantisation scale ``q_w`` is a learnable parameter (LSQ); during
    inference on the accelerator model the integer weights are recovered
    with :meth:`integer_weights` and streamed into the 8 kB weight
    memory.
    """

    def __init__(self, *args, bits: int = 8, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.bits = bits
        init_scale = float(np.abs(self.weight.data).max()) / (2 ** (bits - 1) - 1)
        self.weight_scale = Parameter(np.float32(max(init_scale, 1e-6)))

    def forward(self, x: Tensor) -> Tensor:
        w_q = _WeightFakeQuant.apply(self.weight, self.weight_scale, self.bits)
        return F.conv2d(x, w_q, self.bias, stride=self.stride, padding=self.padding)

    def integer_weights(self) -> Tuple[np.ndarray, float]:
        """INT-``bits`` weights and their scale, as stored in hardware."""
        return quantize_weight_int8(
            self.weight.data, scale=float(self.weight_scale.data), bits=self.bits
        )


class QuantLinear(Linear):
    """Linear layer with fake-quantised weights (see :class:`QuantConv2d`)."""

    def __init__(self, *args, bits: int = 8, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.bits = bits
        init_scale = float(np.abs(self.weight.data).max()) / (2 ** (bits - 1) - 1)
        self.weight_scale = Parameter(np.float32(max(init_scale, 1e-6)))

    def forward(self, x: Tensor) -> Tensor:
        w_q = _WeightFakeQuant.apply(self.weight, self.weight_scale, self.bits)
        return F.linear(x, w_q, self.bias)

    def integer_weights(self) -> Tuple[np.ndarray, float]:
        return quantize_weight_int8(
            self.weight.data, scale=float(self.weight_scale.data), bits=self.bits
        )
