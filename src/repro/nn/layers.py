"""Standard CNN layers: convolution, batch-norm, pooling, linear.

All layers take and return :class:`repro.tensor.Tensor` in NCHW layout.
Randomness is injected through an explicit ``rng`` argument (never global
state) so experiments are reproducible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F


def _default_rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(0)


class Conv2d(Module):
    """2-D convolution layer (square kernels, symmetric padding).

    The paper's accelerator accumulates kernels row-by-row in the PE; the
    software layer is a plain cross-correlation so converted weights map
    directly onto the hardware's weight memory layout
    (C_out, C_in, K, K).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = _default_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
            )
        )
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding}"
        )


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with weight shape (out, in)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = _default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), in_features, rng, gain=1.0)
        )
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def extra_repr(self) -> str:
        return f"{self.in_features}, {self.out_features}"


class BatchNorm2d(Module):
    """Batch normalisation over (N, H, W) per channel.

    Running statistics are tracked with exponential moving averages and
    used in eval mode.  The hardware folds the eval-mode transform into
    two fixed-point coefficients per channel,
    ``y = x * G + H`` (paper eq. 2); :meth:`fold_coefficients` exposes
    exactly those values for the aggregation-core model.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init.ones(num_features))
        self.beta = Parameter(init.zeros(num_features))
        self.register_buffer("running_mean", init.zeros(num_features))
        self.register_buffer("running_var", init.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.data.mean(axis=(0, 2, 3))
            var = x.data.var(axis=(0, 2, 3))
            self._set_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean + self.momentum * mean,
            )
            # Unbiased variance for the running estimate, as torch does.
            n = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
            unbiased = var * n / max(n - 1, 1)
            self._set_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var + self.momentum * unbiased,
            )
            mu = x.mean(axis=(0, 2, 3), keepdims=True)
            centred = x - mu
            variance = (centred * centred).mean(axis=(0, 2, 3), keepdims=True)
            x_hat = centred * (variance + self.eps) ** -0.5
        else:
            shape = (1, self.num_features, 1, 1)
            mu = Tensor(self.running_mean.reshape(shape))
            var_t = Tensor(self.running_var.reshape(shape))
            x_hat = (x - mu) * (var_t + self.eps) ** -0.5
        g = self.gamma.reshape(1, self.num_features, 1, 1)
        b = self.beta.reshape(1, self.num_features, 1, 1)
        return x_hat * g + b

    def fold_coefficients(self) -> tuple[np.ndarray, np.ndarray]:
        """Return per-channel (G, H) with ``y = x * G + H`` in eval mode.

        These are the values the PS streams into the aggregation core
        (paper §III-B): G = gamma / sqrt(var + eps),
        H = beta - mean * G.
        """
        g = self.gamma.data / np.sqrt(self.running_var + self.eps)
        h = self.beta.data - self.running_mean * g
        return g.astype(np.float32), h.astype(np.float32)

    def extra_repr(self) -> str:
        return f"{self.num_features}, eps={self.eps}"


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"k={self.kernel_size}, s={self.stride}"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"k={self.kernel_size}, s={self.stride}"


class GlobalAvgPool2d(Module):
    """Spatial global average pooling, (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self._rng = _default_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"
