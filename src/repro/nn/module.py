"""Base classes for composable neural-network modules.

``Module`` provides parameter/submodule registration through attribute
assignment (the familiar torch idiom), train/eval mode propagation, and
flat ``state_dict`` serialisation used by the experiment harness to cache
trained models.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter."""

    def __init__(self, data, requires_grad: bool = True, name: Optional[str] = None):
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are auto-registered and discoverable through
    :meth:`parameters`, :meth:`named_parameters` and :meth:`modules`.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. BN running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place of re-registration."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} was never registered")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix + mod_name + ".")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for mod_name, module in self._modules.items():
            yield from module.named_modules(prefix + mod_name + ".")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield prefix + name, getattr(self, name)
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix + mod_name + ".")

    # ------------------------------------------------------------------
    # Mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = {name: None for name, _ in self.named_buffers()}
        for key, value in state.items():
            if key in own_params:
                param = own_params[key]
                if param.data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: {param.data.shape} vs {value.shape}"
                    )
                param.data = value.astype(param.data.dtype, copy=True)
            elif key in own_buffers:
                self._assign_buffer(key, value)
            else:
                raise KeyError(f"unexpected key in state_dict: {key}")

    def _assign_buffer(self, dotted: str, value: np.ndarray) -> None:
        module: Module = self
        parts = dotted.split(".")
        for part in parts[:-1]:
            module = module._modules[part]
        module._set_buffer(parts[-1], np.array(value, copy=True))

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        head = f"{type(self).__name__}({self.extra_repr()})"
        if not self._modules:
            return head
        children = []
        for name, module in self._modules.items():
            child = repr(module).replace("\n", "\n  ")
            children.append(f"  ({name}): {child}")
        return head + " {\n" + "\n".join(children) + "\n}"

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(int(p.size) for p in self.parameters())
