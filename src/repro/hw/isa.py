"""The SIA's configuration-register ABI (the PS->PL driver contract).

Paper Fig. 2 shows "configuration data" flowing from the processor into
the control/configuration block over AXI4-Lite.  This module pins that
interface down the way a hardware release would: a register map with
addresses and bit-fields, an encoder that packs a
:class:`repro.hw.config.LayerConfig` into 32-bit register writes, and a
decoder that reconstructs the configuration — so the driver ABI is
testable (encode/decode round-trips) and the mapper's output has a
concrete wire format.

Register map (word addresses, 32-bit registers):

====  =================  ==========================================
addr  name               fields (msb:lsb)
====  =================  ==========================================
0x00  CTRL               0: start, 1: soft reset, 2: write enable
0x01  LAYER_KIND         1:0 kind (0 conv, 1 fc, 2 avgpool)
0x02  GEOM_IN            31:20 in_channels, 19:10 height, 9:0 width
0x03  GEOM_OUT           31:20 out_channels, 19:10 height, 9:0 width
0x04  KERNEL             19:12 padding, 11:8 stride, 7:0 kernel
0x05  NEURON             16: lif mode, 15:8 leak shift, 7:0 reserved
0x06  THRESHOLD          15:0 threshold (membrane LSBs)
0x07  TIMESTEPS          7:0 T
0x08  FLAGS              0: has residual, 1: frame input
====  =================  ==========================================

BN coefficient pairs (G, H) stream through a separate data port; their
count is implied by GEOM_OUT.out_channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.hw.config import LayerConfig, LayerKind

WORD_MASK = 0xFFFFFFFF

REG_CTRL = 0x00
REG_LAYER_KIND = 0x01
REG_GEOM_IN = 0x02
REG_GEOM_OUT = 0x03
REG_KERNEL = 0x04
REG_NEURON = 0x05
REG_THRESHOLD = 0x06
REG_TIMESTEPS = 0x07
REG_FLAGS = 0x08

_KIND_CODES = {LayerKind.CONV: 0, LayerKind.FC: 1, LayerKind.AVGPOOL: 2}
_KIND_FROM_CODE = {v: k for k, v in _KIND_CODES.items()}

# Field capacity limits implied by the packing below.
MAX_CHANNELS = (1 << 12) - 1      # 4095
MAX_SPATIAL = (1 << 10) - 1       # 1023
MAX_KERNEL = (1 << 8) - 1
MAX_STRIDE = (1 << 4) - 1
MAX_PADDING = (1 << 8) - 1
MAX_THRESHOLD = (1 << 16) - 1
MAX_TIMESTEPS = (1 << 8) - 1


class EncodingError(ValueError):
    """A configuration value does not fit its register field."""


def _check(value: int, limit: int, field: str) -> int:
    if not 0 <= value <= limit:
        raise EncodingError(f"{field}={value} exceeds field capacity {limit}")
    return value


@dataclass(frozen=True)
class RegisterWrite:
    """One AXI4-Lite configuration write."""

    address: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= WORD_MASK:
            raise EncodingError(f"register value {self.value:#x} exceeds 32 bits")


def encode_layer(
    config: LayerConfig,
    timesteps: int = 8,
    frame_input: bool = False,
) -> List[RegisterWrite]:
    """Pack a layer configuration into its register writes."""
    geom_in = (
        (_check(config.in_channels, MAX_CHANNELS, "in_channels") << 20)
        | (_check(config.in_height, MAX_SPATIAL, "in_height") << 10)
        | _check(config.in_width, MAX_SPATIAL, "in_width")
    )
    geom_out = (
        (_check(config.out_channels, MAX_CHANNELS, "out_channels") << 20)
        | (_check(config.out_height, MAX_SPATIAL, "out_height") << 10)
        | _check(config.out_width, MAX_SPATIAL, "out_width")
    )
    kernel = (
        (_check(config.padding, MAX_PADDING, "padding") << 12)
        | (_check(config.stride, MAX_STRIDE, "stride") << 8)
        | _check(config.kernel_size, MAX_KERNEL, "kernel_size")
    )
    neuron = (int(config.lif_mode) << 16) | (
        _check(config.leak_shift, 0xFF, "leak_shift") << 8
    )
    flags = int(config.has_residual) | (int(frame_input) << 1)
    return [
        RegisterWrite(REG_LAYER_KIND, _KIND_CODES[config.kind]),
        RegisterWrite(REG_GEOM_IN, geom_in),
        RegisterWrite(REG_GEOM_OUT, geom_out),
        RegisterWrite(REG_KERNEL, kernel),
        RegisterWrite(REG_NEURON, neuron),
        RegisterWrite(
            REG_THRESHOLD, _check(config.threshold_int, MAX_THRESHOLD, "threshold")
        ),
        RegisterWrite(REG_TIMESTEPS, _check(timesteps, MAX_TIMESTEPS, "timesteps")),
        RegisterWrite(REG_FLAGS, flags),
    ]


@dataclass(frozen=True)
class DecodedLayer:
    """Configuration reconstructed from register state."""

    kind: LayerKind
    in_channels: int
    in_height: int
    in_width: int
    out_channels: int
    out_height: int
    out_width: int
    kernel_size: int
    stride: int
    padding: int
    lif_mode: bool
    leak_shift: int
    threshold_int: int
    timesteps: int
    has_residual: bool
    frame_input: bool


def decode_layer(writes: List[RegisterWrite]) -> DecodedLayer:
    """Inverse of :func:`encode_layer` (the RTL's view of the registers)."""
    regs: Dict[int, int] = {w.address: w.value for w in writes}
    required = {
        REG_LAYER_KIND, REG_GEOM_IN, REG_GEOM_OUT, REG_KERNEL,
        REG_NEURON, REG_THRESHOLD, REG_TIMESTEPS, REG_FLAGS,
    }
    missing = required - set(regs)
    if missing:
        raise EncodingError(f"missing register writes: {sorted(missing)}")
    kind_code = regs[REG_LAYER_KIND] & 0x3
    if kind_code not in _KIND_FROM_CODE:
        raise EncodingError(f"unknown layer kind code {kind_code}")
    geom_in, geom_out = regs[REG_GEOM_IN], regs[REG_GEOM_OUT]
    kernel = regs[REG_KERNEL]
    neuron = regs[REG_NEURON]
    flags = regs[REG_FLAGS]
    return DecodedLayer(
        kind=_KIND_FROM_CODE[kind_code],
        in_channels=(geom_in >> 20) & 0xFFF,
        in_height=(geom_in >> 10) & 0x3FF,
        in_width=geom_in & 0x3FF,
        out_channels=(geom_out >> 20) & 0xFFF,
        out_height=(geom_out >> 10) & 0x3FF,
        out_width=geom_out & 0x3FF,
        kernel_size=kernel & 0xFF,
        stride=(kernel >> 8) & 0xF,
        padding=(kernel >> 12) & 0xFF,
        lif_mode=bool((neuron >> 16) & 1),
        leak_shift=(neuron >> 8) & 0xFF,
        threshold_int=regs[REG_THRESHOLD] & 0xFFFF,
        timesteps=regs[REG_TIMESTEPS] & 0xFF,
        has_residual=bool(flags & 1),
        frame_input=bool((flags >> 1) & 1),
    )


def encode_network(
    configs: List[LayerConfig], timesteps: int = 8
) -> List[Tuple[int, List[RegisterWrite]]]:
    """Register programmes for a whole network, (layer index, writes)."""
    return [
        (idx, encode_layer(cfg, timesteps=timesteps, frame_input=idx == 0))
        for idx, cfg in enumerate(configs)
    ]
