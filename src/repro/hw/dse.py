"""Design-space exploration over SIA architecture parameters.

The paper's title promises a *design methodology*; its §III-V walk one
point of the space (8x8 PEs, 16 BN lanes, 100 MHz, the §III-D memory
map) to silicon-ready numbers.  This module generalises that walk: it
sweeps architecture knobs (PE array geometry, BN-lane count, clock,
memory sizes), evaluates each candidate with the same resource /
throughput / power / latency models that reproduce Tables I-IV, applies
the platform's capacity constraints, and extracts the Pareto frontier —
i.e. it turns the paper's single design point into the methodology the
title describes.

Objectives (maximise unless noted): peak GOPS, GOPS/W, GOPS/DSP;
resource usage must fit the target device.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hw.config import ArchConfig, PYNQ_Z2
from repro.hw.power import PowerConstants, PowerModel
from repro.hw.resources import PYNQ_Z2_AVAILABLE, ResourceModel, ThroughputModel


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated architecture candidate."""

    arch: ArchConfig
    gops: float
    gops_per_watt: float
    gops_per_dsp: float
    power_watts: float
    luts: int
    ffs: int
    dsps: int
    brams: int
    fits: bool
    violations: Tuple[str, ...] = ()

    @property
    def label(self) -> str:
        return (
            f"{self.arch.pe_rows}x{self.arch.pe_cols}PE/"
            f"{self.arch.num_bn_multipliers}BN@{self.arch.clock_hz / 1e6:.0f}MHz"
        )


@dataclass
class SweepSpec:
    """The swept axes; defaults bracket the paper's design point."""

    pe_rows: Sequence[int] = (4, 8, 16)
    pe_cols: Sequence[int] = (4, 8, 16)
    bn_lanes: Sequence[int] = (8, 16, 32)
    clock_mhz: Sequence[float] = (50, 100, 150, 200)
    square_arrays_only: bool = True

    def candidates(self, base: ArchConfig = PYNQ_Z2) -> Iterable[ArchConfig]:
        for rows, cols, lanes, mhz in itertools.product(
            self.pe_rows, self.pe_cols, self.bn_lanes, self.clock_mhz
        ):
            if self.square_arrays_only and rows != cols:
                continue
            yield dataclasses.replace(
                base,
                pe_rows=rows,
                pe_cols=cols,
                num_bn_multipliers=lanes,
                clock_hz=mhz * 1e6,
                name=f"SIA-{rows}x{cols}",
            )


class DesignSpaceExplorer:
    """Sweep + constrain + rank architecture candidates."""

    # Derating: clocks above this need timing closure margins the
    # 7-series fabric is unlikely to meet for this datapath.
    MAX_FABRIC_MHZ = 250.0

    def __init__(
        self,
        available: Optional[Dict[str, int]] = None,
        power_constants: PowerConstants = PowerConstants(),
    ) -> None:
        self.available = dict(available or PYNQ_Z2_AVAILABLE)
        self.power_constants = power_constants

    # ------------------------------------------------------------------
    def evaluate(self, arch: ArchConfig, activity: float = 1.0) -> DesignPoint:
        """Score one candidate with the Tables-III/IV models."""
        resources = ResourceModel(arch).report()
        used = resources.used
        violations = tuple(
            f"{key}: {used[key]} > {self.available[key]}"
            for key in ("LUT", "FF", "DSP", "BRAM")
            if used[key] > self.available[key]
        )
        if arch.clock_hz / 1e6 > self.MAX_FABRIC_MHZ:
            violations = violations + (
                f"clock: {arch.clock_hz / 1e6:.0f} MHz > "
                f"{self.MAX_FABRIC_MHZ:.0f} MHz fabric limit",
            )

        # Power scales with datapath size relative to the calibrated
        # 64-PE/16-lane baseline.
        base = PowerModel(arch, self.power_constants)
        pe_scale = arch.num_pes / 64.0
        lane_scale = arch.num_bn_multipliers / 16.0
        c = self.power_constants
        scaled = PowerConstants(
            ps_watts=c.ps_watts,
            pl_static_watts=c.pl_static_watts,
            pe_array_dynamic_watts=c.pe_array_dynamic_watts * pe_scale,
            aggregation_dynamic_watts=c.aggregation_dynamic_watts * lane_scale,
            memory_dynamic_watts=c.memory_dynamic_watts,
            interconnect_dynamic_watts=c.interconnect_dynamic_watts,
        )
        power = PowerModel(arch, scaled).total_watts(
            activity=activity, clock_hz=arch.clock_hz
        )
        gops = arch.peak_gops
        dsps = used["DSP"]
        return DesignPoint(
            arch=arch,
            gops=round(gops, 2),
            gops_per_watt=round(gops / power, 2),
            gops_per_dsp=round(gops / dsps, 2),
            power_watts=round(power, 3),
            luts=used["LUT"],
            ffs=used["FF"],
            dsps=dsps,
            brams=used["BRAM"],
            fits=not violations,
            violations=violations,
        )

    def sweep(
        self,
        spec: SweepSpec = SweepSpec(),
        base: ArchConfig = PYNQ_Z2,
        activity: float = 1.0,
        feasible_only: bool = False,
    ) -> List[DesignPoint]:
        points = [self.evaluate(a, activity) for a in spec.candidates(base)]
        if feasible_only:
            points = [p for p in points if p.fits]
        return points

    # ------------------------------------------------------------------
    @staticmethod
    def pareto_front(
        points: Sequence[DesignPoint],
        objectives: Sequence[str] = ("gops", "-luts", "-power_watts"),
    ) -> List[DesignPoint]:
        """Non-dominated subset.

        Objectives are attribute names, maximised by default; a ``-``
        prefix minimises (e.g. ``"-luts"``).  The default frontier
        trades throughput against fabric area and power — on a
        PS-dominated board, pure (GOPS, GOPS/W) degenerates to "biggest
        wins", which is exactly why the methodology must include
        resource objectives.
        """

        def value(point: DesignPoint, objective: str) -> float:
            if objective.startswith("-"):
                return -float(getattr(point, objective[1:]))
            return float(getattr(point, objective))

        feasible = [p for p in points if p.fits]
        front: List[DesignPoint] = []
        for p in feasible:
            dominated = False
            for q in feasible:
                if q is p:
                    continue
                as_good = all(value(q, o) >= value(p, o) for o in objectives)
                strictly = any(value(q, o) > value(p, o) for o in objectives)
                if as_good and strictly:
                    dominated = True
                    break
            if not dominated:
                front.append(p)
        return sorted(front, key=lambda p: value(p, objectives[0]))

    @staticmethod
    def best(
        points: Sequence[DesignPoint], objective: str = "gops_per_watt"
    ) -> DesignPoint:
        feasible = [p for p in points if p.fits]
        if not feasible:
            raise ValueError("no feasible design point")
        return max(feasible, key=lambda p: getattr(p, objective))


def paper_design_point() -> DesignPoint:
    """The paper's shipped configuration, scored by the same models."""
    return DesignSpaceExplorer().evaluate(PYNQ_Z2)
