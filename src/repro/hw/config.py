"""Architecture and per-layer configuration records.

``ArchConfig`` captures every paper-reported architectural constant of
the SIA (PE array geometry, datapath widths, memory map, clock).  The
default instance :data:`PYNQ_Z2` is the FPGA prototype of §IV-V.

``LayerConfig`` is the record the PS streams to the control/config block
per layer (Fig. 2: "Control and configuration"): layer geometry, mode
bit (IF/LIF), per-layer threshold, and the folded batch-norm
coefficients G/H of eq. (2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np


class LayerKind(str, enum.Enum):
    CONV = "conv"
    FC = "fc"
    AVGPOOL = "avgpool"


@dataclass(frozen=True)
class ArchConfig:
    """Architectural constants of the spiking inference accelerator."""

    # Spiking core (paper §III-A).
    pe_rows: int = 8
    pe_cols: int = 8
    muxes_per_pe: int = 3          # one kernel row per cycle
    adder_bits: int = 8            # weight operand width
    psum_bits: int = 16            # partial-sum / membrane width
    # Aggregation core (paper §III-B).
    bn_bits: int = 16              # batch-norm coefficient precision
    bn_frac_bits: int = 8          # fractional bits of the G coefficient
    membrane_frac_bits: int = 10   # LSB = threshold / 2**membrane_frac_bits
    num_bn_multipliers: int = 16   # fixed-point multipliers -> DSP slices
    # Memory map in bytes (paper §III-D).
    spike_in_bytes: int = 128
    residual_bytes: int = 128 * 1024
    membrane_bytes: int = 64 * 1024    # ping-pong pair (two halves)
    weight_bytes: int = 8 * 1024       # up to 64 3x3x16 kernels
    output_bytes: int = 56 * 1024
    # Platform.
    clock_hz: float = 100e6
    axi_bus_bits: int = 32
    name: str = "SIA"

    @property
    def num_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def ops_per_pe_per_cycle(self) -> int:
        """Mux-select + add per kernel-row tap: 2 ops per synapse, 3 taps."""
        return 2 * self.muxes_per_pe

    @property
    def peak_gops(self) -> float:
        """Peak throughput in GOPS (matches the paper's 38.4 at 100 MHz)."""
        return self.num_pes * self.ops_per_pe_per_cycle * self.clock_hz / 1e9

    @property
    def membrane_half_bytes(self) -> int:
        """Capacity of one ping-pong half (U1-State or U2-State)."""
        return self.membrane_bytes // 2

    @property
    def max_tile_neurons(self) -> int:
        """Neurons whose 16-bit membranes fit in one ping-pong half."""
        return self.membrane_half_bytes // (self.psum_bits // 8)

    def kernel_cycles(self, kernel_size: int) -> int:
        """Cycles for one kernel application on one input channel.

        The PE consumes one kernel row per cycle through its 3 muxes
        (wider rows take ceil(K/3) passes) plus one final cycle to
        produce the membrane contribution — 4 cycles for a 3x3 kernel,
        exactly the paper's §III-A schedule.
        """
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        row_passes = -(-kernel_size // self.muxes_per_pe)  # ceil division
        return kernel_size * row_passes + 1


#: The paper's FPGA prototype (PYNQ-Z2, 100 MHz).
PYNQ_Z2 = ArchConfig()


@dataclass
class LayerConfig:
    """Per-layer configuration streamed from the PS (Fig. 2)."""

    kind: LayerKind
    in_channels: int
    out_channels: int
    in_height: int
    in_width: int
    kernel_size: int = 3
    stride: int = 1
    padding: int = 0
    lif_mode: bool = False          # mode bit: 0 = IF, 1 = LIF
    leak_shift: int = 4             # LIF leak = 1 - 2**-leak_shift
    threshold_int: int = 1024       # threshold in membrane LSBs
    has_residual: bool = False
    name: str = ""
    # Folded BN coefficients, one pair per output channel, already in
    # fixed point: y_int = (psum * g_int) >> frac + h_int.
    g_int: Optional[np.ndarray] = field(default=None, repr=False)
    h_int: Optional[np.ndarray] = field(default=None, repr=False)
    g_frac_bits: int = 8
    # Pre-pool-folding geometry (what the table rows / PS driver see):
    # pooling folded into this layer expands the executed kernel and,
    # for the classifier, the executed fan-in, but the weights the PS
    # stores and streams are the logical ones.
    logical_kernel: Optional[int] = None
    logical_in_features: Optional[int] = None

    def __post_init__(self) -> None:
        if self.in_channels < 1 or self.out_channels < 1:
            raise ValueError("channel counts must be positive")
        if self.kind is LayerKind.CONV:
            if self.kernel_size < 1 or self.stride < 1:
                raise ValueError("invalid conv geometry")
            if self.kernel_size > self.in_height + 2 * self.padding or (
                self.kernel_size > self.in_width + 2 * self.padding
            ):
                raise ValueError(
                    f"kernel {self.kernel_size} exceeds the padded input "
                    f"({self.in_height}+2*{self.padding})"
                )
        if self.threshold_int <= 0:
            raise ValueError("threshold_int must be positive")

    @property
    def out_height(self) -> int:
        if self.kind is LayerKind.FC:
            return 1
        if self.kind is LayerKind.AVGPOOL:
            return self.in_height // self.kernel_size
        return (self.in_height + 2 * self.padding - self.kernel_size) // self.stride + 1

    @property
    def out_width(self) -> int:
        if self.kind is LayerKind.FC:
            return 1
        if self.kind is LayerKind.AVGPOOL:
            return self.in_width // self.kernel_size
        return (self.in_width + 2 * self.padding - self.kernel_size) // self.stride + 1

    @property
    def out_neurons(self) -> int:
        return self.out_channels * self.out_height * self.out_width

    @property
    def in_neurons(self) -> int:
        return self.in_channels * self.in_height * self.in_width

    @property
    def dense_macs(self) -> int:
        """Dense ANN-equivalent multiply-accumulates per inference pass."""
        if self.kind is LayerKind.FC:
            return self.in_channels * self.out_channels
        if self.kind is LayerKind.AVGPOOL:
            return self.out_neurons * self.kernel_size * self.kernel_size
        return (
            self.out_height
            * self.out_width
            * self.out_channels
            * self.in_channels
            * self.kernel_size
            * self.kernel_size
        )

    @property
    def weight_count(self) -> int:
        if self.kind is LayerKind.FC:
            return self.in_channels * self.out_channels
        if self.kind is LayerKind.AVGPOOL:
            return 0
        return (
            self.out_channels * self.in_channels * self.kernel_size * self.kernel_size
        )
