"""The aggregation core: batch normalisation and spike activation units.

Per paper §III-B the aggregation core is the only block with
multipliers: it applies the folded batch-norm transform
``y = psum * G + H`` (eq. 2) in 16-bit fixed point, adds the result to
the stored membrane potential, compares against the per-layer 16-bit
threshold, and performs reset-by-subtraction.  A mode bit selects IF
(mode=0) or LIF (mode=1); the LIF leak is a hardware-friendly
subtract-shift ``v -= v >> leak_shift``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.hw.config import ArchConfig, LayerConfig, PYNQ_Z2
from repro.hw.fixed import fixed_mul, int_limits, saturate
from repro.snn.dynamics import ResetMode, initial_membrane, neuron_step, shift_leak


class BatchNormUnit:
    """Fixed-point batch-norm: ``y_int = ((psum * g) >> frac) + h``."""

    def __init__(self, arch: ArchConfig = PYNQ_Z2) -> None:
        self.arch = arch
        self.mac_count = 0

    def apply(
        self,
        psum: np.ndarray,
        g_int: np.ndarray,
        h_int: np.ndarray,
        frac_bits: int,
    ) -> np.ndarray:
        """Apply per-channel coefficients to psum (C, ...) int arrays."""
        g = np.asarray(g_int, dtype=np.int64)
        h = np.asarray(h_int, dtype=np.int64)
        lo, hi = int_limits(self.arch.bn_bits)
        for name, coeff in (("G", g), ("H", h)):
            if coeff.min() < lo or coeff.max() > hi:
                raise ValueError(f"{name} coefficient exceeds {self.arch.bn_bits}-bit range")
        # Coefficients are per output channel; psum is (..., C, H, W).
        if psum.ndim < 3:
            raise ValueError("BN expects (..., C, H, W) partial sums")
        shape = (1,) * (psum.ndim - 3) + (-1, 1, 1)
        scaled = fixed_mul(
            np.asarray(psum, dtype=np.int64),
            g.reshape(shape),
            frac_bits,
            self.arch.psum_bits + frac_bits,  # intermediate headroom
        )
        self.mac_count += int(np.asarray(psum).size)
        return saturate(scaled + h.reshape(shape), self.arch.psum_bits)


@dataclass
class ActivationResult:
    spikes: np.ndarray          # binary uint8, same shape as membrane
    membrane: np.ndarray        # updated membrane (int)
    spike_count: int


class ActivationUnit:
    """IF / LIF activation with reset-by-subtraction in integer arithmetic.

    The membrane potential, threshold and batch-norm outputs all live on
    the same fixed-point grid (LSB = threshold / 2**membrane_frac_bits,
    chosen by the mapper); the unit itself only sees integers, like the
    RTL would.  The dynamics are the shared
    :func:`repro.snn.dynamics.neuron_step` — the very same update the
    float software neurons execute — specialised with the hardware's
    subtract-shift leak and 16-bit partial-sum saturation.
    """

    def __init__(self, arch: ArchConfig = PYNQ_Z2) -> None:
        self.arch = arch

    def initial_membrane(
        self, shape: Tuple[int, ...], threshold_int: int, v_init_fraction: float = 0.5
    ) -> np.ndarray:
        """Fresh membrane array pre-charged to ``v_init_fraction * threshold``."""
        return initial_membrane(shape, threshold_int, v_init_fraction, dtype=np.int64)

    def step(
        self,
        current: np.ndarray,
        membrane: np.ndarray,
        threshold_int: int,
        lif_mode: bool = False,
        leak_shift: int = 4,
        reset_to_zero: bool = False,
    ) -> ActivationResult:
        """Advance one timestep.

        ``current`` is the batch-normalised input (int, 16-bit range);
        ``membrane`` is the stored potential read from the ping-pong
        memory.  Returns the output spikes and the updated membrane to
        be written back to the other ping-pong bank.
        """
        v, spiked = neuron_step(
            membrane.astype(np.int64),
            np.asarray(current, dtype=np.int64),
            int(threshold_int),
            reset=ResetMode.ZERO if reset_to_zero else ResetMode.SUBTRACT,
            leak_fn=shift_leak(leak_shift) if lif_mode else None,
            clamp_fn=lambda value: saturate(value, self.arch.psum_bits),
        )
        spikes = spiked.astype(np.uint8)
        return ActivationResult(
            spikes=spikes, membrane=v, spike_count=int(spiked.sum())
        )


class AggregationCore:
    """Composition of the batch-norm and activation units with cycle model.

    The core is pipelined at ``neurons_per_cycle`` (the number of
    parallel BN multipliers feeding activation comparators), so
    processing N neurons takes ``ceil(N / neurons_per_cycle)`` cycles.
    """

    def __init__(self, arch: ArchConfig = PYNQ_Z2) -> None:
        self.arch = arch
        self.bn = BatchNormUnit(arch)
        self.activation = ActivationUnit(arch)

    @property
    def neurons_per_cycle(self) -> int:
        return self.arch.num_bn_multipliers

    def cycles_for(self, neurons: int) -> int:
        return -(-neurons // self.neurons_per_cycle)

    def process(
        self,
        psum: np.ndarray,
        membrane: np.ndarray,
        layer: LayerConfig,
        residual: Optional[np.ndarray] = None,
        reset_to_zero: bool = False,
    ) -> Tuple[ActivationResult, int]:
        """Batch-norm + (optional residual add) + activation for one timestep.

        Residual partial sums (paper §IV: "pre-computed partial sums
        are read from the processor ... accumulated with the partial
        sums present in the PL before batch normalization and spiking
        activation") arrive already on the layer's output fixed-point
        grid and are added after BN, before the threshold compare.
        Returns the activation result and the cycle count.
        """
        if layer.g_int is not None:
            current = self.bn.apply(psum, layer.g_int, layer.h_int, layer.g_frac_bits)
        else:
            current = saturate(np.asarray(psum, dtype=np.int64), self.arch.psum_bits)
        if residual is not None:
            current = saturate(
                current + np.asarray(residual, dtype=np.int64), self.arch.psum_bits
            )
        result = self.activation.step(
            current,
            membrane,
            layer.threshold_int,
            lif_mode=layer.lif_mode,
            leak_shift=layer.leak_shift,
            reset_to_zero=reset_to_zero,
        )
        return result, self.cycles_for(int(np.asarray(psum).size))
