"""PS <-> PL data-traffic accounting for a mapped network.

The paper's §III-D motivates its memory organisation with the
observation that "SNNs require more data transfer operations between
the processor and the programmable logic, as each input pattern is
encoded with binary signals lasting T timesteps".  This module makes
that statement quantitative: for a mapped network it reports, per layer
and in total, the bytes moved per inference — weights, input spikes,
output spikes, membrane swap traffic (for layers whose membranes exceed
the ping-pong capacity), residual partial sums, and configuration — and
the implied DDR bandwidth at a target frame rate.

Spike traffic supports two transfer encodings.  By default every spike
plane is billed as a full binary bitmap (one bit per neuron per
timestep — the dense worst case).  Given *measured* activity — a
:class:`repro.snn.spikes.SpikeTrace`, the :class:`repro.snn.stats.
RunStats` of a simulated run, or an input :class:`repro.snn.spikes.
SpikeStream` whose coordinates are counted directly — each plane is
billed at ``min(bitmap, events x address_bytes)``: the PS ships
whichever of bitmap or address-event (AER) coding is smaller for the
observed density, so DRAM bytes follow actual event coordinates
instead of an assumed rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.hw.config import ArchConfig, LayerKind
from repro.hw.mapper import MappedLayer, MappedNetwork
from repro.snn.spikes import SpikeStream, SpikeTrace
from repro.snn.stats import RunStats, resolve_layer_rates

#: A measured-activity source: per-synapse-layer input rates.
RateSource = Union[RunStats, SpikeTrace, Sequence[float]]


@dataclass(frozen=True)
class LayerTraffic:
    """Per-inference transfer volume of one layer (bytes)."""

    name: str
    weight_bytes: int
    spike_in_bytes: int
    spike_out_bytes: int
    membrane_swap_bytes: int
    residual_bytes: int
    config_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.weight_bytes
            + self.spike_in_bytes
            + self.spike_out_bytes
            + self.membrane_swap_bytes
            + self.residual_bytes
            + self.config_bytes
        )


@dataclass
class TrafficReport:
    layers: List[LayerTraffic]
    timesteps: int
    measured: bool = False  # spike bytes derived from observed activity

    @property
    def total_bytes(self) -> int:
        return sum(l.total_bytes for l in self.layers)

    def bandwidth_bytes_per_second(self, inferences_per_second: float) -> float:
        return self.total_bytes * inferences_per_second

    def dominant_component(self) -> str:
        sums = {
            "weights": sum(l.weight_bytes for l in self.layers),
            "spikes": sum(l.spike_in_bytes + l.spike_out_bytes for l in self.layers),
            "membranes": sum(l.membrane_swap_bytes for l in self.layers),
            "residuals": sum(l.residual_bytes for l in self.layers),
            "config": sum(l.config_bytes for l in self.layers),
        }
        return max(sums, key=sums.get)


class TrafficModel:
    """Compute per-inference PS<->PL traffic for a mapped network."""

    CONFIG_BYTES_PER_LAYER = 64  # geometry, mode, threshold, G/H pointers

    def __init__(self, arch: ArchConfig) -> None:
        self.arch = arch

    # ------------------------------------------------------------------
    @staticmethod
    def _event_coded_bytes(neurons: int, rate: float, timesteps: int) -> int:
        """AER transfer cost: one address word per event."""
        addr_bits = max(int(neurons - 1).bit_length(), 1)
        addr_bytes = -(-addr_bits // 8)
        events = rate * neurons * timesteps
        return int(math.ceil(events * addr_bytes))

    def _spike_plane_bytes(
        self, neurons: int, timesteps: int, rate: Optional[float]
    ) -> int:
        """Bytes to move one spike plane for T timesteps.

        Unknown activity ships the full bitmap; measured activity ships
        whichever of bitmap and address-event coding is smaller.
        """
        bitmap = (-(-neurons // 8)) * timesteps
        if rate is None:
            return bitmap
        return min(bitmap, self._event_coded_bytes(neurons, rate, timesteps))

    def layer_traffic(
        self,
        layer: MappedLayer,
        timesteps: int,
        input_rate: Optional[float] = None,
        output_rate: Optional[float] = None,
        frame_as_events: bool = False,
    ) -> LayerTraffic:
        """Transfer volume of one layer, optionally at measured rates.

        ``input_rate`` / ``output_rate`` are the observed nonzero
        fractions of the layer's input and output spike planes (e.g.
        from a :class:`repro.snn.spikes.SpikeTrace`); ``None`` bills
        the dense bitmap.  ``frame_as_events`` marks a frame-input
        layer that is actually fed binary events (the event-driven
        input mode), whose inbound transfer is spike-coded rather than
        an INT8 frame.
        """
        c = layer.config
        psum_bytes = self.arch.psum_bits // 8

        weight_bytes = int(layer.weights_int.size)  # INT8, one load per layer
        if layer.residual_projection is not None:
            weight_bytes += int(layer.residual_projection.weights_int.size)

        if layer.frame_input and not frame_as_events:
            # INT8 analog frame: always a dense transfer, rate or not.
            in_bits = c.in_neurons * self.arch.adder_bits
            spike_in = (-(-in_bits // 8)) * timesteps
        else:
            spike_in = self._spike_plane_bytes(c.in_neurons, timesteps, input_rate)
        spike_out = (
            self._spike_plane_bytes(c.out_neurons, timesteps, output_rate)
            if layer.spiking
            else 0
        )

        # Membrane swap: layers whose 16-bit state exceeds one ping-pong
        # half stream the overflow through DDR every timestep (read +
        # write).
        state_bytes = c.out_neurons * psum_bytes
        overflow = max(0, state_bytes - self.arch.membrane_half_bytes)
        membrane_swap = 2 * overflow * timesteps if layer.spiking else 0

        residual = 0
        if layer.residual_input_index is not None:
            residual = c.out_neurons * psum_bytes * timesteps

        # BN coefficients ride along with configuration.
        config = self.CONFIG_BYTES_PER_LAYER
        if c.g_int is not None:
            config += 2 * c.out_channels * (self.arch.bn_bits // 8)

        return LayerTraffic(
            name=layer.name,
            weight_bytes=weight_bytes,
            spike_in_bytes=spike_in,
            spike_out_bytes=spike_out,
            membrane_swap_bytes=membrane_swap,
            residual_bytes=residual,
            config_bytes=config,
        )

    def network_traffic(
        self,
        network: MappedNetwork,
        timesteps: int = 8,
        measured: Optional[RateSource] = None,
        input_stream: Optional[SpikeStream] = None,
    ) -> TrafficReport:
        """Whole-network traffic, optionally from measured spike activity.

        ``measured`` supplies one observed input rate per mapped
        synapse layer (a :class:`repro.snn.spikes.SpikeTrace`, a
        simulated run's :class:`repro.snn.stats.RunStats`, or an
        explicit sequence); each layer's output rate is read off the
        next layer's input rate (exact for chains, the same
        approximation the latency model makes at residual merges).
        ``input_stream`` counts the first layer's inbound events
        straight from COO coordinates — and supplies ``timesteps`` —
        for the event-driven input mode.
        """
        if input_stream is not None:
            timesteps = input_stream.timesteps
        rates: List[Optional[float]] = [None] * len(network.layers)
        if measured is not None:
            # The shared resolver (RunStats / SpikeTrace / sequence,
            # with the mapper's shortcut-folding fallback).
            rates = list(resolve_layer_rates(measured, len(network.layers)))
        if input_stream is not None and network.layers:
            # Observed mean density of the inbound event stream itself.
            rates[0] = input_stream.density
        layers = []
        for idx, layer in enumerate(network.layers):
            out_rate = rates[idx + 1] if idx + 1 < len(rates) else None
            layers.append(
                self.layer_traffic(
                    layer,
                    timesteps,
                    input_rate=rates[idx],
                    output_rate=out_rate,
                    frame_as_events=(idx == 0 and input_stream is not None),
                )
            )
        return TrafficReport(
            layers=layers,
            timesteps=timesteps,
            measured=measured is not None or input_stream is not None,
        )
