"""PS <-> PL data-traffic accounting for a mapped network.

The paper's §III-D motivates its memory organisation with the
observation that "SNNs require more data transfer operations between
the processor and the programmable logic, as each input pattern is
encoded with binary signals lasting T timesteps".  This module makes
that statement quantitative: for a mapped network it reports, per layer
and in total, the bytes moved per inference — weights, input spikes,
output spikes, membrane swap traffic (for layers whose membranes exceed
the ping-pong capacity), residual partial sums, and configuration — and
the implied DDR bandwidth at a target frame rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hw.config import ArchConfig, LayerKind
from repro.hw.mapper import MappedLayer, MappedNetwork


@dataclass(frozen=True)
class LayerTraffic:
    """Per-inference transfer volume of one layer (bytes)."""

    name: str
    weight_bytes: int
    spike_in_bytes: int
    spike_out_bytes: int
    membrane_swap_bytes: int
    residual_bytes: int
    config_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.weight_bytes
            + self.spike_in_bytes
            + self.spike_out_bytes
            + self.membrane_swap_bytes
            + self.residual_bytes
            + self.config_bytes
        )


@dataclass
class TrafficReport:
    layers: List[LayerTraffic]
    timesteps: int

    @property
    def total_bytes(self) -> int:
        return sum(l.total_bytes for l in self.layers)

    def bandwidth_bytes_per_second(self, inferences_per_second: float) -> float:
        return self.total_bytes * inferences_per_second

    def dominant_component(self) -> str:
        sums = {
            "weights": sum(l.weight_bytes for l in self.layers),
            "spikes": sum(l.spike_in_bytes + l.spike_out_bytes for l in self.layers),
            "membranes": sum(l.membrane_swap_bytes for l in self.layers),
            "residuals": sum(l.residual_bytes for l in self.layers),
            "config": sum(l.config_bytes for l in self.layers),
        }
        return max(sums, key=sums.get)


class TrafficModel:
    """Compute per-inference PS<->PL traffic for a mapped network."""

    CONFIG_BYTES_PER_LAYER = 64  # geometry, mode, threshold, G/H pointers

    def __init__(self, arch: ArchConfig) -> None:
        self.arch = arch

    def layer_traffic(self, layer: MappedLayer, timesteps: int) -> LayerTraffic:
        c = layer.config
        psum_bytes = self.arch.psum_bits // 8

        weight_bytes = int(layer.weights_int.size)  # INT8, one load per layer
        if layer.residual_projection is not None:
            weight_bytes += int(layer.residual_projection.weights_int.size)

        if layer.frame_input:
            in_bits = c.in_neurons * self.arch.adder_bits  # INT8 frame
        else:
            in_bits = c.in_neurons  # binary spikes
        spike_in = (-(-in_bits // 8)) * timesteps
        spike_out = (-(-c.out_neurons // 8)) * timesteps if layer.spiking else 0

        # Membrane swap: layers whose 16-bit state exceeds one ping-pong
        # half stream the overflow through DDR every timestep (read +
        # write).
        state_bytes = c.out_neurons * psum_bytes
        overflow = max(0, state_bytes - self.arch.membrane_half_bytes)
        membrane_swap = 2 * overflow * timesteps if layer.spiking else 0

        residual = 0
        if layer.residual_input_index is not None:
            residual = c.out_neurons * psum_bytes * timesteps

        # BN coefficients ride along with configuration.
        config = self.CONFIG_BYTES_PER_LAYER
        if c.g_int is not None:
            config += 2 * c.out_channels * (self.arch.bn_bits // 8)

        return LayerTraffic(
            name=layer.name,
            weight_bytes=weight_bytes,
            spike_in_bytes=spike_in,
            spike_out_bytes=spike_out,
            membrane_swap_bytes=membrane_swap,
            residual_bytes=residual,
            config_bytes=config,
        )

    def network_traffic(
        self, network: MappedNetwork, timesteps: int = 8
    ) -> TrafficReport:
        layers = [self.layer_traffic(l, timesteps) for l in network.layers]
        return TrafficReport(layers=layers, timesteps=timesteps)
