"""One processing element: three 8-bit multiplexers and an 8-bit adder.

This is the bit-true model of the paper's §III-A PE.  Each cycle the PE
consumes one kernel row: three input spike bits select between the
corresponding kernel weights and zero, and the adder tree folds the
selected weights into the running partial sum.  After all kernel rows
(one cycle per 3-wide row segment) a final cycle transfers the 16-bit
partial sum to the aggregation core.

The PE never multiplies — event-driven accumulation is what makes the
design DSP-free (Table III: only the aggregation core's batch-norm
multipliers use DSP slices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.hw.config import ArchConfig, PYNQ_Z2
from repro.hw.fixed import saturate


@dataclass
class PECycleStats:
    """Cycle/activity counters of one PE."""

    cycles: int = 0
    row_cycles: int = 0          # cycles spent folding kernel rows
    finalize_cycles: int = 0     # cycles transferring psums out
    active_rows: int = 0         # rows containing at least one spike
    skipped_rows: int = 0        # rows gated off (no spikes, event-driven)
    synaptic_ops: int = 0        # weights actually accumulated


class ProcessingElement:
    """Bit-true PE model with cycle accounting.

    Parameters
    ----------
    arch:
        Architecture constants (mux count, operand widths).
    event_driven:
        When True (hardware behaviour), rows whose spike bits are all
        zero are skipped in zero cycles by the row scheduler; when
        False every row costs a cycle (dense mode, used for the
        event-driven-vs-dense ablation).
    """

    def __init__(self, arch: ArchConfig = PYNQ_Z2, event_driven: bool = True) -> None:
        self.arch = arch
        self.event_driven = event_driven
        self.stats = PECycleStats()
        self._psum = 0

    def reset(self) -> None:
        self._psum = 0

    @property
    def psum(self) -> int:
        return self._psum

    def accumulate_row(self, spikes: Sequence[int], weights: Sequence[int]) -> int:
        """Fold one kernel-row segment (up to 3 taps) into the partial sum.

        ``spikes`` are binary selects; ``weights`` are signed 8-bit
        integers.  Returns the number of cycles consumed (0 when the row
        is gated off in event-driven mode).
        """
        if len(spikes) != len(weights):
            raise ValueError("spikes/weights length mismatch")
        if len(spikes) > self.arch.muxes_per_pe:
            raise ValueError(
                f"row segment wider than the PE's {self.arch.muxes_per_pe} muxes"
            )
        lo, hi = -(2 ** (self.arch.adder_bits - 1)), 2 ** (self.arch.adder_bits - 1) - 1
        any_spike = False
        contribution = 0
        for s, w in zip(spikes, weights):
            if s not in (0, 1):
                raise ValueError("spike bits must be 0 or 1")
            if not lo <= w <= hi:
                raise ValueError(f"weight {w} exceeds {self.arch.adder_bits}-bit range")
            if s:
                any_spike = True
                contribution += w
                self.stats.synaptic_ops += 1
        if self.event_driven and not any_spike:
            self.stats.skipped_rows += 1
            return 0
        self._psum = int(saturate(np.int64(self._psum + contribution), self.arch.psum_bits))
        self.stats.cycles += 1
        self.stats.row_cycles += 1
        self.stats.active_rows += 1
        return 1

    def compute_kernel(
        self, spike_window: np.ndarray, weights: np.ndarray
    ) -> Tuple[int, int]:
        """Apply one KxK kernel to one KxK spike window.

        Iterates the kernel rows in segments of (at most) 3 taps, then
        spends the final transfer cycle.  Returns ``(psum, cycles)``.
        The partial sum accumulates on top of the PE's current state so
        multi-channel kernels chain naturally.
        """
        spike_window = np.asarray(spike_window)
        weights = np.asarray(weights)
        if spike_window.shape != weights.shape:
            raise ValueError("window/weight shape mismatch")
        k_rows, k_cols = spike_window.shape
        cycles = 0
        m = self.arch.muxes_per_pe
        for row in range(k_rows):
            for col in range(0, k_cols, m):
                cycles += self.accumulate_row(
                    spike_window[row, col : col + m].tolist(),
                    weights[row, col : col + m].tolist(),
                )
        # Final cycle: hand the partial sum to the aggregation core.
        cycles += 1
        self.stats.cycles += 1
        self.stats.finalize_cycles += 1
        return self._psum, cycles
