"""The spiking core: an 8x8 array of PEs executing spiking convolution.

Functionally the core computes, for one timestep, the integer partial
sums ``psum[c_out, y, x] = sum_{spiking taps} w_int`` — a convolution of
the binary spike plane with the INT8 kernels, saturated to the 16-bit
partial-sum width.  The model is vectorised with im2col for speed but
its cycle accounting is derived from (and tested against) the bit-true
:class:`repro.hw.pe.ProcessingElement` schedule:

* one cycle per 3-tap kernel-row segment that contains at least one
  spike (event-driven gating skips silent segments);
* one finalize cycle per kernel application (output pixel x input
  channel);
* output channels are processed in groups of 64 (one kernel per PE),
  groups run sequentially.

Fully-connected layers are executed as 1x1 convolutions over a 1x1
spatial grid with the input neurons playing the role of channels, which
is how the reconfigurable core supports them (paper §III-A cites [27],
[28] for the mapping).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.config import ArchConfig, PYNQ_Z2
from repro.hw.fixed import saturate
from repro.tensor.functional import im2col


@dataclass
class CoreRunStats:
    """Cycle and activity accounting for one layer-timestep on the core."""

    cycles: int = 0
    row_cycles: int = 0
    finalize_cycles: int = 0
    active_segments: int = 0
    total_segments: int = 0
    synaptic_ops: int = 0
    channel_groups: int = 1

    @property
    def segment_activity(self) -> float:
        """Fraction of kernel-row segments that carried at least one spike."""
        if self.total_segments == 0:
            return 0.0
        return self.active_segments / self.total_segments


class SpikingCore:
    """Vectorised functional + cycle model of the 8x8 PE array."""

    def __init__(self, arch: ArchConfig = PYNQ_Z2, event_driven: bool = True) -> None:
        self.arch = arch
        self.event_driven = event_driven

    # ------------------------------------------------------------------
    def conv_timestep(
        self,
        spikes: np.ndarray,
        weights_int: np.ndarray,
        stride: int = 1,
        padding: int = 0,
    ) -> tuple[np.ndarray, CoreRunStats]:
        """Run one timestep of spiking convolution.

        Parameters
        ----------
        spikes:
            Binary spike plane, shape (C_in, H, W), values in {0, 1}.
        weights_int:
            INT8 kernels, shape (C_out, C_in, K, K).

        Returns
        -------
        (psum, stats):
            ``psum`` has shape (C_out, OH, OW), saturated to the
            16-bit partial-sum width; ``stats`` carries the cycle
            accounting described in the module docstring.
        """
        spikes = np.asarray(spikes)
        weights_int = np.asarray(weights_int)
        squeeze = spikes.ndim == 3
        if squeeze:
            spikes = spikes[None]
        if spikes.ndim != 4:
            raise ValueError("spikes must be (C_in, H, W) or (N, C_in, H, W)")
        if weights_int.ndim != 4:
            raise ValueError("weights must be (C_out, C_in, K, K)")
        if spikes.shape[1] != weights_int.shape[1]:
            raise ValueError("input channel mismatch")
        if not np.isin(spikes, (0, 1)).all():
            raise ValueError("spike plane must be binary")
        lo, hi = -(2 ** (self.arch.adder_bits - 1)), 2 ** (self.arch.adder_bits - 1) - 1
        if weights_int.min() < lo or weights_int.max() > hi:
            raise ValueError(f"weights exceed the {self.arch.adder_bits}-bit datapath")

        n = spikes.shape[0]
        c_out, c_in, k, _ = weights_int.shape
        cols, oh, ow = im2col(
            spikes.astype(np.int64), k, stride, padding
        )  # (N*OH*OW, C_in*K*K)
        w_mat = weights_int.reshape(c_out, -1).astype(np.int64)
        psum = saturate(cols @ w_mat.T, self.arch.psum_bits)  # (N*OH*OW, C_out)
        psum = psum.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)
        if squeeze:
            psum = psum[0]

        # Cycle stats are totals across the batch (divide by N for a
        # per-inference figure).
        stats = self._account_cycles(cols, n * oh * ow, 1, c_in, c_out, k)
        return psum, stats

    def fc_timestep(
        self, spikes: np.ndarray, weights_int: np.ndarray
    ) -> tuple[np.ndarray, CoreRunStats]:
        """One timestep of a fully-connected layer.

        ``spikes`` is a binary vector (in_features,), ``weights_int`` is
        (out_features, in_features).  Mapped as a 1x1 'convolution': the
        PEs stream the input vector in 3-tap segments, one output neuron
        per PE, 64 at a time.
        """
        spikes = np.asarray(spikes)
        squeeze = spikes.ndim == 1
        if squeeze:
            spikes = spikes[None]
        weights_int = np.asarray(weights_int)
        if weights_int.shape[1] != spikes.shape[1]:
            raise ValueError("feature mismatch")
        psum = saturate(
            spikes.astype(np.int64) @ weights_int.T.astype(np.int64),
            self.arch.psum_bits,
        )
        if squeeze:
            psum = psum[0]

        m = self.arch.muxes_per_pe
        pad = (-spikes.shape[1]) % m
        padded = np.pad(spikes, ((0, 0), (0, pad)))
        segments = padded.reshape(spikes.shape[0], -1, m)
        active = int(segments.any(axis=2).sum())
        total = int(segments.shape[0] * segments.shape[1])
        groups = -(-weights_int.shape[0] // self.arch.num_pes)
        row_cycles = (active if self.event_driven else total) * groups
        finalize = groups * spikes.shape[0]  # one psum hand-off per group pass
        stats = CoreRunStats(
            cycles=row_cycles + finalize,
            row_cycles=row_cycles,
            finalize_cycles=finalize,
            active_segments=active * groups,
            total_segments=total * groups,
            synaptic_ops=int(spikes.sum()) * weights_int.shape[0],
            channel_groups=groups,
        )
        return psum, stats

    # ------------------------------------------------------------------
    def _account_cycles(
        self, cols: np.ndarray, oh: int, ow: int, c_in: int, c_out: int, k: int
    ) -> CoreRunStats:
        """Derive the PE-schedule cycle count from the im2col matrix."""
        m = self.arch.muxes_per_pe
        # cols: (pixels, C_in*K*K) -> (pixels, C_in, K rows, K taps)
        windows = cols.reshape(oh * ow, c_in, k, k)
        pad = (-k) % m
        if pad:
            windows = np.pad(windows, ((0, 0), (0, 0), (0, 0), (0, pad)))
        segments = windows.reshape(oh * ow, c_in, k, -1, m)
        seg_active = segments.any(axis=-1)  # (pixels, C_in, K, segs)
        active = int(seg_active.sum())
        total = int(seg_active.size)
        synops = int(cols.sum()) * c_out

        groups = -(-c_out // self.arch.num_pes)
        row_cycles = (active if self.event_driven else total) * groups
        finalize = oh * ow * c_in * groups  # 1 per kernel application
        return CoreRunStats(
            cycles=row_cycles + finalize,
            row_cycles=row_cycles,
            finalize_cycles=finalize,
            active_segments=active * groups,
            total_segments=total * groups,
            synaptic_ops=synops,
            channel_groups=groups,
        )
