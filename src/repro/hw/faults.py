"""Fault injection into the accelerator's memories.

Edge accelerators care about resilience to memory upsets (SEUs in BRAM,
weight corruption during transfer).  This module injects controlled bit
flips into a mapped network's weight memory image or per-layer
batch-norm coefficients and measures the accuracy impact with the
bit-true simulator — an extension experiment enabled by having the
integer datapath model (a float simulation would understate the damage
of high-order-bit flips).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.hw.accelerator import SpikingInferenceAccelerator
from repro.hw.mapper import MappedNetwork


@dataclass(frozen=True)
class FaultReport:
    """Result of one fault-injection trial."""

    flipped_bits: int
    bit_error_rate: float
    baseline_accuracy: float
    faulty_accuracy: float

    @property
    def accuracy_drop(self) -> float:
        return self.baseline_accuracy - self.faulty_accuracy

    def to_payload(self) -> dict:
        """JSON-serialisable record (campaign per-point result shape)."""
        return {
            "flipped_bits": int(self.flipped_bits),
            "bit_error_rate": float(self.bit_error_rate),
            "baseline_accuracy": float(self.baseline_accuracy),
            "faulty_accuracy": float(self.faulty_accuracy),
            "accuracy_drop": float(self.accuracy_drop),
        }


def _clone_network(network: MappedNetwork) -> MappedNetwork:
    """Deep-copy a mapped network so injection never touches the original."""
    return copy.deepcopy(network)


def flip_weight_bits(
    network: MappedNetwork,
    bit_error_rate: float,
    rng: np.random.Generator,
    bits: int = 8,
) -> tuple[MappedNetwork, int]:
    """Return a copy of ``network`` with random weight bits flipped.

    Each stored weight bit flips independently with probability
    ``bit_error_rate``.  Weights stay within the signed ``bits`` range
    (two's-complement flips, as a real memory upset would produce).
    Returns (faulty network, number of flipped bits).
    """
    if not 0.0 <= bit_error_rate <= 1.0:
        raise ValueError("bit_error_rate must be in [0, 1]")
    faulty = _clone_network(network)
    total_flips = 0
    mask_all = (1 << bits) - 1
    for layer in faulty.layers:
        w = layer.weights_int.astype(np.int64)
        unsigned = w & mask_all  # two's-complement view
        flip_mask = np.zeros_like(unsigned)
        for bit in range(bits):
            flips = rng.random(unsigned.shape) < bit_error_rate
            flip_mask |= flips.astype(np.int64) << bit
            total_flips += int(flips.sum())
        corrupted = unsigned ^ flip_mask
        # Back to signed.
        signed = np.where(corrupted >= 1 << (bits - 1), corrupted - (1 << bits), corrupted)
        layer.weights_int = signed
    return faulty, total_flips


def flip_threshold_bits(
    network: MappedNetwork,
    layer_index: int,
    bit: int,
    bits: int = 16,
) -> MappedNetwork:
    """Flip one bit of one layer's threshold register (a targeted SEU)."""
    if not 0 <= bit < bits:
        raise ValueError(f"bit must be in [0, {bits})")
    faulty = _clone_network(network)
    layer = faulty.layers[layer_index]
    corrupted = layer.config.threshold_int ^ (1 << bit)
    if corrupted <= 0:
        corrupted = 1  # hardware register cannot hold a non-positive threshold
    layer.config.threshold_int = corrupted
    return faulty


def fault_trial(
    network: MappedNetwork,
    x: np.ndarray,
    y: np.ndarray,
    bit_error_rate: float,
    seed: int,
    timesteps: int = 8,
    batch_size: int = 128,
    baseline_accuracy: Optional[float] = None,
) -> FaultReport:
    """One self-contained weight-fault trial with its own seeded RNG.

    Unlike :func:`weight_fault_sweep` — which threads a single RNG
    through its rate list, coupling every trial to the ones before it —
    a trial's randomness here depends only on ``seed``, so a campaign
    can execute trials in any order (parallel shards, killed-and-resumed
    runs) and still reproduce the exact per-point result.  Pass
    ``baseline_accuracy`` to amortise the fault-free run across trials;
    omitted, it is measured here.
    """
    if baseline_accuracy is None:
        baseline_accuracy = SpikingInferenceAccelerator(network).accuracy(
            x, y, timesteps=timesteps, batch_size=batch_size
        )
    rng = np.random.default_rng(seed)
    faulty, flips = flip_weight_bits(network, bit_error_rate, rng)
    accuracy = SpikingInferenceAccelerator(faulty).accuracy(
        x, y, timesteps=timesteps, batch_size=batch_size
    )
    return FaultReport(
        flipped_bits=flips,
        bit_error_rate=bit_error_rate,
        baseline_accuracy=baseline_accuracy,
        faulty_accuracy=accuracy,
    )


def weight_fault_sweep(
    network: MappedNetwork,
    x: np.ndarray,
    y: np.ndarray,
    bit_error_rates: List[float],
    timesteps: int = 8,
    seed: int = 0,
    batch_size: int = 128,
) -> List[FaultReport]:
    """Accuracy vs weight-memory bit-error rate (the robustness curve)."""
    baseline = SpikingInferenceAccelerator(network).accuracy(
        x, y, timesteps=timesteps, batch_size=batch_size
    )
    rng = np.random.default_rng(seed)
    reports: List[FaultReport] = []
    for rate in bit_error_rates:
        faulty, flips = flip_weight_bits(network, rate, rng)
        accuracy = SpikingInferenceAccelerator(faulty).accuracy(
            x, y, timesteps=timesteps, batch_size=batch_size
        )
        reports.append(
            FaultReport(
                flipped_bits=flips,
                bit_error_rate=rate,
                baseline_accuracy=baseline,
                faulty_accuracy=accuracy,
            )
        )
    return reports
