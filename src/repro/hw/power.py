"""Power model for the FPGA prototype.

The paper reports 1.54 W total board power for the PYNQ-Z2 prototype.
On a ZYNQ-7020 the dominant term is the processing system (ARM cores +
DDR interface, ~1.2-1.3 W under load); the PL adds static leakage and
dynamic power proportional to clock rate and toggled logic.  The block
constants below follow that decomposition and are calibrated so the
default architecture lands on the paper's 1.54 W; the model's value is
in *relative* studies (dynamic power scales with the event-driven
activity factor, which is the energy argument for SNNs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import ArchConfig, PYNQ_Z2


@dataclass(frozen=True)
class PowerConstants:
    """Calibrated decomposition of the 1.54 W board power."""

    ps_watts: float = 1.262          # ARM + DDR + fixed board overhead
    pl_static_watts: float = 0.120   # PL leakage
    # Dynamic power at 100 MHz and 100% activity, per block class.
    pe_array_dynamic_watts: float = 0.060
    aggregation_dynamic_watts: float = 0.040
    memory_dynamic_watts: float = 0.038
    interconnect_dynamic_watts: float = 0.020


class PowerModel:
    """Activity-scaled power estimate."""

    def __init__(
        self, arch: ArchConfig = PYNQ_Z2, constants: PowerConstants = PowerConstants()
    ) -> None:
        self.arch = arch
        self.constants = constants

    def total_watts(self, activity: float = 1.0, clock_hz: float | None = None) -> float:
        """Board power at the given PE-array activity factor.

        ``activity`` is the fraction of cycles the datapath toggles —
        the event-driven design's activity equals the kernel-row
        occupancy, so sparse spike traffic directly reduces dynamic
        power.
        """
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        clock_scale = (clock_hz or self.arch.clock_hz) / 100e6
        c = self.constants
        dynamic = (
            c.pe_array_dynamic_watts * activity
            + c.aggregation_dynamic_watts * activity
            + c.memory_dynamic_watts * activity
            + c.interconnect_dynamic_watts
        ) * clock_scale
        return c.ps_watts + c.pl_static_watts + dynamic

    def pl_watts(self, activity: float = 1.0) -> float:
        """PL-only power (static + dynamic), excluding the PS."""
        return self.total_watts(activity) - self.constants.ps_watts

    def energy_per_inference_joules(
        self, latency_seconds: float, activity: float = 1.0
    ) -> float:
        return self.total_watts(activity) * latency_seconds
