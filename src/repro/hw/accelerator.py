"""The full Spiking Inference Accelerator: functional integer simulation.

Runs a :class:`repro.hw.mapper.MappedNetwork` exactly the way the FPGA
does (Fig. 5 flow): per timestep, layers execute sequentially; the
spiking core produces integer partial sums, the aggregation core applies
fixed-point batch-norm, adds residual contributions, updates membrane
potentials and emits binary spikes; the classifier layer accumulates raw
partial sums into the logits.  All arithmetic is integer (INT8 weights,
16-bit partial sums/membranes/BN), so the simulation is a bit-true model
of the datapath, not a float re-run.

The first layer receives the INT8-quantised input frame (the ZYNQ PS
performs frame conversion, §IV); its larger accumulators live on the PS
so the 16-bit PE width does not apply there.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.hw.aggregation import AggregationCore
from repro.hw.config import ArchConfig, LayerKind
from repro.hw.core import CoreRunStats, SpikingCore
from repro.hw.fixed import fixed_mul, saturate
from repro.hw.mapper import MappedLayer, MappedNetwork
from repro.snn.spikes import SpikeStream
from repro.snn.stats import LayerStats, RunStats
from repro.tensor.functional import im2col

# The accelerator shares the unified statistics types with the software
# engines (repro.snn.stats); the old names remain as aliases.
LayerRunStats = LayerStats
RunReport = RunStats


class SpikingInferenceAccelerator:
    """Functional + cycle-statistics model of the whole SIA."""

    def __init__(
        self,
        network: MappedNetwork,
        event_driven: bool = True,
    ) -> None:
        self.network = network
        self.arch: ArchConfig = network.arch
        self.core = SpikingCore(self.arch, event_driven=event_driven)
        self.aggregation = AggregationCore(self.arch)
        self.event_driven = event_driven

    # ------------------------------------------------------------------
    def run(
        self, x, timesteps: Optional[int] = None
    ) -> tuple[np.ndarray, RunReport]:
        """Run a batch of frames; returns (logits, report).

        ``x`` is float (N, C, H, W) for the PS frame-conversion input
        mode (``timesteps`` defaults to 8), or a binary COO
        :class:`repro.snn.spikes.SpikeStream` for the event-driven
        input mode (§IV: event streams transfer directly to the SIA) —
        then ``timesteps`` comes from the stream (an explicit mismatch
        fails loudly, like the simulation engines) and the first layer
        executes on the spiking core like any other spiking layer (no
        PS-side frame convolution and no frame-psum reuse: every
        timestep carries fresh events).  Logits are float
        (N, classes), reconstructed from the integer accumulators with
        the mapped output scale.
        """
        event_input = isinstance(x, SpikeStream)
        if event_input:
            if timesteps is not None and timesteps != x.timesteps:
                raise ValueError(
                    f"timesteps ({timesteps}) must match the input stream's "
                    f"({x.timesteps}); a SpikeStream carries its own time axis"
                )
            if x.values is not None:
                raise ValueError(
                    "event-driven accelerator input must be a binary "
                    "SpikeStream (per-event values are not transferable "
                    "as single-bit spikes)"
                )
            first = self.network.layers[0].config
            expected = (first.in_channels, first.in_height, first.in_width)
            if tuple(x.shape[1:]) != expected:
                raise ValueError(
                    f"stream plane shape {tuple(x.shape[1:])} does not match "
                    f"the mapped network's input {expected}"
                )
            n = x.batch_size
            timesteps = x.timesteps
            frame_int = None
        else:
            x = np.asarray(x)
            if x.ndim != 4:
                raise ValueError("x must be (N, C, H, W)")
            timesteps = 8 if timesteps is None else timesteps
            if timesteps < 1:
                raise ValueError("timesteps must be >= 1")
            n = x.shape[0]
            frame_int = np.clip(
                np.round(x / self.network.input_scale), -128, 127
            ).astype(np.int64)

        stats = [
            LayerRunStats(name=l.name, kind=l.config.kind.value)
            for l in self.network.layers
        ]
        membranes: Dict[int, np.ndarray] = {}
        logits_int: Optional[np.ndarray] = None
        outputs: Dict[int, np.ndarray] = {}
        # The input frame is constant across timesteps, so the PS-side
        # frame convolution is computed once and reused every step.
        frame_psums: Dict[int, np.ndarray] = {}

        for t in range(timesteps):
            outputs.clear()
            step_int = (
                x.step(t).to_dense(np.int64) if event_input else frame_int
            )
            for idx, layer in enumerate(self.network.layers):
                spikes_in = (
                    step_int if layer.input_index < 0 else outputs[layer.input_index]
                )
                if layer.spiking:
                    spikes_out = self._run_spiking_layer(
                        idx, layer, spikes_in, outputs, membranes, stats[idx],
                        frame_psums, event_input,
                    )
                    outputs[idx] = spikes_out
                else:
                    psum, core_stats = self._fc_psum(layer, spikes_in, stats[idx])
                    if logits_int is None:
                        logits_int = psum
                    else:
                        logits_int += psum
            self._advance_timestep(stats)

        assert logits_int is not None, "network has no output layer"
        logits = logits_int.astype(np.float64) * self.network.layers[-1].output_scale
        engine = "sia-event" if self.event_driven else "sia-dense"
        if event_input:
            engine += "-stream"
        report = RunReport(
            batch_size=n,
            timesteps=timesteps,
            layers=stats,
            engine=engine,
        )
        return logits, report

    def predict(self, x, timesteps: Optional[int] = None) -> np.ndarray:
        logits, _ = self.run(x, timesteps)
        return logits.argmax(axis=-1)

    def accuracy(
        self,
        x: np.ndarray,
        y: np.ndarray,
        timesteps: Optional[int] = None,
        batch_size: int = 128,
    ) -> float:
        correct = 0
        for start in range(0, len(x), batch_size):
            pred = self.predict(x[start : start + batch_size], timesteps)
            correct += int((pred == y[start : start + batch_size]).sum())
        return correct / len(x)

    # ------------------------------------------------------------------
    def _advance_timestep(self, stats: List[LayerRunStats]) -> None:
        for s in stats:
            s.timesteps += 1

    def _frame_psum(
        self, layer: MappedLayer, frame_int: np.ndarray
    ) -> np.ndarray:
        """PS-side INT8 convolution of the input frame (no 16-bit clamp)."""
        c = layer.config
        cols, oh, ow = im2col(frame_int, c.kernel_size, c.stride, c.padding)
        w_mat = layer.weights_int.reshape(c.out_channels, -1).astype(np.int64)
        psum = cols @ w_mat.T
        return psum.reshape(frame_int.shape[0], oh, ow, c.out_channels).transpose(
            0, 3, 1, 2
        )

    def _run_spiking_layer(
        self,
        idx: int,
        layer: MappedLayer,
        spikes_in: np.ndarray,
        outputs: Dict[int, np.ndarray],
        membranes: Dict[int, np.ndarray],
        stat: LayerRunStats,
        frame_psums: Dict[int, np.ndarray],
        event_input: bool = False,
    ) -> np.ndarray:
        c = layer.config
        if layer.frame_input and not event_input:
            if idx not in frame_psums:
                frame_psums[idx] = self._frame_psum(layer, spikes_in)
            psum = frame_psums[idx]
            core_stats = CoreRunStats()  # executed on the PS, no PL cycles
        else:
            psum, core_stats = self.core.conv_timestep(
                spikes_in, layer.weights_int, stride=c.stride, padding=c.padding
            )

        residual = self._residual_contribution(layer, outputs)

        if idx not in membranes:
            membranes[idx] = self.aggregation.activation.initial_membrane(
                psum.shape, c.threshold_int, layer.v_init_fraction
            )
        result, agg_cycles = self.aggregation.process(
            psum,
            membranes[idx],
            c,
            residual=residual,
            reset_to_zero=layer.reset_to_zero,
        )
        membranes[idx] = result.membrane

        stat.core_cycles += core_stats.cycles
        stat.aggregation_cycles += agg_cycles
        stat.spike_count += result.spike_count
        stat.neuron_steps += int(result.spikes.size)
        stat.synaptic_ops += core_stats.synaptic_ops
        stat.segment_activity_sum += core_stats.segment_activity
        return result.spikes.astype(np.int64)

    def _residual_contribution(
        self, layer: MappedLayer, outputs: Dict[int, np.ndarray]
    ) -> Optional[np.ndarray]:
        if layer.residual_input_index is None:
            return None
        source = outputs[layer.residual_input_index]
        if layer.residual_identity_int is not None:
            return source * layer.residual_identity_int
        proj = layer.residual_projection
        assert proj is not None, "residual layer without identity or projection"
        psum, _ = self.core.conv_timestep(
            source, proj.weights_int, stride=proj.stride, padding=0
        )
        scaled = fixed_mul(
            np.asarray(psum, dtype=np.int64),
            proj.g_int.reshape((-1,) + (1,) * (psum.ndim - 2)),
            proj.g_frac_bits,
            self.arch.psum_bits + proj.g_frac_bits,
        )
        return saturate(
            scaled + proj.h_int.reshape((-1,) + (1,) * (psum.ndim - 2)),
            self.arch.psum_bits,
        )

    def _fc_psum(
        self, layer: MappedLayer, spikes_in: np.ndarray, stat: LayerRunStats
    ) -> tuple[np.ndarray, CoreRunStats]:
        flat = spikes_in.reshape(spikes_in.shape[0], -1)
        psum, core_stats = self.core.fc_timestep(flat, layer.weights_int)
        stat.core_cycles += core_stats.cycles
        stat.synaptic_ops += core_stats.synaptic_ops
        stat.segment_activity_sum += core_stats.segment_activity
        return psum.astype(np.int64), core_stats
