"""Memory organisation: BRAM banks, the memory map, ping-pong buffers.

Models paper §III-D: the PL-side memory is partitioned into spike-input
memory (128 B incoming spikes + 128 kB residual partial sums + 64 kB
membrane potentials), 8 kB weight memory (up to 64 kernels), and 56 kB
output spike memory.  The 64 kB membrane region operates as a ping-pong
pair (U1-State / U2-State) so the PE array can write timestep t's
potentials while the activation unit reads timestep t-1's (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.hw.config import ArchConfig, PYNQ_Z2


class MemoryError_(Exception):
    """Raised on capacity overflows or ping-pong protocol violations."""


class BramBank:
    """A byte-addressable on-chip memory with capacity enforcement."""

    def __init__(self, name: str, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._store: Dict[str, np.ndarray] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    def used_bytes(self) -> int:
        return sum(int(a.nbytes) for a in self._store.values())

    def write(self, key: str, array: np.ndarray) -> None:
        """Store an array under ``key``; raises if the bank would overflow."""
        new_usage = self.used_bytes() - (
            int(self._store[key].nbytes) if key in self._store else 0
        ) + int(array.nbytes)
        if new_usage > self.capacity_bytes:
            raise MemoryError_(
                f"{self.name}: writing {array.nbytes} B for {key!r} exceeds "
                f"capacity {self.capacity_bytes} B (would use {new_usage} B)"
            )
        self._store[key] = array
        self.bytes_written += int(array.nbytes)

    def read(self, key: str) -> np.ndarray:
        if key not in self._store:
            raise MemoryError_(f"{self.name}: no entry {key!r}")
        array = self._store[key]
        self.bytes_read += int(array.nbytes)
        return array

    def clear(self) -> None:
        self._store.clear()


class PingPongBuffer:
    """The U1/U2 membrane-state pair (paper Fig. 3).

    At any timestep one half is in *read* mode (previous potentials feed
    the activation unit) and the other is in *write* mode (updated
    potentials from the PEs).  :meth:`toggle` swaps the roles at the
    timestep boundary.  Reading and writing the same half in one
    timestep raises — that is the hazard the ping-pong protocol exists
    to prevent, and a scheduling bug if it happens in simulation.
    """

    def __init__(self, capacity_bytes: int) -> None:
        half = capacity_bytes // 2
        self.banks = (BramBank("U1-State", half), BramBank("U2-State", half))
        self._read_idx = 0
        self._read_done: set = set()
        self._write_done: set = set()

    @property
    def read_bank(self) -> BramBank:
        return self.banks[self._read_idx]

    @property
    def write_bank(self) -> BramBank:
        return self.banks[1 - self._read_idx]

    def read_membrane(self, key: str) -> np.ndarray:
        self._read_done.add(key)
        if key in self._write_done:
            raise MemoryError_(
                f"ping-pong hazard: {key!r} read after write in the same timestep"
            )
        return self.read_bank.read(key)

    def write_membrane(self, key: str, array: np.ndarray) -> None:
        self._write_done.add(key)
        self.write_bank.write(key, array)

    def preload(self, key: str, array: np.ndarray) -> None:
        """Initial membrane load (before the first timestep) into the read bank."""
        self.read_bank.write(key, array)

    def toggle(self) -> None:
        """Swap read/write roles at a timestep boundary."""
        self._read_idx = 1 - self._read_idx
        self._read_done.clear()
        self._write_done.clear()

    def reset(self) -> None:
        for bank in self.banks:
            bank.clear()
        self._read_idx = 0
        self._read_done.clear()
        self._write_done.clear()


@dataclass
class MemoryMap:
    """The full PL memory system of the SIA."""

    arch: ArchConfig = field(default_factory=lambda: PYNQ_Z2)

    def __post_init__(self) -> None:
        a = self.arch
        self.spike_in = BramBank("spike-in", a.spike_in_bytes)
        self.residual = BramBank("residual", a.residual_bytes)
        self.weights = BramBank("weights", a.weight_bytes)
        self.output = BramBank("output-spikes", a.output_bytes)
        self.membrane = PingPongBuffer(a.membrane_bytes)

    def total_bytes(self) -> int:
        a = self.arch
        return (
            a.spike_in_bytes
            + a.residual_bytes
            + a.membrane_bytes
            + a.weight_bytes
            + a.output_bytes
        )

    def bram_blocks(self, block_bits: int = 18 * 1024) -> int:
        """Number of BRAM primitives needed for the data memories alone."""
        return -(-(self.total_bytes() * 8) // block_bits)

    def reset(self) -> None:
        self.spike_in.clear()
        self.residual.clear()
        self.weights.clear()
        self.output.clear()
        self.membrane.reset()
