"""Saturating fixed-point arithmetic helpers for the integer datapath.

All hardware-side quantities are plain numpy integer arrays; these
helpers centralise width clamping so every block saturates exactly the
way an N-bit two's-complement register would.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def int_limits(bits: int) -> Tuple[int, int]:
    """(min, max) of a signed two's-complement integer of ``bits``."""
    if bits < 2:
        raise ValueError("need at least 2 bits for signed values")
    return -(2 ** (bits - 1)), 2 ** (bits - 1) - 1


def saturate(values: np.ndarray, bits: int) -> np.ndarray:
    """Clamp to the signed ``bits``-wide range (hardware saturation)."""
    lo, hi = int_limits(bits)
    return np.clip(values, lo, hi)


def sat_add(a: np.ndarray, b: np.ndarray, bits: int) -> np.ndarray:
    """Saturating add of two integer arrays at ``bits`` width."""
    return saturate(a.astype(np.int64) + b.astype(np.int64), bits)


def quantize_to_fixed(
    values: np.ndarray, frac_bits: int, bits: int
) -> np.ndarray:
    """Round real values to a signed fixed-point grid with ``frac_bits``.

    Returns the integer representation (int32/int64), saturated to
    ``bits``.  ``real ~= returned / 2**frac_bits``.
    """
    scaled = np.round(np.asarray(values, dtype=np.float64) * (1 << frac_bits))
    return saturate(scaled, bits).astype(np.int64)


def fixed_to_float(values: np.ndarray, frac_bits: int) -> np.ndarray:
    """Convert fixed-point integers back to floats."""
    return np.asarray(values, dtype=np.float64) / (1 << frac_bits)


def fixed_mul(
    a_int: np.ndarray, coeff_int: np.ndarray, frac_bits: int, out_bits: int
) -> np.ndarray:
    """Fixed-point multiply with arithmetic right shift and saturation.

    Computes ``(a * coeff) >> frac_bits`` with round-to-nearest (adding
    half an LSB before the shift), the behaviour of the aggregation
    core's DSP multiply for eq. (2).
    """
    product = a_int.astype(np.int64) * coeff_int.astype(np.int64)
    rounded = (product + (1 << (frac_bits - 1))) >> frac_bits
    return saturate(rounded, out_bits)
