"""40 nm ASIC projection (paper §V, final paragraph).

The paper synthesises the SIA with TSMC 40 nm and projects 192 GOPS at
500 MHz in 11 mm^2 consuming 2.17 W.  The throughput number is exact
architecture arithmetic (64 PE x 6 ops x 500 MHz); area and power come
from per-block scaling constants calibrated to the paper's figures, so
the model can answer "what if" questions (different PE counts, clocks,
memory sizes) with the same assumptions the authors used.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import ArchConfig, PYNQ_Z2


@dataclass(frozen=True)
class AsicConstants:
    """Calibrated 40 nm per-block area/power densities."""

    # Area (mm^2).
    pe_area_mm2: float = 0.020            # datapath + local control, per PE
    bn_lane_area_mm2: float = 0.045       # DSP-class multiplier lane
    sram_area_mm2_per_kb: float = 0.025   # 6T SRAM macro density @ 40 nm
    control_area_mm2: float = 0.6
    io_ring_area_mm2: float = 2.0
    # Power at 500 MHz, full activity (W).
    pe_power_w: float = 0.0145
    bn_lane_power_w: float = 0.028
    sram_power_w_per_kb: float = 0.0022
    control_power_w: float = 0.10
    leakage_w: float = 0.13


@dataclass
class AsicReport:
    clock_mhz: float
    gops: float
    area_mm2: float
    power_watts: float

    @property
    def gops_per_watt(self) -> float:
        return self.gops / self.power_watts

    @property
    def gops_per_mm2(self) -> float:
        return self.gops / self.area_mm2


class AsicProjection:
    """Project the SIA architecture onto TSMC 40 nm."""

    def __init__(
        self,
        arch: ArchConfig = PYNQ_Z2,
        clock_hz: float = 500e6,
        constants: AsicConstants = AsicConstants(),
    ) -> None:
        self.arch = arch
        self.clock_hz = clock_hz
        self.constants = constants

    def _sram_kb(self) -> float:
        a = self.arch
        total_bytes = (
            a.spike_in_bytes
            + a.residual_bytes
            + a.membrane_bytes
            + a.weight_bytes
            + a.output_bytes
        )
        return total_bytes / 1024.0

    def report(self, activity: float = 1.0) -> AsicReport:
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        a, c = self.arch, self.constants
        gops = a.num_pes * a.ops_per_pe_per_cycle * self.clock_hz / 1e9
        sram_kb = self._sram_kb()
        area = (
            a.num_pes * c.pe_area_mm2
            + a.num_bn_multipliers * c.bn_lane_area_mm2
            + sram_kb * c.sram_area_mm2_per_kb
            + c.control_area_mm2
            + c.io_ring_area_mm2
        )
        clock_scale = self.clock_hz / 500e6
        power = (
            a.num_pes * c.pe_power_w * activity
            + a.num_bn_multipliers * c.bn_lane_power_w * activity
            + sram_kb * c.sram_power_w_per_kb
            + c.control_power_w
        ) * clock_scale + c.leakage_w
        return AsicReport(
            clock_mhz=self.clock_hz / 1e6,
            gops=round(gops, 2),
            area_mm2=round(area, 2),
            power_watts=round(power, 3),
        )
