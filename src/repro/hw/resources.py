"""FPGA resource-utilisation and throughput models (Tables III and IV).

The resource estimate is built bottom-up from per-block costs (PE
datapath, aggregation core, controller, AXI interface, BRAM banks) with
per-block LUT/FF constants calibrated so the totals land on the paper's
Vivado 2019.1 report for the PYNQ-Z2 (Table III: 11932 LUT, 8157 FF,
17 DSP, 95 BRAM, 158 LUTRAM, 1 BUFG, at 1.54 W).  The DSP and BRAM
counts are structural (multiplier and memory-bank arithmetic), not
fitted.

The throughput model is pure architecture arithmetic: each PE performs
3 mux-selects + 3 additions per cycle (6 ops), so peak throughput is
``64 PE x 6 ops x f_clk`` = 38.4 GOPS at 100 MHz — together with the
measured power and DSP count this reproduces every derived metric of
Table IV (0.6 GOPS/PE, 2.25 GOPS/DSP, 24.93 GOPS/W).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.hw.config import ArchConfig, PYNQ_Z2


# PYNQ-Z2 (XC7Z020) available resources, from the Zynq-7000 datasheet.
PYNQ_Z2_AVAILABLE = {
    "LUT": 53200,
    "FF": 105400,
    "DSP": 220,
    "BRAM": 140,        # RAMB36E1 blocks
    "LUTRAM": 17400,
    "BUFG": 32,
}


@dataclass(frozen=True)
class BlockCost:
    """LUT/FF cost of one instance of a block."""

    luts: int
    ffs: int
    lutram: int = 0


# Per-block implementation costs.  LUT/FF constants calibrated to the
# paper's Table III totals; structure (what blocks exist, their counts)
# follows the architecture.
BLOCK_COSTS: Dict[str, BlockCost] = {
    # 3x 8-bit 2:1 muxes (12 LUT) + 16-bit accumulate adder (16 LUT) +
    # row-gating / psum register control.
    "pe": BlockCost(luts=58, ffs=50),
    # One BN lane: DSP-based multiply, 16-bit add, rounding, threshold
    # compare, reset-by-subtraction mux, membrane write port.
    "bn_lane": BlockCost(luts=160, ffs=96),
    # Layer sequencing FSM, address generators, tile counters.
    "controller": BlockCost(luts=2260, ffs=1521),
    # AXI4-Lite slave + stream staging.
    "axi": BlockCost(luts=1500, ffs=1100, lutram=96),
    # Spike packing/unpacking, ping-pong arbitration.
    "memory_glue": BlockCost(luts=1900, ffs=800, lutram=62),
}


@dataclass
class ResourceReport:
    """Estimated utilisation next to device capacity."""

    used: Dict[str, int]
    available: Dict[str, int] = field(default_factory=lambda: dict(PYNQ_Z2_AVAILABLE))

    def percentage(self, key: str) -> float:
        return 100.0 * self.used[key] / self.available[key]

    def rows(self) -> List[dict]:
        return [
            {
                "parameter": key,
                "utilized": self.used[key],
                "available": self.available[key],
                "percentage": round(self.percentage(key), 2),
            }
            for key in ("LUT", "FF", "DSP", "BRAM", "LUTRAM", "BUFG")
        ]

    def render(self) -> str:
        lines = [f"{'Parameter':<10}{'Utilized':>10}{'Available':>11}{'Pct':>8}"]
        for row in self.rows():
            lines.append(
                f"{row['parameter']:<10}{row['utilized']:>10}"
                f"{row['available']:>11}{row['percentage']:>7.2f}%"
            )
        return "\n".join(lines)


class ResourceModel:
    """Bottom-up FPGA utilisation estimate for an :class:`ArchConfig`."""

    # Extra RAMB36 blocks for stream double-buffering / interface FIFOs
    # beyond the §III-D data memories (calibrated: the Vivado report
    # includes I/O staging the paper's memory map does not enumerate).
    INTERFACE_BRAM_BLOCKS = 34

    def __init__(self, arch: ArchConfig = PYNQ_Z2) -> None:
        self.arch = arch

    # ------------------------------------------------------------------
    def dsp_count(self) -> int:
        """BN multipliers + one DSP for the LIF leak/misc datapath."""
        return self.arch.num_bn_multipliers + 1

    def bram_blocks(self) -> int:
        """RAMB36-equivalent blocks: data memories + interface buffers."""
        bits_per_block = 36 * 1024
        banks = [
            self.arch.spike_in_bytes,
            self.arch.residual_bytes,
            self.arch.membrane_bytes // 2,   # U1
            self.arch.membrane_bytes // 2,   # U2
            self.arch.weight_bytes,
            self.arch.output_bytes,
        ]
        blocks = sum(-(-b * 8 // bits_per_block) for b in banks)
        return blocks + self.INTERFACE_BRAM_BLOCKS

    def report(self) -> ResourceReport:
        pes = self.arch.num_pes
        lanes = self.arch.num_bn_multipliers
        luts = (
            pes * BLOCK_COSTS["pe"].luts
            + lanes * BLOCK_COSTS["bn_lane"].luts
            + BLOCK_COSTS["controller"].luts
            + BLOCK_COSTS["axi"].luts
            + BLOCK_COSTS["memory_glue"].luts
        )
        ffs = (
            pes * BLOCK_COSTS["pe"].ffs
            + lanes * BLOCK_COSTS["bn_lane"].ffs
            + BLOCK_COSTS["controller"].ffs
            + BLOCK_COSTS["axi"].ffs
            + BLOCK_COSTS["memory_glue"].ffs
        )
        lutram = sum(c.lutram for c in BLOCK_COSTS.values())
        used = {
            "LUT": luts,
            "FF": ffs,
            "DSP": self.dsp_count(),
            "BRAM": self.bram_blocks(),
            "LUTRAM": lutram,
            "BUFG": 1,
        }
        return ResourceReport(used=used)


@dataclass
class ThroughputReport:
    """Derived performance metrics (one Table IV column)."""

    name: str
    platform: str
    num_pes: int
    clock_mhz: float
    gops: float
    gops_per_pe: float
    gops_per_watt: float
    dsp: int
    gops_per_dsp: float
    power_watts: float


class ThroughputModel:
    """Architecture throughput arithmetic (the paper's Table IV column)."""

    def __init__(
        self, arch: ArchConfig = PYNQ_Z2, power_watts: float = 1.54
    ) -> None:
        self.arch = arch
        self.power_watts = power_watts
        self.resources = ResourceModel(arch)

    def peak_gops(self) -> float:
        return self.arch.peak_gops

    def report(self, name: str = "This Work", platform: str = "PYNQ-Z2") -> ThroughputReport:
        gops = self.peak_gops()
        dsp = self.resources.dsp_count()
        return ThroughputReport(
            name=name,
            platform=platform,
            num_pes=self.arch.num_pes,
            clock_mhz=self.arch.clock_hz / 1e6,
            gops=round(gops, 2),
            gops_per_pe=round(gops / self.arch.num_pes, 3),
            gops_per_watt=round(gops / self.power_watts, 2),
            dsp=dsp,
            gops_per_dsp=round(gops / dsp, 2),
            power_watts=self.power_watts,
        )

    def effective_gops(self, utilization: float) -> float:
        """Sustained throughput at a given PE-array utilisation."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        return self.peak_gops() * utilization
