"""Control and configuration logic: the Fig. 5 execution flow.

The controller sequences one layer invocation on real memory models:
weights stream into the 8 kB weight memory (in tiles when a layer's
kernels exceed it), input spikes land in the spike-input memory, the PE
array and aggregation core run tile-by-tile, membrane potentials go
through the U1/U2 ping-pong protocol, and output spikes are written to
the output memory.  It is deliberately single-sample and bit-true — the
batched :class:`repro.hw.accelerator.SpikingInferenceAccelerator` is the
fast path; this module exists to validate the memory organisation and
to produce exact per-tile transfer/cycle traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.hw.aggregation import AggregationCore
from repro.hw.config import ArchConfig, LayerKind
from repro.hw.core import SpikingCore
from repro.hw.mapper import MappedLayer, MappedNetwork
from repro.hw.memory import MemoryMap


@dataclass
class TileTrace:
    """Execution trace of one (layer, tile, timestep) invocation."""

    layer: str
    tile: int
    timestep: int
    weight_bytes: int
    spike_in_bytes: int
    spike_out_bytes: int
    core_cycles: int
    aggregation_cycles: int


@dataclass
class ControllerState:
    traces: List[TileTrace] = field(default_factory=list)
    weight_reloads: int = 0

    def total_cycles(self) -> int:
        return sum(t.core_cycles + t.aggregation_cycles for t in self.traces)


class LayerController:
    """Sequences layers through the memory system (single sample)."""

    def __init__(self, network: MappedNetwork, event_driven: bool = True) -> None:
        self.network = network
        self.arch: ArchConfig = network.arch
        self.memory = MemoryMap(self.arch)
        self.core = SpikingCore(self.arch, event_driven=event_driven)
        self.aggregation = AggregationCore(self.arch)
        self.state = ControllerState()
        self._membranes: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def weight_tiles(self, layer: MappedLayer) -> int:
        """How many weight-memory loads a layer needs (8 kB at a time)."""
        weight_bytes = int(layer.weights_int.astype(np.int8).nbytes)
        return max(1, -(-weight_bytes // self.arch.weight_bytes))

    def run_network(self, frame: np.ndarray, timesteps: int) -> np.ndarray:
        """Run one sample through all layers for ``timesteps`` steps.

        ``frame`` is a float (C, H, W) image.  Returns accumulated float
        logits.  Mirrors :meth:`SpikingInferenceAccelerator.run` but
        routes every membrane through the ping-pong buffer and enforces
        memory capacities.
        """
        if frame.ndim != 3:
            raise ValueError("controller runs single samples (C, H, W)")
        frame_int = np.clip(
            np.round(frame / self.network.input_scale), -128, 127
        ).astype(np.int64)
        self.memory.reset()
        self._membranes.clear()
        self.state = ControllerState()

        logits_int: Optional[np.ndarray] = None
        outputs: Dict[int, np.ndarray] = {}
        for t in range(timesteps):
            outputs.clear()
            for idx, layer in enumerate(self.network.layers):
                spikes_in = (
                    frame_int if layer.input_index < 0 else outputs[layer.input_index]
                )
                if layer.spiking:
                    outputs[idx] = self._execute_spiking_layer(
                        idx, layer, spikes_in, outputs, t
                    )
                else:
                    psum = self._execute_fc_layer(layer, spikes_in, t)
                    logits_int = psum if logits_int is None else logits_int + psum
        assert logits_int is not None
        return logits_int.astype(np.float64) * self.network.layers[-1].output_scale

    # ------------------------------------------------------------------
    def _execute_spiking_layer(
        self,
        idx: int,
        layer: MappedLayer,
        spikes_in: np.ndarray,
        outputs: Dict[int, np.ndarray],
        timestep: int,
    ) -> np.ndarray:
        from repro.hw.accelerator import SpikingInferenceAccelerator  # traces reuse

        c = layer.config
        # Stage input spikes (binary planes are packed 8/byte on the bus).
        spike_in_bytes = -(-int(np.prod(spikes_in.shape)) // 8)
        if not layer.frame_input:
            # The 128 B incoming-spike window holds one streaming chunk;
            # larger planes stream through it chunk-by-chunk.
            chunk = min(spike_in_bytes, self.arch.spike_in_bytes)
            self.memory.spike_in.write("window", np.zeros(chunk, dtype=np.uint8))

        # Partial sums for the whole layer (functional), then per-tile
        # membrane traffic through the ping-pong protocol.
        if layer.frame_input:
            cols_psum = self._frame_psum(layer, frame_int=spikes_in)
            core_cycles = 0
        else:
            cols_psum, core_stats = self.core.conv_timestep(
                spikes_in, layer.weights_int, stride=c.stride, padding=c.padding
            )
            core_cycles = core_stats.cycles

        residual = self._residual(layer, outputs)

        key = f"L{idx}"
        if key not in self._membranes:
            membrane = self.aggregation.activation.initial_membrane(
                cols_psum.shape, c.threshold_int, layer.v_init_fraction
            )
        else:
            membrane = self._membranes[key]

        # The ping-pong pair holds one layer tile at a time: the PS
        # swaps per-layer membranes through DDR between invocations
        # (``self._membranes`` models the DDR copy), and within an
        # invocation the previous potentials are read from one half
        # while updates land in the other (Fig. 3).
        pp = self.memory.membrane
        tiles = layer.spatial_tiles
        flat_membrane = membrane.reshape(-1).copy()
        tile_size = -(-flat_membrane.size // tiles)
        for tile in range(tiles):
            lo = tile * tile_size
            hi = min(lo + tile_size, flat_membrane.size)
            pp.read_bank.clear()
            pp.preload("active-tile", flat_membrane[lo:hi].astype(np.int16))
            stored = pp.read_membrane("active-tile")
            flat_membrane[lo:hi] = stored.astype(np.int64)
        membrane = flat_membrane.reshape(cols_psum.shape)

        result, agg_cycles = self.aggregation.process(
            cols_psum,
            membrane,
            c,
            residual=residual,
            reset_to_zero=layer.reset_to_zero,
        )
        self._membranes[key] = result.membrane

        # Updated potentials stream into the opposite half, then roles
        # swap for the next invocation.
        updated_flat = result.membrane.reshape(-1)
        for tile in range(tiles):
            lo = tile * tile_size
            hi = min(lo + tile_size, updated_flat.size)
            pp.write_bank.clear()
            pp.write_membrane("active-tile", updated_flat[lo:hi].astype(np.int16))
        pp.toggle()

        # Output spikes to output memory (packed; drained by the PS
        # before the next layer writes).
        spikes_out = result.spikes.astype(np.int64)
        out_bytes = -(-int(spikes_out.size) // 8)
        self.memory.output.write(
            "current-layer-spikes",
            np.packbits(spikes_out.reshape(-1).astype(np.uint8)),
        )

        weight_bytes = int(layer.weights_int.astype(np.int8).nbytes)
        self.state.weight_reloads += self.weight_tiles(layer)
        self.state.traces.append(
            TileTrace(
                layer=layer.name,
                tile=tiles,
                timestep=timestep,
                weight_bytes=weight_bytes,
                spike_in_bytes=spike_in_bytes,
                spike_out_bytes=out_bytes,
                core_cycles=core_cycles,
                aggregation_cycles=agg_cycles,
            )
        )
        return spikes_out

    def _frame_psum(self, layer: MappedLayer, frame_int: np.ndarray) -> np.ndarray:
        from repro.tensor.functional import im2col

        c = layer.config
        cols, oh, ow = im2col(frame_int[None], c.kernel_size, c.stride, c.padding)
        w_mat = layer.weights_int.reshape(c.out_channels, -1).astype(np.int64)
        psum = cols @ w_mat.T
        return psum.reshape(oh, ow, c.out_channels).transpose(2, 0, 1)

    def _residual(
        self, layer: MappedLayer, outputs: Dict[int, np.ndarray]
    ) -> Optional[np.ndarray]:
        if layer.residual_input_index is None:
            return None
        from repro.hw.fixed import fixed_mul, saturate

        source = outputs[layer.residual_input_index]
        if layer.residual_identity_int is not None:
            # Residual partial sums occupy the 128 kB residual memory.
            res_bytes = int(source.size) * 2
            self.memory.residual.write("partial", np.zeros(min(res_bytes, 8), np.uint8))
            return source * layer.residual_identity_int
        proj = layer.residual_projection
        psum, _ = self.core.conv_timestep(
            source, proj.weights_int, stride=proj.stride, padding=0
        )
        scaled = fixed_mul(
            np.asarray(psum, dtype=np.int64),
            proj.g_int.reshape(-1, 1, 1),
            proj.g_frac_bits,
            self.arch.psum_bits + proj.g_frac_bits,
        )
        return saturate(scaled + proj.h_int.reshape(-1, 1, 1), self.arch.psum_bits)

    def _execute_fc_layer(
        self, layer: MappedLayer, spikes_in: np.ndarray, timestep: int
    ) -> np.ndarray:
        flat = spikes_in.reshape(-1)
        psum, core_stats = self.core.fc_timestep(flat, layer.weights_int)
        self.state.traces.append(
            TileTrace(
                layer=layer.name,
                tile=1,
                timestep=timestep,
                weight_bytes=int(layer.weights_int.astype(np.int8).nbytes),
                spike_in_bytes=-(-flat.size // 8),
                spike_out_bytes=0,
                core_cycles=core_stats.cycles,
                aggregation_cycles=0,
            )
        )
        return psum.astype(np.int64)
