"""Parametric Verilog skeletons for the SIA datapath blocks.

A hardware-methodology release ships RTL; this module generates
synthesizable-style Verilog for the paper's core blocks directly from
an :class:`ArchConfig`, so the generated code always matches the models
(same mux count, operand widths, threshold width, memory geometry):

* ``pe.v`` — one processing element: three weight/zero multiplexers
  selected by spike bits, an accumulating saturating adder, and the
  row-gating that implements event-driven skipping;
* ``pe_array.v`` — the PE grid with shared spike-row broadcast and
  per-PE kernel weights;
* ``activation_unit.v`` — membrane update, IF/LIF mode mux
  (subtract-shift leak), threshold compare, reset-by-subtraction;
* ``bn_lane.v`` — one aggregation-core lane: fixed-point multiply
  (maps to a DSP slice), rounding shift, bias add, saturation;
* ``membrane_pingpong.v`` — the U1/U2 dual-bank state memory with
  role-swap control.

The generator is intentionally template-based (no IR): its value is
that the parameters are *derived*, not copy-pasted, and the structure
is asserted by tests (port widths, mux counts, balanced blocks).
"""

from __future__ import annotations

import textwrap
from typing import Dict

from repro.hw.config import ArchConfig, PYNQ_Z2


def _header(name: str, arch: ArchConfig) -> str:
    return textwrap.dedent(
        f"""\
        // {name} — generated from ArchConfig(name={arch.name!r},
        //   pe={arch.pe_rows}x{arch.pe_cols}, muxes/pe={arch.muxes_per_pe},
        //   weight={arch.adder_bits}b, psum={arch.psum_bits}b,
        //   bn={arch.bn_bits}b, clock={arch.clock_hz / 1e6:.0f} MHz)
        // Do not edit: regenerate via repro.hw.rtl.
        """
    )


def generate_pe(arch: ArchConfig = PYNQ_Z2) -> str:
    """One processing element: muxes + saturating accumulator."""
    w = arch.adder_bits
    p = arch.psum_bits
    m = arch.muxes_per_pe
    taps = "\n".join(
        f"    wire signed [{w - 1}:0] tap{i} = spike[{i}] ? weight{i} : "
        f"{{{w}{{1'b0}}}};"
        for i in range(m)
    )
    tap_sum = " + ".join(f"tap{i}" for i in range(m))
    weight_ports = ",\n".join(
        f"    input  wire signed [{w - 1}:0] weight{i}" for i in range(m)
    )
    return _header("processing_element", arch) + textwrap.dedent(
        f"""\
        module processing_element #(
            parameter PSUM_W = {p}
        ) (
            input  wire              clk,
            input  wire              rst,
            input  wire              row_valid,   // event gate: any spike in row
            input  wire              finalize,    // transfer psum to aggregation
            input  wire [{m - 1}:0]        spike,
        {weight_ports},
            output reg  signed [PSUM_W-1:0] psum,
            output reg               psum_valid
        );
        {taps}
            wire signed [PSUM_W:0] sum_ext =
                {{psum[PSUM_W-1], psum}} + {{{{(PSUM_W+1-{w + 2}){{1'b0}}}}, {tap_sum}}};
            wire signed [PSUM_W-1:0] sum_sat =
                (sum_ext >  $signed({{1'b0, {{(PSUM_W-1){{1'b1}}}}}})) ? {{1'b0, {{(PSUM_W-1){{1'b1}}}}}} :
                (sum_ext < -$signed({{1'b0, {{(PSUM_W-1){{1'b1}}}}}})) ? {{1'b1, {{(PSUM_W-1){{1'b0}}}}}} :
                sum_ext[PSUM_W-1:0];

            always @(posedge clk) begin
                if (rst) begin
                    psum       <= {{PSUM_W{{1'b0}}}};
                    psum_valid <= 1'b0;
                end else begin
                    // Event-driven gating: silent rows cost no update.
                    if (row_valid)
                        psum <= sum_sat;
                    psum_valid <= finalize;
                    if (finalize)
                        psum <= {{PSUM_W{{1'b0}}}};
                end
            end
        endmodule
        """
    )


def generate_pe_array(arch: ArchConfig = PYNQ_Z2) -> str:
    """The PE grid with a shared spike-row broadcast."""
    rows, cols = arch.pe_rows, arch.pe_cols
    w = arch.adder_bits
    m = arch.muxes_per_pe
    p = arch.psum_bits
    return _header("pe_array", arch) + textwrap.dedent(
        f"""\
        module pe_array (
            input  wire                       clk,
            input  wire                       rst,
            input  wire                       row_valid,
            input  wire                       finalize,
            input  wire [{m - 1}:0]                 spike_row,      // broadcast to all PEs
            input  wire [{rows * cols * m * w - 1}:0] weights_flat, // per-PE kernel taps
            output wire [{rows * cols * p - 1}:0]   psums_flat,
            output wire [{rows * cols - 1}:0]        psum_valids
        );
            genvar gi;
            generate
                for (gi = 0; gi < {rows * cols}; gi = gi + 1) begin : pe_row
                    processing_element #(.PSUM_W({p})) pe_i (
                        .clk(clk),
                        .rst(rst),
                        .row_valid(row_valid),
                        .finalize(finalize),
                        .spike(spike_row),
        {_weight_hookups(m, w)}
                        .psum(psums_flat[gi*{p} +: {p}]),
                        .psum_valid(psum_valids[gi])
                    );
                end
            endgenerate
        endmodule
        """
    )


def _weight_hookups(m: int, w: int) -> str:
    lines = []
    for i in range(m):
        lines.append(
            f"                .weight{i}(weights_flat[(gi*{m}+{i})*{w} +: {w}]),"
        )
    return "\n".join(lines)


def generate_activation_unit(arch: ArchConfig = PYNQ_Z2) -> str:
    """Membrane update + IF/LIF + threshold compare + reset-by-subtract."""
    p = arch.psum_bits
    return _header("activation_unit", arch) + textwrap.dedent(
        f"""\
        module activation_unit #(
            parameter V_W = {p}
        ) (
            input  wire                   clk,
            input  wire                   rst,
            input  wire                   valid_in,
            input  wire                   lif_mode,      // 0: IF, 1: LIF
            input  wire [7:0]             leak_shift,
            input  wire                   reset_to_zero, // 0: subtract (default)
            input  wire signed [V_W-1:0]  current,       // batch-normed psum
            input  wire signed [V_W-1:0]  v_in,          // from ping-pong read bank
            input  wire signed [V_W-1:0]  threshold,
            output reg                    spike,
            output reg  signed [V_W-1:0]  v_out,         // to ping-pong write bank
            output reg                    valid_out
        );
            // LIF leak: v -= v >>> leak_shift (arithmetic shift).
            wire signed [V_W-1:0] leaked =
                lif_mode ? (v_in - (v_in >>> leak_shift)) : v_in;
            wire signed [V_W:0] v_next_ext = {{leaked[V_W-1], leaked}}
                                           + {{current[V_W-1], current}};
            wire signed [V_W-1:0] v_next =
                (v_next_ext >  $signed({{1'b0, {{(V_W-1){{1'b1}}}}}})) ? {{1'b0, {{(V_W-1){{1'b1}}}}}} :
                (v_next_ext < -$signed({{1'b0, {{(V_W-1){{1'b1}}}}}})) ? {{1'b1, {{(V_W-1){{1'b0}}}}}} :
                v_next_ext[V_W-1:0];
            wire fired = (v_next >= threshold);

            always @(posedge clk) begin
                if (rst) begin
                    spike     <= 1'b0;
                    v_out     <= {{V_W{{1'b0}}}};
                    valid_out <= 1'b0;
                end else begin
                    valid_out <= valid_in;
                    if (valid_in) begin
                        spike <= fired;
                        v_out <= fired ? (reset_to_zero ? {{V_W{{1'b0}}}}
                                                        : v_next - threshold)
                                       : v_next;
                    end
                end
            end
        endmodule
        """
    )


def generate_bn_lane(arch: ArchConfig = PYNQ_Z2) -> str:
    """One batch-norm lane: (psum * G) >> frac + H, saturated."""
    p = arch.psum_bits
    b = arch.bn_bits
    frac = arch.bn_frac_bits
    return _header("bn_lane", arch) + textwrap.dedent(
        f"""\
        module bn_lane #(
            parameter PSUM_W = {p},
            parameter COEF_W = {b},
            parameter FRAC   = {frac}
        ) (
            input  wire                        clk,
            input  wire                        valid_in,
            input  wire signed [PSUM_W-1:0]    psum,
            input  wire signed [COEF_W-1:0]    g_coef,
            input  wire signed [COEF_W-1:0]    h_coef,
            output reg  signed [PSUM_W-1:0]    result,
            output reg                         valid_out
        );
            // The multiply maps onto one DSP48 slice.
            wire signed [PSUM_W+COEF_W-1:0] product = psum * g_coef;
            wire signed [PSUM_W+COEF_W-1:0] rounded =
                product + $signed({{{{(PSUM_W+COEF_W-FRAC){{1'b0}}}}, 1'b1, {{(FRAC-1){{1'b0}}}}}});
            wire signed [PSUM_W+COEF_W-FRAC-1:0] shifted =
                rounded >>> FRAC;
            wire signed [PSUM_W+COEF_W-FRAC:0] with_bias =
                shifted + {{{{(PSUM_W+COEF_W-FRAC-COEF_W+1){{h_coef[COEF_W-1]}}}}, h_coef}};
            wire signed [PSUM_W-1:0] saturated =
                (with_bias >  $signed({{1'b0, {{(PSUM_W-1){{1'b1}}}}}})) ? {{1'b0, {{(PSUM_W-1){{1'b1}}}}}} :
                (with_bias < -$signed({{1'b0, {{(PSUM_W-1){{1'b1}}}}}})) ? {{1'b1, {{(PSUM_W-1){{1'b0}}}}}} :
                with_bias[PSUM_W-1:0];

            always @(posedge clk) begin
                valid_out <= valid_in;
                if (valid_in)
                    result <= saturated;
            end
        endmodule
        """
    )


def generate_membrane_pingpong(arch: ArchConfig = PYNQ_Z2) -> str:
    """The U1/U2 dual-bank membrane memory with role swapping."""
    p = arch.psum_bits
    depth = arch.membrane_half_bytes // (p // 8)
    addr_w = max(1, (depth - 1).bit_length())
    return _header("membrane_pingpong", arch) + textwrap.dedent(
        f"""\
        module membrane_pingpong #(
            parameter DATA_W = {p},
            parameter DEPTH  = {depth},
            parameter ADDR_W = {addr_w}
        ) (
            input  wire               clk,
            input  wire               swap,       // toggle read/write roles
            input  wire [ADDR_W-1:0]  read_addr,
            output wire [DATA_W-1:0]  read_data,  // previous-timestep potential
            input  wire               write_en,
            input  wire [ADDR_W-1:0]  write_addr,
            input  wire [DATA_W-1:0]  write_data  // updated potential
        );
            reg role;  // 0: U1 read / U2 write, 1: swapped
            (* ram_style = "block" *) reg [DATA_W-1:0] u1_state [0:DEPTH-1];
            (* ram_style = "block" *) reg [DATA_W-1:0] u2_state [0:DEPTH-1];

            reg [DATA_W-1:0] u1_q, u2_q;
            always @(posedge clk) begin
                if (swap)
                    role <= ~role;
                u1_q <= u1_state[read_addr];
                u2_q <= u2_state[read_addr];
                if (write_en) begin
                    if (role)
                        u1_state[write_addr] <= write_data;
                    else
                        u2_state[write_addr] <= write_data;
                end
            end
            assign read_data = role ? u2_q : u1_q;
        endmodule
        """
    )


def generate_all(arch: ArchConfig = PYNQ_Z2) -> Dict[str, str]:
    """All datapath skeletons, keyed by file name."""
    return {
        "pe.v": generate_pe(arch),
        "pe_array.v": generate_pe_array(arch),
        "activation_unit.v": generate_activation_unit(arch),
        "bn_lane.v": generate_bn_lane(arch),
        "membrane_pingpong.v": generate_membrane_pingpong(arch),
    }


def write_rtl(directory, arch: ArchConfig = PYNQ_Z2) -> Dict[str, str]:
    """Write every generated file under ``directory``; returns paths."""
    from pathlib import Path

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {}
    for name, text in generate_all(arch).items():
        path = directory / name
        path.write_text(text, encoding="utf-8")
        written[name] = str(path)
    return written
