"""Compile a converted SNN into the SIA's integer layer programme.

The mapper is the "software" half of the hardware-software co-design:
it takes a converted network (INT8-fake-quantised convolutions +
IF/LIF neurons, see :mod:`repro.snn.convert`) and emits, per layer,
exactly what the PS streams to the accelerator:

* INT8 kernel weights (the 8 kB weight memory image);
* 16-bit fixed-point batch-norm coefficients G and H (eq. 2), which
  absorb the weight-quantisation scale ``q_w``, the incoming spike
  amplitude (the previous layer's threshold) and the layer's
  fixed-point grid;
* the 16-bit threshold and the IF/LIF mode bit.

Fixed-point convention: every spiking layer uses an output grid whose
LSB is ``threshold / 2**membrane_frac_bits``, so ``threshold_int`` is
the constant ``2**membrane_frac_bits`` and all layer-specific scaling
lives in G/H.  This keeps the activation unit trivial (a compare and a
subtract), as in the RTL.

Average pooling is folded into the *following* layer: a 2x2 avg-pool
followed by a KxK conv becomes a 2Kx2K stride-2 conv whose integer
weights are the original taps replicated over each pooling window, with
the 1/4 averaging factor absorbed into G.  This keeps every PE input a
binary spike and exercises the kernel-size reconfigurability the paper
demonstrates in Table II.  Global average pooling before the classifier
folds into the FC weights the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.hw.config import ArchConfig, LayerConfig, LayerKind, PYNQ_Z2
from repro.hw.fixed import int_limits, quantize_to_fixed
from repro.models.resnet import BasicBlock, ResNet
from repro.models.vgg import VGG
from repro.nn.module import Module
from repro.snn.neurons import IFNeuron, LIFNeuron


# ----------------------------------------------------------------------
# Mapped-layer records
# ----------------------------------------------------------------------
@dataclass
class ProjectionSpec:
    """A 1x1 projection shortcut executed as an auxiliary conv pass."""

    weights_int: np.ndarray
    g_int: np.ndarray
    h_int: np.ndarray
    g_frac_bits: int
    stride: int


@dataclass
class MappedLayer:
    """One accelerator layer invocation."""

    name: str
    config: LayerConfig
    weights_int: np.ndarray
    input_index: int                      # -1 = network input
    frame_input: bool = False             # PS-side INT8 frame convolution
    spiking: bool = True                  # False for the output (logit) layer
    output_scale: float = 1.0             # logits = psum * output_scale
    v_init_fraction: float = 0.5
    reset_to_zero: bool = False
    # Residual support (ResNet): contribution added before activation.
    residual_input_index: Optional[int] = None
    residual_identity_int: Optional[int] = None
    residual_projection: Optional[ProjectionSpec] = None
    # Bookkeeping for reports.
    threshold_float: float = 0.0
    pool_folded: int = 1                  # pooling factor folded into this layer

    @property
    def spatial_tiles(self) -> int:
        """Output tiles needed so one tile's membranes fit a ping-pong half."""
        return max(1, -(-self.config.out_neurons // _max_tile_neurons(self.config)))


def _max_tile_neurons(config: LayerConfig) -> int:
    # Kept as a function hook so tests can reason about tiling; the
    # actual capacity limit comes from the arch at mapping time and is
    # stored by the mapper below.
    return getattr(config, "_max_tile_neurons", 16384)


@dataclass
class MappedNetwork:
    """The full layer programme plus network-level metadata."""

    layers: List[MappedLayer]
    arch: ArchConfig
    input_scale: float                    # INT8 input quantisation scale
    input_shape: Tuple[int, int, int]
    model_name: str = ""

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("mapped network has no layers")

    @property
    def num_spiking_layers(self) -> int:
        return sum(1 for l in self.layers if l.spiking)

    def total_weight_bytes(self) -> int:
        return sum(int(l.weights_int.astype(np.int8).nbytes) for l in self.layers)

    def describe(self) -> str:
        lines = [
            f"{self.model_name or 'network'}: {len(self.layers)} mapped layers "
            f"({self.num_spiking_layers} spiking)"
        ]
        for idx, layer in enumerate(self.layers):
            c = layer.config
            lines.append(
                f"  [{idx:2d}] {layer.name:<24} {c.kind.value:<5} "
                f"{c.in_channels}x{c.in_height}x{c.in_width} -> "
                f"{c.out_channels}x{c.out_height}x{c.out_width} "
                f"k={c.kernel_size} s={c.stride} tiles={layer.spatial_tiles}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Quantisation helpers
# ----------------------------------------------------------------------
def _integer_weights(conv: Module, bits: int) -> Tuple[np.ndarray, float]:
    """INT weights + scale for a (possibly fake-quantised) conv/linear."""
    if isinstance(conv, (nn.QuantConv2d, nn.QuantLinear)):
        return conv.integer_weights()
    weights = conv.weight.data
    from repro.nn.quant import quantize_weight_int8

    return quantize_weight_int8(weights, bits=bits)


def _fold_bn(
    bn: Optional[nn.BatchNorm2d],
    weight_scale: float,
    input_amplitude: float,
    out_lsb: float,
    arch: ArchConfig,
    extra_gain: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray, int, dict]:
    """Fixed-point G/H such that current_int = psum*g>>frac + h.

    ``input_amplitude`` is the value one incoming spike represents (the
    previous spiking layer's threshold, or the input-pixel scale for the
    frame layer); ``extra_gain`` carries folded pooling factors.
    Returns (g_int, h_int, frac_bits, report) where the report records
    any saturation (useful when auditing precision).
    """
    if bn is not None:
        g_f, h_f = bn.fold_coefficients()
        channels = bn.num_features
    else:
        channels = None  # filled by caller via broadcasting
        g_f, h_f = np.array([1.0]), np.array([0.0])
    gain = weight_scale * input_amplitude * extra_gain / out_lsb
    g_real = g_f * gain
    h_real = h_f / out_lsb
    frac = arch.bn_frac_bits
    g_int = quantize_to_fixed(g_real, frac, arch.bn_bits)
    h_int = quantize_to_fixed(h_real, 0, arch.bn_bits)
    lo, hi = int_limits(arch.bn_bits)
    report = {
        "g_saturated": int(
            ((g_real * (1 << frac)) > hi).sum() + ((g_real * (1 << frac)) < lo).sum()
        ),
        "h_saturated": int((h_real > hi).sum() + (h_real < lo).sum()),
    }
    return g_int, h_int, frac, report


def _expand_pool_into_conv(
    weights: np.ndarray, pool: int
) -> np.ndarray:
    """Replicate conv taps over each pooling window (see module docstring).

    (C_out, C_in, K, K) -> (C_out, C_in, pool*K, pool*K); the 1/pool^2
    averaging factor is NOT applied here (it goes into G).
    """
    return np.repeat(np.repeat(weights, pool, axis=2), pool, axis=3)


def _expand_pool_into_fc(
    weights: np.ndarray, channels: int, height: int, width: int
) -> np.ndarray:
    """Fold a global average pool into FC weights.

    FC weights (out, C) become (out, C*H*W) by replicating each channel
    weight across the spatial positions; the 1/(H*W) factor is absorbed
    into the logit output scale by the caller.
    """
    out_features = weights.shape[0]
    expanded = np.repeat(weights[:, :, None], height * width, axis=2)
    return expanded.reshape(out_features, channels * height * width)


def _spiking_threshold(module: Module) -> Tuple[float, bool, int]:
    """(threshold, lif_mode, leak_shift) of a neuron layer."""
    if isinstance(module, LIFNeuron):
        # leak = 1 - 2**-shift  ->  shift = -log2(1 - leak)
        shift = int(round(-np.log2(max(1.0 - module.leak, 2 ** -8))))
        return module.threshold, True, shift
    if isinstance(module, IFNeuron):
        return module.threshold, False, 4
    raise TypeError(f"expected a spiking neuron, got {type(module).__name__}")


# ----------------------------------------------------------------------
# Network walkers
# ----------------------------------------------------------------------
class _MapperState:
    """Carries geometry/scale context while walking the network."""

    def __init__(
        self, arch: ArchConfig, input_shape: Tuple[int, int, int], input_scale: float
    ) -> None:
        self.arch = arch
        self.channels, self.height, self.width = input_shape
        self.amplitude = input_scale      # value of one incoming "spike"/pixel LSB
        self.frame_domain = True          # until the first spiking layer
        self.pending_pool = 1             # avg-pool factor awaiting folding
        self.last_index = -1              # producer of the current activations
        self.layers: List[MappedLayer] = []

    def emit(self, layer: MappedLayer) -> int:
        object.__setattr__(
            layer.config, "_max_tile_neurons", self.arch.max_tile_neurons
        )
        self.layers.append(layer)
        self.last_index = len(self.layers) - 1
        return self.last_index


def _map_conv_block(
    state: _MapperState,
    conv: Module,
    bn: Optional[nn.BatchNorm2d],
    neuron: Optional[Module],
    name: str,
    arch: ArchConfig,
    input_index: Optional[int] = None,
    residual: Optional[dict] = None,
) -> int:
    """Map conv(+bn)(+activation) into one accelerator layer."""
    w_int, w_scale = _integer_weights(conv, arch.adder_bits)
    pool = state.pending_pool
    state.pending_pool = 1
    if pool > 1:
        w_int = _expand_pool_into_conv(w_int, pool)
    kernel = conv.kernel_size * pool
    stride = conv.stride * pool
    padding = conv.padding * pool

    if neuron is not None:
        threshold, lif_mode, leak_shift = _spiking_threshold(neuron)
        out_lsb = threshold / (1 << arch.membrane_frac_bits)
        threshold_int = 1 << arch.membrane_frac_bits
        reset_to_zero = getattr(neuron, "reset", None) is not None and (
            neuron.reset.value == "zero"
        )
        v_init = neuron.v_init_fraction
    else:
        # Projection / pre-activation pass: grid chosen by the caller.
        raise ValueError("conv blocks must end in a spiking neuron")

    extra_gain = 1.0 / (pool * pool)
    g_int, h_int, frac, _ = _fold_bn(
        bn, w_scale, state.amplitude, out_lsb, arch, extra_gain
    )
    if bn is None:
        # Broadcast identity BN over output channels.
        g_int = np.repeat(g_int, conv.out_channels)
        h_int = np.repeat(h_int, conv.out_channels)

    config = LayerConfig(
        kind=LayerKind.CONV,
        in_channels=state.channels,
        out_channels=conv.out_channels,
        in_height=state.height,
        in_width=state.width,
        kernel_size=kernel,
        stride=stride,
        padding=padding,
        lif_mode=lif_mode,
        leak_shift=leak_shift,
        threshold_int=threshold_int,
        has_residual=residual is not None,
        name=name,
        g_int=g_int,
        h_int=h_int,
        g_frac_bits=frac,
        logical_kernel=conv.kernel_size,
    )
    layer = MappedLayer(
        name=name,
        config=config,
        weights_int=w_int,
        input_index=state.last_index if input_index is None else input_index,
        frame_input=state.frame_domain,
        threshold_float=threshold,
        pool_folded=pool,
        v_init_fraction=v_init,
        reset_to_zero=reset_to_zero,
    )
    if residual is not None:
        layer.residual_input_index = residual["input_index"]
        layer.residual_identity_int = residual.get("identity_int")
        layer.residual_projection = residual.get("projection")

    state.frame_domain = False
    state.amplitude = threshold
    state.channels = conv.out_channels
    state.height = config.out_height
    state.width = config.out_width
    return state.emit(layer)


def _map_output_fc(
    state: _MapperState,
    fc: Module,
    name: str,
    arch: ArchConfig,
    spatial: Optional[Tuple[int, int, int]] = None,
    pool_scale: float = 1.0,
) -> int:
    """Map the classifier as a non-spiking psum-accumulating layer."""
    w_int, w_scale = _integer_weights(fc, arch.adder_bits)
    if spatial is not None:
        channels, height, width = spatial
        w_int = _expand_pool_into_fc(w_int, channels, height, width)
        in_features = channels * height * width
    else:
        in_features = w_int.shape[1]
    config = LayerConfig(
        kind=LayerKind.FC,
        in_channels=in_features,
        out_channels=w_int.shape[0],
        in_height=1,
        in_width=1,
        kernel_size=1,
        name=name,
        threshold_int=1,  # unused: non-spiking output layer
        logical_in_features=fc.in_features,
    )
    layer = MappedLayer(
        name=name,
        config=config,
        weights_int=w_int,
        input_index=state.last_index,
        spiking=False,
        output_scale=w_scale * state.amplitude * pool_scale,
        threshold_float=0.0,
    )
    return state.emit(layer)


def _map_vgg(model: VGG, state: _MapperState, arch: ArchConfig) -> None:
    modules = list(model.features)
    idx = 0
    block = 0
    while idx < len(modules):
        module = modules[idx]
        if isinstance(module, (nn.AvgPool2d, nn.MaxPool2d)):
            if isinstance(module, nn.MaxPool2d):
                raise ValueError(
                    "max-pool cannot be folded into the adder-only datapath; "
                    "build the VGG with pool='avg' for hardware mapping"
                )
            state.pending_pool *= module.kernel_size
            idx += 1
            continue
        if isinstance(module, (nn.Conv2d,)):
            bn = modules[idx + 1] if isinstance(modules[idx + 1], nn.BatchNorm2d) else None
            act_idx = idx + (2 if bn is not None else 1)
            neuron = modules[act_idx]
            if not isinstance(neuron, IFNeuron):
                raise ValueError(
                    f"expected a spiking activation after conv #{block}, got "
                    f"{type(neuron).__name__}; convert the model first"
                )
            block += 1
            _map_conv_block(state, module, bn, neuron, f"conv{block}", arch)
            idx = act_idx + 1
            continue
        raise ValueError(f"unsupported module in VGG features: {type(module).__name__}")
    # Trailing pool folds into the classifier spatially.
    pool = state.pending_pool
    state.pending_pool = 1
    h, w = state.height, state.width
    _map_output_fc(
        state,
        model.fc,
        "fc",
        arch,
        spatial=(state.channels, h, w),
        pool_scale=1.0 / (pool * pool) if pool > 1 else 1.0,
    )


def _map_resnet(model: ResNet, state: _MapperState, arch: ArchConfig) -> None:
    if not isinstance(model.act1, IFNeuron):
        raise ValueError("convert the model to an SNN before mapping")
    _map_conv_block(state, model.conv1, model.bn1, model.act1, "stem", arch)

    block_no = 0
    for stage in (model.layer1, model.layer2, model.layer3, model.layer4):
        for block in stage:
            assert isinstance(block, BasicBlock)
            block_no += 1
            block_input_index = state.last_index
            block_input_amplitude = state.amplitude
            block_in_shape = (state.channels, state.height, state.width)

            _map_conv_block(
                state, block.conv1, block.bn1, block.act1, f"b{block_no}.conv1", arch
            )

            # Residual contribution on conv2's output grid.
            out_threshold = block.act2.threshold
            out_lsb = out_threshold / (1 << arch.membrane_frac_bits)
            if isinstance(block.shortcut, nn.Identity):
                identity_int = int(round(block_input_amplitude / out_lsb))
                residual = {
                    "input_index": block_input_index,
                    "identity_int": identity_int,
                }
            else:
                proj_conv = block.shortcut[0]
                proj_bn = block.shortcut[1]
                pw_int, pw_scale = _integer_weights(proj_conv, arch.adder_bits)
                pg, ph, pfrac, _ = _fold_bn(
                    proj_bn, pw_scale, block_input_amplitude, out_lsb, arch
                )
                residual = {
                    "input_index": block_input_index,
                    "projection": ProjectionSpec(
                        weights_int=pw_int,
                        g_int=pg,
                        h_int=ph,
                        g_frac_bits=pfrac,
                        stride=proj_conv.stride,
                    ),
                }
            _map_conv_block(
                state,
                block.conv2,
                block.bn2,
                block.act2,
                f"b{block_no}.conv2",
                arch,
                residual=residual,
            )

    h, w = state.height, state.width
    _map_output_fc(
        state,
        model.fc,
        "fc",
        arch,
        spatial=(state.channels, h, w),
        pool_scale=1.0 / (h * w),
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def map_network(
    model: Module,
    input_shape: Tuple[int, int, int] = (3, 32, 32),
    arch: ArchConfig = PYNQ_Z2,
    input_scale: Optional[float] = None,
    calibration_input: Optional[np.ndarray] = None,
) -> MappedNetwork:
    """Compile a converted SNN model into an accelerator programme.

    Parameters
    ----------
    model:
        A converted network (:func:`repro.snn.convert.convert_to_snn`).
        ResNet and VGG topologies are supported.
    input_scale:
        INT8 quantisation scale of the input frame.  When None it is
        derived from ``calibration_input`` (max-abs / 127) or defaults
        to 1/127 for inputs already in [-1, 1].
    """
    if input_scale is None:
        if calibration_input is not None:
            input_scale = float(np.abs(calibration_input).max()) / 127.0
        else:
            input_scale = 1.0 / 127.0
    state = _MapperState(arch, input_shape, input_scale)
    if isinstance(model, ResNet):
        _map_resnet(model, state, arch)
        name = "resnet"
    elif isinstance(model, VGG):
        _map_vgg(model, state, arch)
        name = "vgg"
    else:
        raise TypeError(
            f"no mapping rule for {type(model).__name__}; supported: ResNet, VGG"
        )
    return MappedNetwork(
        layers=state.layers,
        arch=arch,
        input_scale=input_scale,
        input_shape=input_shape,
        model_name=name,
    )
