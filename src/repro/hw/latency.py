"""Layer-latency models reproducing the paper's Tables I and II.

Two models are provided, because the paper's published latencies admit
only one physically consistent reading:

``LatencyModel`` (calibrated)
    Reproduces the PYNQ-Z2 prototype wall-clock numbers.  A non-negative
    least-squares fit of the 15 published latency points (Table I rows
    for ResNet-18 and VGG-11 + Table II kernel sweep + the FC row)
    against per-layer workload features yields:

    * a fixed **per-layer invocation overhead of ~0.976 ms** (PS-side
      driver/configuration cost) that dominates every convolution row —
      this is why the paper's conv latencies are nearly constant while
      the underlying MAC counts vary by more than an order of magnitude;
    * an **MMIO cost of ~45.3 us per 32-bit word** for the
      fully-connected layer, whose weights are streamed register-by-
      register from userspace (1280 words x 45.3 us ~= 58 ms: the
      Table I FC row);
    * a small **exposed-compute residue of ~0.01 ns per PL cycle**
      (i.e. ~0.1% of PL compute cycles are not hidden behind the driver
      overhead) which carries the Table II kernel-size trend.

    Bulk transfers (weights, spike streams) move by DMA burst at
    ~0.7 cycles/word and are fully overlapped with the invocation
    overhead; they are accounted (for energy/bandwidth reporting) but do
    not appear on the critical path.

``ArchitecturalLatencyModel``
    The pure PL cycle count (spiking core + aggregation core, no PS
    overhead) from the same event-driven schedule the cycle-accurate
    simulator implements.  This is the model that scales with workload
    and is used for the event-driven-vs-dense ablation and the ASIC
    projection, where no PS driver exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hw.axi import AxiModel, AxiTimings
from repro.hw.config import ArchConfig, LayerConfig, LayerKind, PYNQ_Z2


@dataclass(frozen=True)
class CalibrationConstants:
    """NNLS-fitted constants (see module docstring for provenance)."""

    invoke_seconds: float = 0.9440e-3
    mmio_seconds_per_word: float = 45.253e-6
    exposed_seconds_per_cycle: float = 0.035e-9
    burst_cycles_per_word: float = 0.7
    default_spike_rate: float = 0.12


@dataclass
class LayerLatency:
    """Latency breakdown of one layer invocation."""

    name: str
    seconds: float
    invoke_seconds: float
    mmio_seconds: float
    exposed_compute_seconds: float
    overlapped_stream_seconds: float
    pl_cycles: int

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


class ArchitecturalLatencyModel:
    """Pure PL cycle model of one layer (no PS overhead).

    Cycle counts follow the PE schedule of :mod:`repro.hw.core`:
    one cycle per active 3-tap kernel-row segment, one finalize cycle
    per kernel application, output channels in groups of 64, plus the
    aggregation core's pipelined neuron updates.
    """

    def __init__(self, arch: ArchConfig = PYNQ_Z2, event_driven: bool = True) -> None:
        self.arch = arch
        self.event_driven = event_driven

    def conv_cycles(
        self, layer: LayerConfig, timesteps: int, spike_rate: float
    ) -> int:
        k = layer.kernel_size
        m = self.arch.muxes_per_pe
        segments_per_row = -(-k // m)
        pixels = layer.out_height * layer.out_width
        if self.event_driven:
            taps = min(k, m)
            segment_activity = 1.0 - (1.0 - spike_rate) ** taps
        else:
            segment_activity = 1.0
        row_cycles = pixels * layer.in_channels * k * segments_per_row * segment_activity
        finalize = pixels * layer.in_channels
        groups = -(-layer.out_channels // self.arch.num_pes)
        core = int(round((row_cycles + finalize) * groups)) * timesteps
        agg = -(-layer.out_neurons // self.arch.num_bn_multipliers) * timesteps
        return core + agg

    def fc_cycles(self, layer: LayerConfig, timesteps: int, spike_rate: float) -> int:
        m = self.arch.muxes_per_pe
        segments = -(-layer.in_channels // m)
        activity = (
            1.0 - (1.0 - spike_rate) ** m if self.event_driven else 1.0
        )
        groups = -(-layer.out_channels // self.arch.num_pes)
        return int(round(segments * activity * groups + groups)) * timesteps

    def layer_cycles(
        self, layer: LayerConfig, timesteps: int, spike_rate: float
    ) -> int:
        if layer.kind is LayerKind.FC:
            return self.fc_cycles(layer, timesteps, spike_rate)
        return self.conv_cycles(layer, timesteps, spike_rate)

    def layer_seconds(
        self, layer: LayerConfig, timesteps: int, spike_rate: float
    ) -> float:
        return self.layer_cycles(layer, timesteps, spike_rate) / self.arch.clock_hz


class LatencyModel:
    """Calibrated PYNQ-Z2 wall-clock model (reproduces Tables I and II)."""

    def __init__(
        self,
        arch: ArchConfig = PYNQ_Z2,
        constants: CalibrationConstants = CalibrationConstants(),
        event_driven: bool = True,
    ) -> None:
        self.arch = arch
        self.constants = constants
        self.architectural = ArchitecturalLatencyModel(arch, event_driven)
        self.axi = AxiModel(
            arch,
            AxiTimings(
                burst_cycles_per_word=constants.burst_cycles_per_word,
                mmio_seconds_per_word=constants.mmio_seconds_per_word,
                invoke_overhead_seconds=constants.invoke_seconds,
            ),
        )

    # ------------------------------------------------------------------
    def _stream_words(self, layer: LayerConfig, timesteps: int, frame_input: bool) -> int:
        word = self.arch.axi_bus_bits
        weight_bits = layer.weight_count * self.arch.adder_bits
        if frame_input:
            in_bits = layer.in_neurons * self.arch.adder_bits  # INT8 frame
        else:
            in_bits = layer.in_neurons  # binary spikes
        out_bits = layer.out_neurons
        per_step = -(-in_bits // word) + -(-out_bits // word)
        return -(-weight_bits // word) + per_step * timesteps

    def layer_latency(
        self,
        layer: LayerConfig,
        timesteps: int = 8,
        spike_rate: Optional[float] = None,
        frame_input: bool = False,
    ) -> LayerLatency:
        """Wall-clock latency of one layer invocation for T timesteps."""
        rate = (
            spike_rate if spike_rate is not None else self.constants.default_spike_rate
        )
        cycles = self.architectural.layer_cycles(layer, timesteps, rate)
        invoke = self.constants.invoke_seconds
        exposed = cycles * self.constants.exposed_seconds_per_cycle
        stream_words = self._stream_words(layer, timesteps, frame_input)
        overlapped = (
            stream_words * self.constants.burst_cycles_per_word / self.arch.clock_hz
        )
        mmio = 0.0
        if layer.kind is LayerKind.FC:
            # FC weights move word-by-word through userspace MMIO.  The
            # PS stores the *logical* (pre-pool-fold) weights; spatial
            # replication happens in the address generator, not the bus.
            fan_in = layer.logical_in_features or layer.in_channels
            weight_bits = fan_in * layer.out_channels * self.arch.adder_bits
            weight_words = -(-weight_bits // self.arch.axi_bus_bits)
            mmio = weight_words * self.constants.mmio_seconds_per_word
        return LayerLatency(
            name=layer.name,
            seconds=invoke + exposed + mmio,
            invoke_seconds=invoke,
            mmio_seconds=mmio,
            exposed_compute_seconds=exposed,
            overlapped_stream_seconds=overlapped,
            pl_cycles=cycles,
        )

    # ------------------------------------------------------------------
    def network_latency(
        self,
        layers: Sequence[LayerConfig],
        timesteps: int = 8,
        spike_rates: Optional[Sequence[float]] = None,
        frame_first: bool = True,
    ) -> List[LayerLatency]:
        """Latency of every layer in a network programme."""
        results = []
        for idx, layer in enumerate(layers):
            rate = spike_rates[idx] if spike_rates is not None else None
            results.append(
                self.layer_latency(
                    layer,
                    timesteps=timesteps,
                    spike_rate=rate,
                    frame_input=frame_first and idx == 0,
                )
            )
        return results


def group_latencies_like_table1(
    latencies: Sequence[LayerLatency], layers: Sequence[LayerConfig]
) -> List[dict]:
    """Aggregate per-layer latencies into the paper's Table I row format.

    The paper groups convolutions by (kernel, out_channels, output size)
    — e.g. "Conv 5 (3x3,64) 32x32" is the total over the five ResNet
    conv layers with 64 output channels at 32x32.  Returns a list of
    dicts with keys: label, count, output_size, latency_ms.
    """
    groups: Dict[tuple, dict] = {}
    order: List[tuple] = []
    for lat, cfg in zip(latencies, layers):
        if cfg.kind is LayerKind.FC:
            fan_in = cfg.logical_in_features or cfg.in_channels
            key = ("fc", fan_in, cfg.out_channels)
            label = f"FC ({fan_in})"
            size = f"{fan_in}x{cfg.out_channels}"
        else:
            k = cfg.logical_kernel or cfg.kernel_size
            key = ("conv", k, cfg.out_channels, cfg.out_height)
            label = f"Conv ({k}x{k},{cfg.out_channels})"
            size = f"{cfg.out_height}x{cfg.out_width}"
        if key not in groups:
            groups[key] = {
                "label": label,
                "count": 0,
                "output_size": size,
                "latency_ms": 0.0,
            }
            order.append(key)
        groups[key]["count"] += 1
        groups[key]["latency_ms"] += lat.milliseconds
    return [groups[k] for k in order]
