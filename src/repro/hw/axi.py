"""PS <-> PL transfer-cost model.

The prototype moves data between the ZYNQ processing system and the SIA
over AXI (paper §IV: AXI4-Lite for configuration, DDR-backed streams
for spikes/weights).  Measured PYNQ-Z2 behaviour has three regimes,
which this model captures with three calibrated constants:

* ``burst``: bulk BRAM loads (spikes, weights) sustain roughly one bus
  word every ``burst_cycles_per_word`` PL cycles;
* ``mmio``: register-by-register AXI4-Lite accesses driven from
  userspace cost microseconds *per word* (dominated by the PS-side
  driver, not the bus) — this is what makes the fully-connected layer
  of Table I ~60x slower than the convolutions;
* ``invoke``: each layer invocation pays a fixed PS-side software
  overhead (configuration writes, synchronisation).

See ``repro.hw.latency`` for how the constants were calibrated against
the paper's Tables I and II.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import ArchConfig, PYNQ_Z2


@dataclass(frozen=True)
class AxiTimings:
    """Calibrated transfer-cost constants (see module docstring)."""

    burst_cycles_per_word: float = 0.7
    mmio_seconds_per_word: float = 45e-6
    invoke_overhead_seconds: float = 0.85e-3


class AxiModel:
    """Convert transfer sizes into PL cycles / wall-clock seconds."""

    def __init__(
        self, arch: ArchConfig = PYNQ_Z2, timings: AxiTimings = AxiTimings()
    ) -> None:
        self.arch = arch
        self.timings = timings
        self.bytes_transferred = 0

    @property
    def word_bytes(self) -> int:
        return self.arch.axi_bus_bits // 8

    def words_for(self, num_bytes: int) -> int:
        return -(-num_bytes // self.word_bytes)

    def burst_seconds(self, num_bytes: int) -> float:
        """Wall-clock time of a bulk (DMA-style) transfer."""
        self.bytes_transferred += num_bytes
        cycles = self.words_for(num_bytes) * self.timings.burst_cycles_per_word
        return cycles / self.arch.clock_hz

    def mmio_seconds(self, num_bytes: int) -> float:
        """Wall-clock time of word-by-word userspace MMIO transfers."""
        self.bytes_transferred += num_bytes
        return self.words_for(num_bytes) * self.timings.mmio_seconds_per_word

    def invoke_seconds(self) -> float:
        """Fixed per-layer-invocation software overhead."""
        return self.timings.invoke_overhead_seconds
