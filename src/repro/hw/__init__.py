"""Cycle-level and analytical models of the Spiking Inference Accelerator.

The package mirrors the paper's block diagram (Fig. 2):

``repro.hw.pe``           one processing element (3 muxes + 8-bit adder)
``repro.hw.core``         the 8x8 PE spiking core with cycle accounting
``repro.hw.aggregation``  batch-norm unit + IF/LIF activation unit
``repro.hw.memory``       memory map, ping-pong membrane buffers, BRAM
``repro.hw.axi``          PS<->PL transfer-cost model (AXI4-Lite + burst)
``repro.hw.controller``   the Fig. 5 layer-execution flow
``repro.hw.mapper``       compiles a converted SNN into layer configs
``repro.hw.accelerator``  full SIA: runs a network in the integer domain
``repro.hw.latency``      calibrated wall-clock model (Tables I, II)
``repro.hw.resources``    FPGA utilisation + throughput model (Tables III, IV)
``repro.hw.power``        power estimate
``repro.hw.asic``         40 nm ASIC projection (paper §V)
"""

from repro.hw.config import ArchConfig, LayerConfig, LayerKind, PYNQ_Z2
from repro.hw.pe import ProcessingElement
from repro.hw.core import SpikingCore
from repro.hw.aggregation import ActivationUnit, AggregationCore, BatchNormUnit
from repro.hw.memory import BramBank, MemoryMap, PingPongBuffer
from repro.hw.axi import AxiModel
from repro.hw.mapper import MappedLayer, MappedNetwork, map_network
from repro.hw.accelerator import SpikingInferenceAccelerator
from repro.hw.latency import LatencyModel, LayerLatency
from repro.hw.resources import ResourceModel, ThroughputModel
from repro.hw.power import PowerModel
from repro.hw.asic import AsicProjection
from repro.hw.dse import DesignPoint, DesignSpaceExplorer, SweepSpec
from repro.hw.traffic import TrafficModel, TrafficReport
from repro.hw.faults import FaultReport, flip_threshold_bits, flip_weight_bits, weight_fault_sweep
from repro.hw import isa, rtl

__all__ = [
    "ArchConfig",
    "LayerConfig",
    "LayerKind",
    "PYNQ_Z2",
    "ProcessingElement",
    "SpikingCore",
    "BatchNormUnit",
    "ActivationUnit",
    "AggregationCore",
    "MemoryMap",
    "PingPongBuffer",
    "BramBank",
    "AxiModel",
    "map_network",
    "MappedLayer",
    "MappedNetwork",
    "SpikingInferenceAccelerator",
    "LatencyModel",
    "LayerLatency",
    "ResourceModel",
    "ThroughputModel",
    "PowerModel",
    "AsicProjection",
    "DesignSpaceExplorer",
    "DesignPoint",
    "SweepSpec",
    "TrafficModel",
    "TrafficReport",
    "FaultReport",
    "flip_weight_bits",
    "flip_threshold_bits",
    "weight_fault_sweep",
    "isa",
    "rtl",
]
