"""End-to-end integer SIA inference: fidelity and sustained throughput.

Not a paper table per se, but the glue between them: the bit-true
integer pipeline must agree with the float SNN (the co-design claim of
"software-equivalent accuracy in hardware"), and the cycle counts give
the sustained-utilisation context for Table IV's peak 38.4 GOPS.
"""

import numpy as np

from repro.data import SyntheticCIFAR
from repro.hw import SpikingInferenceAccelerator, map_network
from repro.hw.resources import ThroughputModel
from repro.pipeline import TrainConfig, run_conversion_pipeline


def test_sia_integer_fidelity_and_throughput(benchmark):
    ds = SyntheticCIFAR(
        num_train=600, num_test=200, noise=1.0, class_overlap=0.55, seed=4
    )
    # Properly-ordered pipeline: train -> calibrate -> fine-tune -> convert.
    result = run_conversion_pipeline(
        "vgg11",
        ds,
        width=0.125,
        levels=2,
        timesteps=8,
        max_timesteps=8,
        ann_config=TrainConfig(epochs=4),
        finetune_config=TrainConfig(epochs=3, lr=5e-4),
    )
    snn = result.snn
    mapped = map_network(snn.model, calibration_input=ds.train_x)
    sia = SpikingInferenceAccelerator(mapped)

    batch = ds.test_x[:128]
    logits_int, report = benchmark.pedantic(
        lambda: sia.run(batch, timesteps=8), rounds=1, iterations=1
    )
    float_logits = snn.forward(batch, 8)
    agreement = float((logits_int.argmax(1) == float_logits.argmax(1)).mean())
    int_acc = float((logits_int.argmax(1) == ds.test_y[:128]).mean())
    float_acc = float((float_logits.argmax(1) == ds.test_y[:128]).mean())

    arch = mapped.arch
    synops_per_inf = report.total_synaptic_ops / report.batch_size
    cycles_per_inf = report.cycles_per_inference
    sustained_gops = (
        2 * synops_per_inf / (cycles_per_inf / arch.clock_hz) / 1e9
        if cycles_per_inf
        else 0.0
    )
    tm = ThroughputModel(arch)

    print("\n--- SIA integer inference (VGG-11, T=8) ---")
    print(f"float SNN accuracy:   {float_acc:.4f}")
    print(f"integer SIA accuracy: {int_acc:.4f}")
    print(f"prediction agreement: {agreement:.4f}")
    print(f"synaptic ops / inference:    {synops_per_inf:,.0f}")
    print(f"PL cycles / inference:       {cycles_per_inf:,.0f}")
    print(f"sustained GOPS (mux+add):    {sustained_gops:.2f} of {tm.peak_gops():.1f} peak")

    assert agreement >= 0.9, "INT8 datapath must track the float SNN"
    assert abs(int_acc - float_acc) <= 0.05
    assert 0 < sustained_gops <= tm.peak_gops() * 1.01
