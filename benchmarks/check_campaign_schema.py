#!/usr/bin/env python
"""Validate a campaign directory's manifest and per-point records.

Usage::

    python benchmarks/check_campaign_schema.py <campaign_dir>

Checks the contract the resumable runner (``repro.eval.campaign``)
promises: a ``manifest.json`` tagged ``repro-campaign/v1`` whose point
list matches its grid, and one ``points/<id>.json`` record per point
tagged ``repro-campaign-point/v1`` with matching campaign name, id and
a ``result`` payload.  Exits nonzero (failing the CI job) when the
directory is missing, a record is unparsable, or any point of the
manifest has no valid record — i.e. the campaign did not complete.

Pure stdlib on purpose: it runs before/without the test environment.
"""

import json
import sys
from pathlib import Path

CAMPAIGN_FORMAT = "repro-campaign/v1"
POINT_FORMAT = "repro-campaign-point/v1"


def check_campaign(campaign_dir):
    """Return a list of failure strings for one campaign directory."""
    failures = []
    manifest_path = campaign_dir / "manifest.json"
    if not manifest_path.exists():
        return [f"{manifest_path} does not exist"]
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as error:
        return [f"{manifest_path} is not JSON ({error})"]
    if manifest.get("format") != CAMPAIGN_FORMAT:
        failures.append(
            f"manifest format {manifest.get('format')!r} != {CAMPAIGN_FORMAT!r}"
        )
    for key in ("name", "seed", "grid", "points"):
        if key not in manifest:
            failures.append(f"manifest is missing {key!r}")
    if failures:
        return failures

    expected = 1
    for axis, values in manifest["grid"].items():
        if not isinstance(values, list) or not values:
            failures.append(f"grid axis {axis!r} is not a non-empty list")
            return failures
        expected *= len(values)
    points = manifest["points"]
    if len(points) != expected:
        failures.append(
            f"manifest lists {len(points)} points but the grid expands to "
            f"{expected}"
        )
    if len(set(points)) != len(points):
        failures.append("manifest point ids are not unique")

    for pid in points:
        record_path = campaign_dir / "points" / f"{pid}.json"
        if not record_path.exists():
            failures.append(f"point {pid}: no record (campaign incomplete)")
            continue
        try:
            record = json.loads(record_path.read_text())
        except json.JSONDecodeError as error:
            failures.append(f"point {pid}: record is not JSON ({error})")
            continue
        if record.get("format") != POINT_FORMAT:
            failures.append(
                f"point {pid}: format {record.get('format')!r} != {POINT_FORMAT!r}"
            )
        if record.get("campaign") != manifest["name"]:
            failures.append(
                f"point {pid}: campaign {record.get('campaign')!r} != "
                f"{manifest['name']!r}"
            )
        if record.get("id") != pid:
            failures.append(f"point {pid}: record id {record.get('id')!r} mismatch")
        if not isinstance(record.get("seed"), int):
            failures.append(f"point {pid}: seed missing or not an int")
        if not isinstance(record.get("params"), dict):
            failures.append(f"point {pid}: params missing or not an object")
        if not isinstance(record.get("result"), dict):
            failures.append(f"point {pid}: result missing or not an object")
        # Supervision-trail fields (PR 8): optional for records written
        # by older runners, type-checked when present.
        if "shard_failures" in record and not isinstance(
            record["shard_failures"], int
        ):
            failures.append(f"point {pid}: shard_failures is not an int")
        if "degraded_shard_mode" in record and not isinstance(
            record["degraded_shard_mode"], str
        ):
            failures.append(f"point {pid}: degraded_shard_mode is not a string")
    return failures


def main(argv):
    if len(argv) != 2:
        print("usage: check_campaign_schema.py <campaign_dir>", file=sys.stderr)
        return 2
    campaign_dir = Path(argv[1])
    failures = check_campaign(campaign_dir)
    if failures:
        for failure in failures:
            print(f"campaign schema check failed: {failure}", file=sys.stderr)
        return 1
    manifest = json.loads((campaign_dir / "manifest.json").read_text())
    print(
        f"{campaign_dir}: schema ok "
        f"({manifest['name']}, {len(manifest['points'])} points complete)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
