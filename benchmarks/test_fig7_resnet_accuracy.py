"""Fig. 7: ResNet-18 SNN classification accuracy vs spike timesteps.

Paper (CIFAR-10, full-width): ANN 95.83%, quantised ANN 94.37%, SNN
94.71% — the SNN exceeds the quantised ANN within ~8 timesteps and
settles within 1% of the FP32 baseline.

Here (synthetic dataset, width-scaled): absolute accuracies differ, but
the *shape* must hold — a rising curve that reaches the quantised-ANN
accuracy band within ~8 steps and lands close to the ANN baseline.
"""

PAPER = {"ann": 0.9583, "quant": 0.9437, "snn": 0.9471, "timesteps": 8}


def test_fig7_resnet18_accuracy_vs_timesteps(resnet_curve, synthetic_dataset, benchmark):
    curve = resnet_curve
    print("\n--- Fig. 7 (ResNet-18 accuracy vs timesteps) ---")
    print(
        f"paper:    ANN={PAPER['ann']:.4f} quant={PAPER['quant']:.4f} "
        f"SNN(T=8)={PAPER['snn']:.4f}"
    )
    print(
        f"measured: ANN={curve.ann_accuracy:.4f} quant={curve.quant_accuracy:.4f} "
        f"SNN(T=8)={curve.per_step_accuracy[7]:.4f}"
    )
    series = " ".join(f"{a:.3f}" for a in curve.per_step_accuracy)
    print(f"measured per-step accuracy (T=1..{len(curve.per_step_accuracy)}): {series}")

    # The benchmarked unit: one 8-timestep SNN inference pass on a batch.
    batch = synthetic_dataset.test_x[:64]
    benchmark.pedantic(
        lambda: curve.result.snn.forward(batch, timesteps=8), rounds=2, iterations=1
    )

    # Shape criteria (see module docstring).
    acc8 = curve.per_step_accuracy[7]
    final = curve.per_step_accuracy[-1]
    assert curve.per_step_accuracy[0] < acc8, "curve must rise with T"
    assert acc8 >= curve.quant_accuracy - 0.05, (
        "SNN should reach the quantised-ANN band by T=8"
    )
    assert final >= curve.ann_accuracy - 0.10, "SNN should settle near the ANN baseline"
