"""Extension: weight-memory fault robustness of the INT8 datapath.

Sweeps bit-error rates in the accelerator's weight memory image with
the bit-true simulator.  Edge deployments care about this curve (SEUs,
transfer corruption); the integer model captures high-order-bit damage
a float simulation would smooth over.

The sweep runs through the resumable campaign substrate
(:mod:`repro.eval.campaign`): one atomic JSON record per
(bit-error-rate, trial) point with order-independent seeding, so the
same grid can be killed, resumed, or sharded and still reproduce these
exact numbers.
"""

from repro.data import SyntheticCIFAR
from repro.eval import CampaignRunner, CampaignSpec, render_table
from repro.hw import map_network
from repro.hw.accelerator import SpikingInferenceAccelerator
from repro.hw.faults import fault_trial
from repro.pipeline import TrainConfig, run_conversion_pipeline


def test_weight_memory_fault_robustness(benchmark, tmp_path):
    ds = SyntheticCIFAR(
        num_train=600, num_test=200, noise=1.0, class_overlap=0.55, seed=12
    )
    result = run_conversion_pipeline(
        "vgg11",
        ds,
        width=0.125,
        levels=2,
        timesteps=8,
        max_timesteps=8,
        ann_config=TrainConfig(epochs=4),
        finetune_config=TrainConfig(epochs=3, lr=5e-4),
    )
    mapped = map_network(result.snn.model, calibration_input=ds.train_x)
    baseline = SpikingInferenceAccelerator(mapped).accuracy(
        ds.test_x, ds.test_y, timesteps=8
    )

    rates = [0.0, 1e-4, 1e-3, 1e-2, 5e-2]
    spec = CampaignSpec(
        name="fault-robustness",
        grid={"bit_error_rate": rates},
        seed=12,
        metadata={"model": "vgg11", "timesteps": 8},
    )

    def point_fn(params, seed):
        return fault_trial(
            mapped,
            ds.test_x,
            ds.test_y,
            bit_error_rate=params["bit_error_rate"],
            seed=seed,
            timesteps=8,
            baseline_accuracy=baseline,
        ).to_payload()

    runner = CampaignRunner(spec, point_fn, out_dir=tmp_path / "campaign")
    campaign = benchmark.pedantic(runner.run, rounds=1, iterations=1)

    assert campaign.complete, f"missing points: {campaign.missing}"
    reports = campaign.results()  # grid order == rates order

    print("\n--- Weight-memory fault robustness (VGG-11, T=8) ---")
    rows = [
        {
            "bit_error_rate": r["bit_error_rate"],
            "flipped_bits": r["flipped_bits"],
            "accuracy": round(r["faulty_accuracy"], 4),
            "drop": round(r["accuracy_drop"], 4),
        }
        for r in reports
    ]
    print(render_table(rows, ["bit_error_rate", "flipped_bits", "accuracy", "drop"]))

    # A zero-rate point flips nothing: the campaign record must agree
    # with the directly measured baseline.
    assert reports[0]["flipped_bits"] == 0
    assert reports[0]["faulty_accuracy"] == baseline
    assert baseline > 0.6, "pipeline must produce a working network"
    # Graceful degradation at low BER, collapse at high BER.
    assert reports[1]["faulty_accuracy"] >= baseline - 0.10, "1e-4 BER ~ harmless"
    assert reports[-1]["faulty_accuracy"] <= baseline, "5e-2 BER must hurt"
