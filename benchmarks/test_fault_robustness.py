"""Extension: weight-memory fault robustness of the INT8 datapath.

Sweeps bit-error rates in the accelerator's weight memory image with
the bit-true simulator.  Edge deployments care about this curve (SEUs,
transfer corruption); the integer model captures high-order-bit damage
a float simulation would smooth over.
"""

from repro.data import SyntheticCIFAR
from repro.eval import render_table
from repro.hw import map_network
from repro.hw.faults import weight_fault_sweep
from repro.pipeline import TrainConfig, run_conversion_pipeline


def test_weight_memory_fault_robustness(benchmark):
    ds = SyntheticCIFAR(
        num_train=600, num_test=200, noise=1.0, class_overlap=0.55, seed=12
    )
    result = run_conversion_pipeline(
        "vgg11",
        ds,
        width=0.125,
        levels=2,
        timesteps=8,
        max_timesteps=8,
        ann_config=TrainConfig(epochs=4),
        finetune_config=TrainConfig(epochs=3, lr=5e-4),
    )
    mapped = map_network(result.snn.model, calibration_input=ds.train_x)

    rates = [0.0, 1e-4, 1e-3, 1e-2, 5e-2]
    reports = benchmark.pedantic(
        lambda: weight_fault_sweep(
            mapped, ds.test_x, ds.test_y, bit_error_rates=rates, timesteps=8
        ),
        rounds=1,
        iterations=1,
    )

    print("\n--- Weight-memory fault robustness (VGG-11, T=8) ---")
    rows = [
        {
            "bit_error_rate": r.bit_error_rate,
            "flipped_bits": r.flipped_bits,
            "accuracy": round(r.faulty_accuracy, 4),
            "drop": round(r.accuracy_drop, 4),
        }
        for r in reports
    ]
    print(render_table(rows, ["bit_error_rate", "flipped_bits", "accuracy", "drop"]))

    baseline = reports[0].faulty_accuracy
    assert baseline > 0.6, "pipeline must produce a working network"
    # Graceful degradation at low BER, collapse at high BER.
    assert reports[1].faulty_accuracy >= baseline - 0.10, "1e-4 BER ~ harmless"
    assert reports[-1].faulty_accuracy <= baseline, "5e-2 BER must hurt"
