"""Fig. 6: average spike rate per layer, converted ResNet-18.

Paper: per-layer average ~0.05-0.175 spikes/neuron/timestep, overall
~0.12, and *no decreasing trend with depth* (a consequence of
reset-by-subtraction with per-layer learned thresholds).
"""

import numpy as np

from repro.eval import spike_rate_experiment

PAPER_OVERALL = 0.12


def test_fig6_resnet18_spike_rates(resnet_curve, synthetic_dataset, benchmark):
    stats = benchmark.pedantic(
        lambda: spike_rate_experiment(
            resnet_curve, synthetic_dataset, timesteps=8, max_samples=128
        ),
        rounds=1,
        iterations=1,
    )
    print("\n--- Fig. 6 (ResNet-18 per-layer spike rates) ---")
    print(f"paper overall average: ~{PAPER_OVERALL}")
    print(f"measured overall average: {stats.overall:.4f}")
    print(stats.layer_table())

    assert len(stats.per_layer) == 17  # stem + 16 block activations
    # Rates live in the paper's band (loose: dataset substitution).
    assert 0.02 <= stats.overall <= 0.40
    # No systematic decay with depth: the deep-half mean stays within
    # a factor of the shallow-half mean.
    shallow = np.mean(stats.per_layer[: len(stats.per_layer) // 2])
    deep = np.mean(stats.per_layer[len(stats.per_layer) // 2 :])
    assert deep > 0.3 * shallow
