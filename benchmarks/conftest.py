"""Shared fixtures for the paper-reproduction benchmarks.

The two trained pipelines (ResNet-18 and VGG-11) are expensive on the
numpy substrate, so they are built once per session and shared by the
accuracy (Figs. 7/9) and spike-rate (Figs. 6/8) benchmarks.

Configuration mirrors DESIGN.md: width-scaled networks (0.125) on the
synthetic CIFAR stand-in; hardware benchmarks use full-width geometry
and need no training.
"""

from __future__ import annotations

import pytest

from repro.data import SyntheticCIFAR
from repro.eval import accuracy_vs_timesteps_experiment

ACCURACY_WIDTH = 0.125
MAX_TIMESTEPS = 16


def _dataset(seed: int) -> SyntheticCIFAR:
    # class_overlap=0.55 gives an irreducible error floor that lands the
    # ANN/quant/SNN accuracies in the paper's 88-96% band (see DESIGN.md).
    return SyntheticCIFAR(
        num_train=1500, num_test=400, noise=1.0, class_overlap=0.55, seed=seed
    )


@pytest.fixture(scope="session")
def synthetic_dataset():
    return _dataset(0)


@pytest.fixture(scope="session")
def resnet_curve(synthetic_dataset):
    """Trained + converted ResNet-18 accuracy curve (Fig. 7 input)."""
    return accuracy_vs_timesteps_experiment(
        "resnet18",
        dataset=synthetic_dataset,
        width=ACCURACY_WIDTH,
        max_timesteps=MAX_TIMESTEPS,
        ann_epochs=6,
        finetune_epochs=4,
        seed=0,
    )


@pytest.fixture(scope="session")
def vgg_curve(synthetic_dataset):
    """Trained + converted VGG-11 accuracy curve (Fig. 9 input)."""
    return accuracy_vs_timesteps_experiment(
        "vgg11",
        dataset=synthetic_dataset,
        width=ACCURACY_WIDTH,
        max_timesteps=MAX_TIMESTEPS,
        ann_epochs=6,
        finetune_epochs=4,
        seed=0,
    )
