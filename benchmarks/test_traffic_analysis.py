"""PS<->PL traffic bench: quantifies the §III-D memory-organisation motivation.

The paper justifies its memory map with the observation that SNN
inference moves more PS<->PL data than ANN inference because inputs are
binary streams over T timesteps.  This bench reports the per-inference
traffic decomposition for full-width ResNet-18 and VGG-11.
"""

from repro.eval import build_geometry_network, render_table
from repro.hw.config import PYNQ_Z2
from repro.hw.traffic import TrafficModel


def test_traffic_decomposition(benchmark):
    model = TrafficModel(PYNQ_Z2)

    def run():
        out = {}
        for name in ("resnet18", "vgg11"):
            mapped = build_geometry_network(name, width=1.0)
            out[name] = model.network_traffic(mapped, timesteps=8)
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n--- PS<->PL traffic per inference (T=8, full width) ---")
    for name, report in reports.items():
        rows = [
            {
                "component": "weights",
                "bytes": sum(l.weight_bytes for l in report.layers),
            },
            {
                "component": "spikes (in+out)",
                "bytes": sum(l.spike_in_bytes + l.spike_out_bytes for l in report.layers),
            },
            {
                "component": "membrane swap",
                "bytes": sum(l.membrane_swap_bytes for l in report.layers),
            },
            {
                "component": "residual psums",
                "bytes": sum(l.residual_bytes for l in report.layers),
            },
            {
                "component": "config + BN",
                "bytes": sum(l.config_bytes for l in report.layers),
            },
        ]
        total_mb = report.total_bytes / 1e6
        print(f"\n{name}: total {total_mb:.2f} MB/inference "
              f"(dominant: {report.dominant_component()})")
        print(render_table(rows, ["component", "bytes"]))

    resnet = reports["resnet18"]
    vgg = reports["vgg11"]
    # ResNet-18 has ~11M INT8 params: weights dominate its traffic.
    assert sum(l.weight_bytes for l in resnet.layers) > 10_000_000
    # Residual traffic exists only for ResNet.
    assert sum(l.residual_bytes for l in resnet.layers) > 0
    assert sum(l.residual_bytes for l in vgg.layers) == 0
    # Spike traffic scales with T (the paper's motivation).
    t1 = TrafficModel(PYNQ_Z2)
    mapped = build_geometry_network("vgg11", width=1.0)
    assert (
        t1.network_traffic(mapped, timesteps=16).total_bytes
        > t1.network_traffic(mapped, timesteps=8).total_bytes
    )
