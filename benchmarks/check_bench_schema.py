#!/usr/bin/env python
"""Validate an emitted ``BENCH_*.json`` artifact against its schema.

Usage::

    python benchmarks/check_bench_schema.py BENCH_engines.json
    python benchmarks/check_bench_schema.py BENCH_serving.json

The artifact kind is dispatched from ``record["benchmark"]``
(``engines_wall_clock`` or ``serving_load``).  Exits nonzero (failing
the CI job) when the artifact is missing, unparsable, or drifts from
the contract in ``bench_schema.py``.  Pure stdlib on purpose: it runs
before/without the test environment.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_schema import assert_bench_schema  # noqa: E402


def main(argv):
    if len(argv) != 2:
        print("usage: check_bench_schema.py <BENCH_*.json>", file=sys.stderr)
        return 2
    path = Path(argv[1])
    if not path.exists():
        print(f"schema check failed: {path} does not exist", file=sys.stderr)
        return 1
    try:
        record = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        print(f"schema check failed: {path} is not JSON ({error})", file=sys.stderr)
        return 1
    try:
        assert_bench_schema(record)
    except AssertionError as error:
        print(f"schema drift in {path}: {error}", file=sys.stderr)
        return 1
    if record["benchmark"] == "engines_wall_clock":
        detail = ", ".join(sorted(record["engines"]))
    else:
        throughput = record["throughput"]
        detail = (
            f"gain {throughput['batching_throughput_gain']}x, "
            f"{throughput['concurrent_rps']} req/s"
        )
    print(f"{path}: schema ok ({record['benchmark']}: {detail})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
