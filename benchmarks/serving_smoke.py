#!/usr/bin/env python
"""CI smoke for the serving layer: chaos in-process, SIGTERM for real.

Usage::

    PYTHONPATH=src python benchmarks/serving_smoke.py

Two phases, exit 0 only if both hold:

1. **In-process chaos** — a server over a tiny calibrated SNN with a
   stallable layer: concurrent clients with mixed deadlines while the
   worker is wedged mid-request.  Asserts every request gets a definite
   status (200/429/503/504 — never a hang), ``/healthz`` stays green
   through the breaker trip (liveness is not readiness), the metrics
   report the shed and the trip, and the breaker recovers once the
   substrate heals.
2. **Subprocess SIGTERM** — ``python -m repro.cli serve`` as a real
   process: readiness polled over HTTP, load applied from threads,
   SIGTERM delivered mid-stream.  Asserts in-flight work completes
   (every client gets 200 or a clean draining 503), and the process
   exits 0 inside the drain deadline.

Standalone on purpose (plain script, not pytest): CI runs it as its
own job so a serving regression is visible as a named failing step.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro import nn  # noqa: E402
from repro.serve import ServeConfig, ServerHandle, build_demo_network  # noqa: E402

SHAPE = (2, 8, 8)
TIMESTEPS = 6


class SmokeStall(nn.Module):
    stall_seconds = 0.0

    def forward(self, x):
        if type(self).stall_seconds:
            time.sleep(type(self).stall_seconds)
        return x


def check(condition, message):
    if not condition:
        print(f"SMOKE FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"  ok: {message}")


def phase_chaos():
    print("phase 1: in-process chaos (mixed deadlines + wedged worker)")
    core, shape = build_demo_network(input_shape=SHAPE, seed=0)
    model = nn.Sequential(SmokeStall(), core)
    config = ServeConfig(
        port=0,
        engine="auto",
        timesteps=TIMESTEPS,
        max_queue_depth=6,
        max_batch_size=4,
        hang_timeout_seconds=0.5,
        breaker_failure_threshold=2,
        breaker_reset_seconds=0.3,
        estimator_initial_unit=2e-4,
        estimator_overhead=1e-3,
    )
    rng = np.random.default_rng(1)
    with ServerHandle(model, shape, config) as handle:
        statuses = []
        lock = threading.Lock()

        def client(i):
            x = rng.normal(size=SHAPE).astype(np.float32)
            deadline = 2.0 if i % 4 == 0 else 60_000.0
            try:
                status, _ = handle.infer(x, deadline_ms=deadline, timeout=60.0)
            except Exception:  # noqa: BLE001
                status = -1
            with lock:
                statuses.append(status)

        # Wedge the worker, then apply concurrent mixed-deadline load.
        SmokeStall.stall_seconds = 30.0
        threads = [threading.Thread(target=client, args=(i,)) for i in range(16)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        health = handle.request("GET", "/healthz")[0]
        for thread in threads:
            thread.join(120.0)
        SmokeStall.stall_seconds = 0.0

        check(len(statuses) == 16, "all 16 concurrent requests answered")
        check(-1 not in statuses, "no client saw a hang or transport error")
        check(
            set(statuses) <= {200, 429, 503, 504},
            f"every answer definite: {sorted(set(statuses))}",
        )
        check(health == 200, "/healthz stayed green while the worker was wedged")

        metrics = handle.request("GET", "/metrics")[1]
        shed = metrics["counters"].get("shed_queue", 0)
        rejected = (
            metrics["counters"].get("rejected_deadline", 0)
            + metrics["counters"].get("rejected_breaker", 0)
        )
        check(shed + rejected >= 1, f"load was shed/rejected (shed={shed}, rejected={rejected})")
        check(metrics["breaker"]["trips"] >= 1, "circuit breaker tripped")

        # Healed substrate: the half-open probe must recover it.
        recovered = False
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            time.sleep(0.2)
            x = rng.normal(size=SHAPE).astype(np.float32)
            status, _ = handle.infer(x, deadline_ms=60_000, timeout=60.0)
            if status == 200:
                recovered = True
                break
        check(recovered, "breaker recovered after the substrate healed")
        metrics = handle.request("GET", "/metrics")[1]
        check(metrics["breaker"]["recoveries"] >= 1, "recovery visible in metrics")
        check(metrics["worker"]["restarts"] >= 1, "wedged worker slot was rebuilt")


def http_get(port, path, timeout=5.0):
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as conn:
        conn.sendall(
            f"GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n".encode()
        )
        raw = b""
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            raw += chunk
    return int(raw.split(b" ", 2)[1])


def http_infer(port, sample, timeout=30.0):
    body = json.dumps({"input": sample.tolist(), "deadline_ms": 60_000}).encode()
    head = (
        f"POST /v1/infer HTTP/1.1\r\nHost: x\r\nContent-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode()
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as conn:
        conn.sendall(head + body)
        raw = b""
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            raw += chunk
    return int(raw.split(b" ", 2)[1])


def free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def phase_sigterm():
    print("phase 2: subprocess SIGTERM drain")
    port = free_port()
    env = dict(os.environ, PYTHONPATH="src")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", str(port), "--timesteps", str(TIMESTEPS),
            "--input-shape", "2,8,8", "--drain-timeout", "10",
        ],
        cwd=Path(__file__).resolve().parent.parent,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        ready = False
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if process.poll() is not None:
                break
            try:
                if http_get(port, "/readyz") == 200:
                    ready = True
                    break
            except OSError:
                time.sleep(0.2)
        check(ready, "CLI server came up and reported ready")

        rng = np.random.default_rng(2)
        statuses = []
        lock = threading.Lock()

        def client():
            for _ in range(5):
                x = rng.normal(size=SHAPE).astype(np.float32)
                try:
                    status = http_infer(port, x)
                except OSError:
                    # Connection refused after the listener closed is a
                    # clean drain outcome, not a failure.
                    status = 0
                with lock:
                    statuses.append(status)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.15)  # requests in flight
        process.send_signal(signal.SIGTERM)
        for thread in threads:
            thread.join(60.0)
        returncode = process.wait(timeout=30.0)

        check(returncode == 0, f"SIGTERM drain exited 0 (got {returncode})")
        check(statuses.count(200) >= 1, "in-flight work completed during drain")
        bad = [s for s in statuses if s not in (200, 503, 0)]
        check(not bad, f"every response during drain was definite (bad: {bad})")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)


def main():
    phase_chaos()
    phase_sigterm()
    print("serving smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
