"""Dense vs event-driven engine: synaptic-op savings and wall clock.

The paper's thesis (§III) is that event-driven execution makes cost
scale with spike activity instead of network size: at the observed
spike rates (≈0.12 for ResNet-18, ≈0.16 for VGG-11) the aggregation
core skips the overwhelming majority of dense MACs.  This benchmark
checks that the software event engine realises exactly that saving —
fewer synaptic operations than the dense reference at sub-50% spike
rates — while producing the same predictions, and reports the measured
wall-clock of both backends for the record.
"""

import time

import numpy as np
import pytest

from repro.data import SyntheticCIFAR
from repro.pipeline import build_quantized_twin
from repro.pipeline.trainer import TrainConfig, Trainer
from repro.snn import SpikingNetwork, convert_to_snn

TIMESTEPS = 8


@pytest.fixture(scope="module")
def converted_vgg():
    """A BN-warmed, briefly-trained converted VGG and an eval batch."""
    ds = SyntheticCIFAR(num_train=128, num_test=48, noise=0.8, seed=3)
    model = build_quantized_twin("vgg11", width=0.25, num_classes=10, levels=2, seed=0)
    Trainer(model, TrainConfig(epochs=1, lr=1e-3)).fit(ds.train_x, ds.train_y)
    convert_to_snn(model)
    return model, ds.test_x


def _run(model, x, engine):
    network = SpikingNetwork(model, timesteps=TIMESTEPS, engine=engine)
    started = time.perf_counter()
    logits = network.forward(x)
    elapsed = time.perf_counter() - started
    return logits, network.last_run_stats, elapsed


def test_event_engine_does_fewer_synaptic_ops(converted_vgg):
    model, x = converted_vgg
    dense_logits, dense_stats, dense_s = _run(model, x, "dense")
    event_logits, event_stats, event_s = _run(model, x, "event")

    rate = event_stats.overall_spike_rate
    saving = event_stats.synaptic_op_saving
    print(
        f"\nspike rate {rate:.4f}; "
        f"dense {dense_stats.total_synaptic_ops:,} ops in {dense_s * 1e3:.0f} ms; "
        f"event {event_stats.total_synaptic_ops:,} ops in {event_s * 1e3:.0f} ms; "
        f"op saving {saving:.1%}"
    )

    # The converted network sits in the paper's sparse regime.
    assert rate < 0.5
    # Event-driven execution performs measurably fewer synaptic ops —
    # at these rates the hardware skips well over half the dense MACs.
    assert event_stats.total_synaptic_ops < dense_stats.total_synaptic_ops
    assert saving > 0.5
    # Both backends see the same spikes and agree on every prediction.
    # Absolute tolerance: summation-order (BLAS build) differences may
    # legitimately flip a membrane sitting within an ulp of threshold.
    assert event_stats.overall_spike_rate == pytest.approx(
        dense_stats.overall_spike_rate, abs=1e-3
    )
    assert np.array_equal(dense_logits.argmax(1), event_logits.argmax(1))
    assert np.allclose(dense_logits, event_logits, atol=1e-3)


def test_event_ops_track_spike_rate_per_layer():
    """Per-layer event ops scale with the upstream spike rate.

    Uses a pool-free conv stack so every conv (after the frame conv)
    reads an unmodified spike plane: each spike lands in at most k*k
    im2col windows, so ``performed/dense <= upstream spike rate``
    exactly, and stays within the k*k border factor of it from below.
    """
    from repro import nn
    from repro.tensor import Tensor, no_grad

    rng = np.random.default_rng(0)
    model = nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1, rng=rng),
        nn.BatchNorm2d(16),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.Conv2d(16, 16, 3, padding=1, rng=rng),
        nn.BatchNorm2d(16),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.Conv2d(16, 16, 3, padding=1, rng=rng),
        nn.BatchNorm2d(16),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.Flatten(),
        nn.Linear(16 * 16 * 16, 10, rng=rng),
    )
    model.train()
    with no_grad():
        for _ in range(4):
            model(Tensor(rng.normal(size=(8, 3, 16, 16)).astype(np.float32)))
    model.eval()
    convert_to_snn(model)

    network = SpikingNetwork(model, timesteps=TIMESTEPS, engine="event")
    network.forward(rng.normal(size=(16, 3, 16, 16)).astype(np.float32))
    layers = network.last_run_stats.layers

    checked = 0
    for idx, layer in enumerate(layers):
        if layer.kind != "conv" or idx == 0:
            continue
        upstream = layers[idx - 1]
        assert upstream.kind == "neuron"
        rate = upstream.spike_rate
        ratio = layer.synaptic_ops / max(layer.dense_synaptic_ops, 1)
        print(f"\nlayer {layer.name}: upstream rate {rate:.4f}, op ratio {ratio:.4f}")
        assert ratio <= rate + 1e-9
        assert ratio >= 0.5 * rate
        checked += 1
    assert checked == 2
