"""Dense vs event vs time-batched vs auto engines: ops and wall clock.

The paper's thesis (§III) is that event-driven execution makes cost
scale with spike activity instead of network size: at the observed
spike rates (≈0.12 for ResNet-18, ≈0.16 for VGG-11) the aggregation
core skips the overwhelming majority of dense MACs.  This benchmark
checks that the software event engine realises exactly that saving —
fewer synaptic operations than the dense reference at sub-50% spike
rates — while producing the same predictions; that the time-batched
engine beats the dense reference by >= 3x wall-clock on the
hardware-faithful frame-at-a-time workload (the PYNQ-Z2 runs batch-1
inference; Table I latencies are per frame); that the adaptive auto
engine, once its calibrated per-layer plan is cached, stays within
1.1x of the best fixed backend; and that the always-on per-layer
profiler costs < 5% of an unprofiled batched run.

It also pins the low-density crossover the paper's premise lives on:
on a synthetic DVS stream (<5% input density, batch > 1) the COO-native
``event-batched`` backend must beat the dense-GEMM ``batched`` engine
on wall clock while staying bit-identical on logits — sparsity winning
time, not just op counts.  It records the full engine trajectory —
including the auto engine's per-layer (name, wall clock, density,
chosen backend) profile and the DVS scenario — in
``BENCH_engines.json`` at the repo root, whose schema is asserted here
so the uploaded CI artifact stays machine-readable.
"""

import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from bench_schema import assert_engines_schema
from repro.data import SyntheticCIFAR, direct_encode_stream
from repro.utils.io import atomic_write_json
from repro.data.events import SyntheticDVS
from repro.pipeline import build_quantized_twin
from repro.pipeline.trainer import TrainConfig, Trainer
from repro.snn import AutoEngine, SpikingNetwork, convert_to_snn

TIMESTEPS = 8
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engines.json"


def _converted_vgg(width):
    """A BN-warmed, briefly-trained converted VGG and an eval batch."""
    ds = SyntheticCIFAR(num_train=128, num_test=48, noise=0.8, seed=3)
    model = build_quantized_twin(
        "vgg11", width=width, num_classes=10, levels=2, seed=0
    )
    Trainer(model, TrainConfig(epochs=1, lr=1e-3)).fit(ds.train_x, ds.train_y)
    convert_to_snn(model)
    return model, ds.test_x


@pytest.fixture(scope="module")
def converted_vgg():
    return _converted_vgg(0.25)


@pytest.fixture(scope="module")
def converted_vgg_bench():
    """The repo's standard accuracy-benchmark geometry (width 0.125)."""
    return _converted_vgg(0.125)


DVS_SHAPE = (64, 64)
DVS_BATCH = 8
DVS_CLASSES = 4


def _converted_dvs():
    """A BN-warmed converted DVS front end and its COO test stream.

    The geometry is the paper's DVS serving story: a high-resolution
    2-polarity front end where nearly all dense MACs land on empty
    pixels.  At 64x64 the stream's measured density sits near 0.3% —
    the <5% regime the ROADMAP targets (cf. ``features.27`` at 0.5%) —
    so the wall clock is dominated by the sparse front-end convs where
    the COO gather path must win.  Batch 8 exercises the batch>1
    stacked-coordinate path, not the frame-at-a-time special case.
    """
    height, width = DVS_SHAPE
    rng = np.random.default_rng(7)
    from repro import nn
    from repro.tensor import Tensor, no_grad

    model = nn.Sequential(
        nn.Conv2d(2, 8, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(8),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.MaxPool2d(2),
        nn.Conv2d(8, 16, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(16),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.MaxPool2d(2),
        nn.Conv2d(16, 32, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(32),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.AvgPool2d(4),
        nn.Flatten(),
        nn.Linear(32 * (height // 16) * (width // 16), DVS_CLASSES, rng=rng),
    )
    dvs = SyntheticDVS(
        num_train=16,
        num_test=DVS_BATCH,
        height=height,
        width=width,
        timesteps=TIMESTEPS,
        noise_rate=0.002,
        seed=3,
    )
    train_stream, _ = dvs.spike_stream("train")
    frames = train_stream.to_dense(np.float32)
    warm = frames.reshape((-1,) + frames.shape[2:])
    model.train()
    with no_grad():
        for start in range(0, len(warm), 32):
            model(Tensor(warm[start : start + 32]))
    model.eval()
    convert_to_snn(model)
    stream, _ = dvs.spike_stream("test")
    return model, stream


@pytest.fixture(scope="module")
def converted_dvs():
    return _converted_dvs()


def _run(model, x, engine):
    network = SpikingNetwork(model, timesteps=TIMESTEPS, engine=engine)
    started = time.perf_counter()
    logits = network.forward(x)
    elapsed = time.perf_counter() - started
    return logits, network.last_run_stats, elapsed


def test_event_engine_does_fewer_synaptic_ops(converted_vgg):
    model, x = converted_vgg
    dense_logits, dense_stats, dense_s = _run(model, x, "dense")
    event_logits, event_stats, event_s = _run(model, x, "event")

    rate = event_stats.overall_spike_rate
    saving = event_stats.synaptic_op_saving
    print(
        f"\nspike rate {rate:.4f}; "
        f"dense {dense_stats.total_synaptic_ops:,} ops in {dense_s * 1e3:.0f} ms; "
        f"event {event_stats.total_synaptic_ops:,} ops in {event_s * 1e3:.0f} ms; "
        f"op saving {saving:.1%}"
    )

    # The converted network sits in the paper's sparse regime.
    assert rate < 0.5
    # Event-driven execution performs measurably fewer synaptic ops —
    # at these rates the hardware skips well over half the dense MACs.
    assert event_stats.total_synaptic_ops < dense_stats.total_synaptic_ops
    assert saving > 0.5
    # Both backends see the same spikes and agree on every prediction.
    # Absolute tolerance: summation-order (BLAS build) differences may
    # legitimately flip a membrane sitting within an ulp of threshold.
    assert event_stats.overall_spike_rate == pytest.approx(
        dense_stats.overall_spike_rate, abs=1e-3
    )
    assert np.array_equal(dense_logits.argmax(1), event_logits.argmax(1))
    assert np.allclose(dense_logits, event_logits, atol=1e-3)


def test_event_ops_track_spike_rate_per_layer():
    """Per-layer event ops scale with the upstream spike rate.

    Uses a pool-free conv stack so every conv (after the frame conv)
    reads an unmodified spike plane: each spike lands in at most k*k
    im2col windows, so ``performed/dense <= upstream spike rate``
    exactly, and stays within the k*k border factor of it from below.
    """
    from repro import nn
    from repro.tensor import Tensor, no_grad

    rng = np.random.default_rng(0)
    model = nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1, rng=rng),
        nn.BatchNorm2d(16),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.Conv2d(16, 16, 3, padding=1, rng=rng),
        nn.BatchNorm2d(16),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.Conv2d(16, 16, 3, padding=1, rng=rng),
        nn.BatchNorm2d(16),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.Flatten(),
        nn.Linear(16 * 16 * 16, 10, rng=rng),
    )
    model.train()
    with no_grad():
        for _ in range(4):
            model(Tensor(rng.normal(size=(8, 3, 16, 16)).astype(np.float32)))
    model.eval()
    convert_to_snn(model)

    network = SpikingNetwork(model, timesteps=TIMESTEPS, engine="event")
    network.forward(rng.normal(size=(16, 3, 16, 16)).astype(np.float32))
    layers = network.last_run_stats.layers

    checked = 0
    for idx, layer in enumerate(layers):
        if layer.kind != "conv" or idx == 0:
            continue
        upstream = layers[idx - 1]
        assert upstream.kind == "neuron"
        rate = upstream.spike_rate
        ratio = layer.synaptic_ops / max(layer.dense_synaptic_ops, 1)
        print(f"\nlayer {layer.name}: upstream rate {rate:.4f}, op ratio {ratio:.4f}")
        assert ratio <= rate + 1e-9
        assert ratio >= 0.5 * rate
        checked += 1
    assert checked == 2


def test_stream_input_does_not_regress_event_op_reduction(converted_vgg):
    """The COO stream path keeps the event backend's op saving intact.

    Feeding the same frames as a direct-coded SpikeStream must bill
    exactly the ops of the dense-input path (the stream carries
    coordinates, it never changes what executes) and therefore preserve
    the >50% event-driven op reduction the dense-input benchmark pins.
    """
    model, x = converted_vgg
    network = SpikingNetwork(model, timesteps=TIMESTEPS, engine="event")
    dense_logits = network.forward(x)
    dense_stats = network.last_run_stats
    stream_logits = network.forward(direct_encode_stream(x, TIMESTEPS))
    stream_stats = network.last_run_stats
    print(
        f"\nstream path: {stream_stats.total_synaptic_ops:,} ops "
        f"(saving {stream_stats.synaptic_op_saving:.1%}); dense-input path: "
        f"{dense_stats.total_synaptic_ops:,} ops "
        f"(saving {dense_stats.synaptic_op_saving:.1%})"
    )
    assert np.array_equal(dense_logits, stream_logits)
    assert stream_stats.total_synaptic_ops == dense_stats.total_synaptic_ops
    assert stream_stats.total_dense_synaptic_ops == dense_stats.total_dense_synaptic_ops
    assert stream_stats.synaptic_op_saving > 0.5


def _timed_interleaved(networks, x, repeats=24):
    """Best-of-k wall clock per engine, measured in interleaved rounds.

    Interleaving means a machine-wide slow phase (shared CI box, cache
    pressure) hits every engine alike, so the *ratios* stay stable even
    when absolute times wobble; min-of-k then filters scheduler noise.
    """
    for network in networks.values():
        network.forward(x)  # warm caches, BLAS, plan/pad workspaces
    best = {name: float("inf") for name in networks}
    for _ in range(repeats):
        for name, network in networks.items():
            started = time.perf_counter()
            network.forward(x)
            best[name] = min(best[name], time.perf_counter() - started)
    return best


# The artifact's machine-readable contract lives in bench_schema.py —
# shared with the standalone CI step (check_bench_schema.py) that
# re-validates the uploaded file, so drift fails the job either way.
_assert_bench_schema = assert_engines_schema


def test_engines_wall_clock_and_auto_plan(converted_vgg_bench, converted_dvs):
    """Engine wall clock on frame + DVS-stream workloads + artifact.

    The frame scenario is the hardware's own workload: one 32x32 frame,
    T=8, the repo's standard VGG-11 geometry.  The dense engine re-runs
    the full model eight times; the time-batched engine runs each layer
    once over the (T, ...) stack, which must be >= 3x faster; the auto
    engine calibrates on the warm-up pass and must then stay within
    1.1x of the best fixed backend.  The DVS scenario is the <5%
    density regime where the COO-native event-batched backend must beat
    the dense GEMM on wall clock with bit-identical logits, and auto
    must again stay within 1.1x of the best fixed choice.  The measured
    trajectory of every engine (with the auto engine's per-layer
    plan/profile, and a small-batch point) is recorded in
    BENCH_engines.json.
    """
    model, x = converted_vgg_bench
    frame = x[:1]
    networks = {
        engine: SpikingNetwork(model, timesteps=TIMESTEPS, engine=engine)
        for engine in ("dense", "event", "batched", "event-batched", "auto")
    }
    seconds = _timed_interleaved(networks, frame)
    results = {}
    for engine, network in networks.items():
        logits = network.forward(frame)
        results[engine] = {
            "wall_clock_ms": round(seconds[engine] * 1e3, 3),
            "synaptic_ops": int(network.last_run_stats.total_synaptic_ops),
            "overall_spike_rate": round(
                network.last_run_stats.overall_spike_rate, 6
            ),
            "logits_max_abs_diff_vs_dense": 0.0,
            "prediction": int(logits.argmax(1)[0]),
            "_logits": logits,
        }
    auto_stats = networks["auto"].last_run_stats
    results["auto"]["profile"] = auto_stats.profile_records()
    dense_logits = results["dense"].pop("_logits")
    for engine in ("event", "batched", "event-batched", "auto"):
        logits = results[engine].pop("_logits")
        results[engine]["logits_max_abs_diff_vs_dense"] = float(
            np.abs(logits - dense_logits).max()
        )

    speedup = (
        results["dense"]["wall_clock_ms"] / results["batched"]["wall_clock_ms"]
    )
    best_fixed = min(
        results[e]["wall_clock_ms"]
        for e in ("dense", "event", "batched", "event-batched")
    )
    auto_ratio = results["auto"]["wall_clock_ms"] / best_fixed
    batch_nets = {
        engine: SpikingNetwork(model, timesteps=TIMESTEPS, engine=engine)
        for engine in ("dense", "batched")
    }
    batch16 = {
        engine: round(s * 1e3, 3)
        for engine, s in _timed_interleaved(batch_nets, x[:16], repeats=3).items()
    }

    # Planner v2: cold-start calibration cost, racing vs cost model.
    # A fresh engine races every kernel on the VGG frame (the pre-PR-9
    # cold start); its measurements fit the analytic cost model, and a
    # second fresh engine sharing that model compiles its plan from
    # predictions — one plain batched pass, no races.  The gates: the
    # predicted cold start must be >= 2x cheaper, and the predicted
    # plan must stay within 1.1x of the best fixed backend.
    racing_engine = AutoEngine()
    racing_net = SpikingNetwork(model, timesteps=TIMESTEPS, engine=racing_engine)
    started = time.perf_counter()
    racing_logits = racing_net.forward(frame)
    calibration_s_racing = time.perf_counter() - started
    # A second key (batch 2) widens the ops spread the fit sees, the
    # same way real traffic with varied shapes would.
    racing_net.forward(np.concatenate([frame, frame], axis=0))
    assert racing_engine.cost_model.plan_ready()
    predicted_engine = AutoEngine(cost_model=racing_engine.cost_model)
    predicted_net = SpikingNetwork(
        model, timesteps=TIMESTEPS, engine=predicted_engine
    )
    started = time.perf_counter()
    predicted_logits = predicted_net.forward(frame)
    calibration_s_model = time.perf_counter() - started
    predicted_stats = predicted_net.last_run_stats
    assert predicted_stats.plan_source == "cost-model"
    assert np.allclose(racing_logits, predicted_logits, atol=1e-4)
    calibration_speedup = calibration_s_racing / calibration_s_model
    best_fixed_name = min(
        ("dense", "event", "batched", "event-batched"),
        key=lambda e: seconds[e],
    )
    planner_seconds = _timed_interleaved(
        {
            "best_fixed": networks[best_fixed_name],
            "model_plan": predicted_net,
        },
        frame,
        repeats=24,
    )
    model_plan_ratio = planner_seconds["model_plan"] / planner_seconds["best_fixed"]

    dvs_model, dvs_stream = converted_dvs
    dvs_nets = {
        engine: SpikingNetwork(dvs_model, timesteps=TIMESTEPS, engine=engine)
        for engine in ("batched", "event-batched", "auto")
    }
    dvs_logits = {e: net.forward(dvs_stream) for e, net in dvs_nets.items()}
    dvs_seconds = _timed_interleaved(dvs_nets, dvs_stream, repeats=12)
    dvs_results = {
        engine: {
            "wall_clock_ms": round(dvs_seconds[engine] * 1e3, 3),
            "synaptic_ops": int(net.last_run_stats.total_synaptic_ops),
        }
        for engine, net in dvs_nets.items()
    }
    dvs_bitwise = bool(
        np.array_equal(dvs_logits["batched"], dvs_logits["event-batched"])
        and np.array_equal(dvs_logits["batched"], dvs_logits["auto"])
    )
    dvs_speedup = dvs_seconds["batched"] / dvs_seconds["event-batched"]
    dvs_best_fixed = min(dvs_seconds["batched"], dvs_seconds["event-batched"])
    dvs_auto_ratio = dvs_seconds["auto"] / dvs_best_fixed

    record = {
        "benchmark": "engines_wall_clock",
        "scenario": {
            "model": "vgg11",
            "width": 0.125,
            "timesteps": TIMESTEPS,
            "batch": 1,
            "input": "32x32x3 synthetic CIFAR frame",
        },
        "engines": results,
        "batched_speedup_vs_dense": round(speedup, 3),
        "auto_vs_best_fixed": round(auto_ratio, 3),
        "batch16_wall_clock_ms": batch16,
        "planner": {
            "calibration_ms_racing": round(calibration_s_racing * 1e3, 3),
            "calibration_ms_cost_model": round(calibration_s_model * 1e3, 3),
            "calibration_speedup": round(calibration_speedup, 3),
            "model_plan_vs_best_fixed": round(model_plan_ratio, 3),
            "plan_source": predicted_stats.plan_source,
            "cost_model": predicted_engine.cost_model.snapshot(),
        },
        "dvs": {
            "scenario": {
                "model": "dvs-frontend-cnn",
                "timesteps": TIMESTEPS,
                "batch": DVS_BATCH,
                "input": (
                    f"{DVS_SHAPE[0]}x{DVS_SHAPE[1]}x2 synthetic DVS "
                    "SpikeStream (COO)"
                ),
                "input_density": round(float(dvs_stream.density), 6),
            },
            "engines": dvs_results,
            "event_batched_speedup_vs_batched": round(dvs_speedup, 3),
            "auto_vs_best_fixed": round(dvs_auto_ratio, 3),
            "logits_bitwise_vs_batched": dvs_bitwise,
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    _assert_bench_schema(record)
    # Atomic emission: a CI kill mid-write must never leave a torn
    # BENCH_engines.json for the schema check / trend gate to choke on.
    # Dated snapshots land in benchmarks/history/ via record_history.py,
    # a deliberate step — not here, or the trend gate would compare each
    # fresh record against itself.
    atomic_write_json(BENCH_PATH, record, fsync=True)
    print(f"\nwall clock (ms): " + ", ".join(
        f"{k} {v['wall_clock_ms']}" for k, v in results.items()
    ))
    event_layers = sum(
        1 for row in results["auto"]["profile"] if row["backend"] == "event"
    )
    print(
        f"batched speedup vs dense: {speedup:.2f}x; "
        f"auto/best-fixed {auto_ratio:.3f} "
        f"({event_layers} layers on the event gather); "
        f"DVS density {dvs_stream.density:.4f}: "
        f"event-batched {dvs_speedup:.2f}x vs batched, "
        f"auto/best-fixed {dvs_auto_ratio:.3f} -> {BENCH_PATH}"
    )

    # All engines agree on the frame's prediction and logits.
    preds = {v["prediction"] for v in results.values()}
    assert len(preds) == 1
    assert results["batched"]["logits_max_abs_diff_vs_dense"] < 1e-4
    assert results["event-batched"]["logits_max_abs_diff_vs_dense"] < 1e-4
    assert results["auto"]["logits_max_abs_diff_vs_dense"] < 1e-4
    # The batched engine bills the same dense MAC count...
    assert results["batched"]["synaptic_ops"] == results["dense"]["synaptic_ops"]
    # ...but delivers the acceptance-criterion wall-clock win.
    assert speedup >= 3.0
    # The calibrated plan keeps auto at (or below) the best fixed backend.
    assert auto_ratio <= 1.1
    # Planner v2 gates: predicting the plan from the fitted cost model
    # must cut the cold-start calibration wall clock at least in half,
    # and the predicted plan must execute as well as a raced one.
    print(
        f"planner: racing calibration {calibration_s_racing * 1e3:.1f} ms, "
        f"cost-model calibration {calibration_s_model * 1e3:.1f} ms "
        f"({calibration_speedup:.2f}x); model plan vs best fixed "
        f"{model_plan_ratio:.3f}"
    )
    assert calibration_speedup >= 2.0
    assert model_plan_ratio <= 1.1

    # The low-density crossover: at <5% input density the COO-native
    # path must win wall clock, not just op counts, with logits
    # bit-identical to the dense batched reference.
    assert dvs_stream.density < 0.05
    assert dvs_bitwise
    assert dvs_seconds["event-batched"] < dvs_seconds["batched"]
    # Events bill only performed MACs; the dense reference bills them all.
    assert (
        dvs_results["event-batched"]["synaptic_ops"]
        < dvs_results["batched"]["synaptic_ops"]
    )
    assert dvs_auto_ratio <= 1.1


def test_profiler_overhead_under_5_percent(converted_vgg_bench):
    """Always-on per-layer profiling must cost < 5% of a batched run.

    Interleaved min-of-k on the same model/batch, profiled vs
    unprofiled engine instances: perf_counter pairs plus one
    count_nonzero per layer call are orders of magnitude below the
    GEMMs they bracket.
    """
    from repro.snn import TimeBatchedEngine

    model, x = converted_vgg_bench
    # A larger batch makes each timed run long enough (tens of ms) that
    # scheduler noise sits well below the 5% bound being asserted; the
    # profiler's absolute cost is per layer call, not per sample, so a
    # bigger batch only makes the test stricter.
    batch = np.concatenate([x, x], axis=0)[:32]
    networks = {
        "profiled": SpikingNetwork(
            model, timesteps=TIMESTEPS, engine=TimeBatchedEngine(profile_layers=True)
        ),
        "unprofiled": SpikingNetwork(
            model, timesteps=TIMESTEPS, engine=TimeBatchedEngine(profile_layers=False)
        ),
    }
    seconds = _timed_interleaved(networks, batch, repeats=16)
    overhead = seconds["profiled"] / seconds["unprofiled"] - 1.0
    print(
        f"\nprofiled {seconds['profiled'] * 1e3:.2f} ms, "
        f"unprofiled {seconds['unprofiled'] * 1e3:.2f} ms, "
        f"overhead {overhead:+.2%}"
    )
    stats = networks["profiled"].last_run_stats
    assert sum(l.wall_clock_seconds for l in stats.layers) > 0.0
    assert all(l.wall_clock_seconds == 0.0 for l in networks["unprofiled"].last_run_stats.layers)
    assert overhead < 0.05
