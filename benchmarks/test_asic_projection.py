"""Paper §V ASIC note: TSMC 40 nm projection — 500 MHz, 192 GOPS,
11 mm^2, 2.17 W."""

import pytest

from repro.eval import asic_projection_experiment


def test_asic_40nm_projection(benchmark):
    report = benchmark.pedantic(asic_projection_experiment, rounds=3, iterations=1)

    print("\n--- ASIC projection (TSMC 40 nm) ---")
    print(f"paper:    500 MHz, 192 GOPS, 11 mm^2, 2.17 W")
    print(
        f"measured: {report.clock_mhz:.0f} MHz, {report.gops:.1f} GOPS, "
        f"{report.area_mm2:.2f} mm^2, {report.power_watts:.3f} W "
        f"({report.gops_per_watt:.1f} GOPS/W)"
    )

    assert report.gops == pytest.approx(192.0)
    assert report.area_mm2 == pytest.approx(11.0, abs=0.3)
    assert report.power_watts == pytest.approx(2.17, abs=0.05)
    # The FPGA->ASIC energy-efficiency jump (25 -> ~90 GOPS/W).
    assert report.gops_per_watt > 3 * 24.93
