"""Ablation: event-driven vs dense PE scheduling.

The SIA's PEs skip kernel-row segments with no spikes (paper §III-A:
"event-driven synaptic integration").  This ablation quantifies the
cycle savings at the observed spike rates and confirms functional
equivalence — gating only ever skips zero-valued work.
"""

import numpy as np

from repro.data import SyntheticCIFAR
from repro.hw import SpikingInferenceAccelerator, map_network
from repro.hw.latency import ArchitecturalLatencyModel
from repro.pipeline import build_quantized_twin
from repro.pipeline.trainer import TrainConfig, Trainer
from repro.snn import convert_to_snn


def _mapped_network():
    ds = SyntheticCIFAR(num_train=128, num_test=64, noise=0.8, seed=3)
    model = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2, seed=0)
    Trainer(model, TrainConfig(epochs=1, lr=1e-3)).fit(ds.train_x, ds.train_y)
    convert_to_snn(model)
    return map_network(model, calibration_input=ds.train_x), ds


def test_ablation_event_driven_vs_dense(benchmark):
    mapped, ds = _mapped_network()
    sparse = SpikingInferenceAccelerator(mapped, event_driven=True)
    dense = SpikingInferenceAccelerator(mapped, event_driven=False)
    batch = ds.test_x[:16]

    logits_sparse, report_sparse = benchmark.pedantic(
        lambda: sparse.run(batch, timesteps=8), rounds=1, iterations=1
    )
    logits_dense, report_dense = dense.run(batch, timesteps=8)

    saving = 1.0 - report_sparse.total_core_cycles / report_dense.total_core_cycles
    print("\n--- Ablation: event-driven vs dense scheduling ---")
    print(f"dense cycles/inference:        {report_dense.cycles_per_inference:,.0f}")
    print(f"event-driven cycles/inference: {report_sparse.cycles_per_inference:,.0f}")
    print(f"cycle saving from event gating: {saving:.1%}")

    assert np.array_equal(logits_sparse, logits_dense), "gating must be lossless"
    assert saving > 0.15, "sparse spike traffic should save real cycles"

    # Analytical model agrees on the direction and rough magnitude.
    sparse_model = ArchitecturalLatencyModel(event_driven=True)
    dense_model = ArchitecturalLatencyModel(event_driven=False)
    cfg = mapped.layers[3].config
    rate = report_sparse.layers[3].spike_rate
    assert sparse_model.conv_cycles(cfg, 8, rate) < dense_model.conv_cycles(cfg, 8, rate)
