"""Fig. 9: VGG-11 SNN classification accuracy vs spike timesteps.

Paper (CIFAR-10, full-width): ANN 91.25%, quantised ANN 90.05%, SNN
90.47% by ~8 timesteps.  Shape criteria as for Fig. 7.
"""

PAPER = {"ann": 0.9125, "quant": 0.9005, "snn": 0.9047, "timesteps": 8}


def test_fig9_vgg11_accuracy_vs_timesteps(vgg_curve, synthetic_dataset, benchmark):
    curve = vgg_curve
    print("\n--- Fig. 9 (VGG-11 accuracy vs timesteps) ---")
    print(
        f"paper:    ANN={PAPER['ann']:.4f} quant={PAPER['quant']:.4f} "
        f"SNN(T=8)={PAPER['snn']:.4f}"
    )
    print(
        f"measured: ANN={curve.ann_accuracy:.4f} quant={curve.quant_accuracy:.4f} "
        f"SNN(T=8)={curve.per_step_accuracy[7]:.4f}"
    )
    series = " ".join(f"{a:.3f}" for a in curve.per_step_accuracy)
    print(f"measured per-step accuracy (T=1..{len(curve.per_step_accuracy)}): {series}")

    batch = synthetic_dataset.test_x[:64]
    benchmark.pedantic(
        lambda: curve.result.snn.forward(batch, timesteps=8), rounds=2, iterations=1
    )

    acc8 = curve.per_step_accuracy[7]
    final = curve.per_step_accuracy[-1]
    assert curve.per_step_accuracy[0] < acc8, "curve must rise with T"
    assert acc8 >= curve.quant_accuracy - 0.05, (
        "SNN should reach the quantised-ANN band by T=8"
    )
    assert final >= curve.ann_accuracy - 0.10, "SNN should settle near the ANN baseline"
