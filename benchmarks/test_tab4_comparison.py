"""Table IV: performance comparison with prior FPGA accelerators.

Reproduces the paper's derived metrics for this work (38.4 GOPS,
0.6 GOPS/PE, 24.93 GOPS/W, 2.25 GOPS/DSP) and the headline utilisation-
efficiency ratios (~2x GOPS/PE and ~4.5x GOPS/DSP over the best prior).
"""

import pytest

from repro.eval import render_table, table4_experiment


def test_tab4_prior_art_comparison(benchmark):
    result = benchmark.pedantic(table4_experiment, rounds=3, iterations=1)

    print("\n--- Table IV (comparison with prior art) ---")
    print(
        render_table(
            result["rows"],
            [
                "paper", "platform", "pes", "clock_mhz", "gops",
                "gops_per_pe", "gops_per_watt", "dsp", "gops_per_dsp",
            ],
        )
    )
    print(
        f"PE-efficiency gain vs best prior: {result['pe_efficiency_gain']:.2f}x "
        f"(paper claims ~2x)"
    )
    print(
        f"DSP-efficiency gain vs best prior: {result['dsp_efficiency_gain']:.2f}x "
        f"(paper claims ~4.5x)"
    )

    ours = [r for r in result["rows"] if r["paper"] == "This Work"][0]
    assert ours["gops"] == pytest.approx(38.4)
    assert ours["gops_per_pe"] == pytest.approx(0.6)
    assert ours["gops_per_watt"] == pytest.approx(24.93, abs=0.05)
    assert ours["gops_per_dsp"] == pytest.approx(2.25, abs=0.02)
    assert ours["dsp"] == 17

    assert 1.5 < result["pe_efficiency_gain"] < 2.5
    assert 4.0 < result["dsp_efficiency_gain"] < 5.5
    # This work is the energy-efficiency leader of the table.
    best_prior_energy = max(
        r["gops_per_watt"]
        for r in result["rows"]
        if r["paper"] != "This Work" and r["gops_per_watt"] != "N/A"
    )
    assert ours["gops_per_watt"] > best_prior_energy
