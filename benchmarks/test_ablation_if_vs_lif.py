"""Ablation: IF vs LIF activation (the accelerator's mode bit).

The aggregation core supports both integrate-and-fire (mode=0) and
leaky integrate-and-fire (mode=1).  For ANN-to-SNN conversion IF is the
matched model (the quantised ReLU has no leak); LIF trades accuracy for
lower spike rates.  This ablation quantifies both effects from the same
fine-tuned network.
"""

from repro.data import SyntheticCIFAR
from repro.pipeline import TrainConfig, build_quantized_twin, run_conversion_pipeline
from repro.snn import SpikingNetwork, collect_spike_stats, convert_to_snn


def _convert(quant_model, neuron, leak=0.9375):
    twin = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2, seed=0)
    twin.load_state_dict(quant_model.state_dict())
    convert_to_snn(twin, neuron=neuron, leak=leak)
    return SpikingNetwork(twin, timesteps=8)


def test_ablation_if_vs_lif_mode_bit(benchmark):
    ds = SyntheticCIFAR(
        num_train=800, num_test=300, noise=1.0, class_overlap=0.55, seed=6
    )
    result = run_conversion_pipeline(
        "vgg11",
        ds,
        width=0.125,
        levels=2,
        timesteps=8,
        max_timesteps=8,
        ann_config=TrainConfig(epochs=4),
        finetune_config=TrainConfig(epochs=3, lr=5e-4),
    )
    base = result.quant_model

    if_net = _convert(base, "if")
    lif_net = _convert(base, "lif")

    if_acc = benchmark.pedantic(
        lambda: if_net.accuracy(ds.test_x, ds.test_y, timesteps=8),
        rounds=1,
        iterations=1,
    )
    lif_acc = lif_net.accuracy(ds.test_x, ds.test_y, timesteps=8)
    if_rates = collect_spike_stats(if_net, ds.test_x[:128], timesteps=8)
    lif_rates = collect_spike_stats(lif_net, ds.test_x[:128], timesteps=8)

    print("\n--- Ablation: IF vs LIF (VGG-11, T=8) ---")
    print(f"quantised ANN accuracy: {result.quant_accuracy:.4f}")
    print(f"IF  (mode=0): accuracy={if_acc:.4f}  overall spike rate={if_rates.overall:.4f}")
    print(f"LIF (mode=1): accuracy={lif_acc:.4f}  overall spike rate={lif_rates.overall:.4f}")

    # IF is the conversion-matched neuron: it should not lose to LIF by
    # more than run-to-run noise (a mild leak can act as a regulariser).
    assert if_acc >= lif_acc - 0.04
    # The leak can only reduce membrane potential -> no more spikes.
    assert lif_rates.overall <= if_rates.overall + 0.02
    # Conversion must actually work in IF mode.
    assert if_acc > 0.5
