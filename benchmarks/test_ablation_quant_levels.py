"""Ablation: quantisation level L and weight bit-width sweeps.

The paper trains with L=2 (Fig. 1) and INT8 weights.  This ablation
shows the design space: higher L converges to the analog ReLU (better
asymptotic accuracy, slower to train at fixed budget), and narrower
weights degrade gracefully until the INT8 sweet spot.
"""

import numpy as np

from repro.data import SyntheticCIFAR
from repro.nn.quant import dequantize_weight, quantize_weight_int8
from repro.pipeline import TrainConfig, run_conversion_pipeline


def test_ablation_quant_levels(benchmark):
    ds = SyntheticCIFAR(
        num_train=600, num_test=200, noise=1.0, class_overlap=0.55, seed=8
    )

    def sweep():
        results = {}
        for levels in (2, 4, 8):
            res = run_conversion_pipeline(
                "vgg11",
                ds,
                width=0.125,
                levels=levels,
                timesteps=max(8, levels),
                max_timesteps=max(8, levels),
                ann_config=TrainConfig(epochs=3),
                finetune_config=TrainConfig(epochs=2, lr=5e-4),
            )
            results[levels] = res
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n--- Ablation: quantisation levels L (VGG-11) ---")
    print(f"{'L':>3}{'quant ANN acc':>15}{'SNN acc (T>=L)':>16}")
    for levels, res in results.items():
        print(f"{levels:>3}{res.quant_accuracy:>15.4f}{res.snn_accuracy:>16.4f}")

    for levels, res in results.items():
        # Every configuration must convert without collapse.
        assert res.snn_accuracy >= res.quant_accuracy - 0.15, levels


def test_ablation_weight_bitwidth():
    rng = np.random.default_rng(0)
    weights = rng.normal(0, 0.05, size=4096).astype(np.float32)
    print("\n--- Ablation: weight bit-width quantisation error ---")
    print(f"{'bits':>5}{'max error':>12}{'rms error':>12}")
    errors = {}
    for bits in (4, 6, 8, 10):
        w_int, scale = quantize_weight_int8(weights, bits=bits)
        err = dequantize_weight(w_int, scale) - weights
        errors[bits] = float(np.sqrt((err ** 2).mean()))
        print(f"{bits:>5}{np.abs(err).max():>12.6f}{errors[bits]:>12.6f}")
    # Error shrinks ~2x per extra bit.
    assert errors[4] > errors[6] > errors[8] > errors[10]
    assert errors[4] / errors[8] > 8
