#!/usr/bin/env python
"""CI smoke for the process pool: replica murder in-process, SIGTERM for real.

Usage::

    PYTHONPATH=src python benchmarks/serving_pool_smoke.py

Two phases, exit 0 only if both hold:

1. **In-process replica kill** — a 3-replica ``--serve-workers`` pool
   under concurrent load; one replica is SIGKILLed mid-stream.  Asserts
   every response is 200 (the dead replica's outstanding work re-queues
   onto survivors — never a 5xx), ``/readyz`` stays green, the pool
   metrics show exactly the one rebuild, and stopping the server leaves
   zero shared-memory segments behind.
2. **Subprocess SIGTERM** — ``python -m repro.cli serve
   --serve-workers 3`` as a real process: readiness polled over HTTP,
   load applied from threads, SIGTERM delivered mid-stream.  Asserts
   the drain exits 0, every client outcome is definite (200/503/clean
   close), and ``/dev/shm`` holds no new ``repro-pool`` segment after
   the process is gone — the unlink guarantee, observed from outside.

Standalone on purpose (plain script, not pytest): CI runs it as its
own job so a pool regression is visible as a named failing step.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.serve import ServeConfig, ServerHandle, build_demo_network  # noqa: E402
from repro.serve.shm import SEGMENT_PREFIX, list_segments  # noqa: E402

SHAPE = (2, 8, 8)
TIMESTEPS = 6
REPLICAS = 3
CLIENTS = 4
REQUESTS_PER_CLIENT = 6


def check(condition, message):
    if not condition:
        print(f"SMOKE FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"  ok: {message}")


def phase_replica_kill():
    print(f"phase 1: in-process {REPLICAS}-replica pool, SIGKILL one mid-load")
    core, shape = build_demo_network(input_shape=SHAPE, seed=0)
    config = ServeConfig(
        port=0,
        engine="auto",
        timesteps=TIMESTEPS,
        max_batch_size=4,
        max_queue_depth=32,
        hang_timeout_seconds=30.0,
        drain_timeout_seconds=30.0,
        serve_workers=REPLICAS,
    )
    rng = np.random.default_rng(1)
    handle = ServerHandle(core, shape, config)
    pool = handle.server.worker
    prefix = pool.ring.prefix
    try:
        statuses = []
        lock = threading.Lock()

        def client(worker_id):
            for _ in range(REQUESTS_PER_CLIENT):
                x = rng.normal(size=SHAPE).astype(np.float32)
                try:
                    status, _ = handle.infer(x, deadline_ms=120_000, timeout=120.0)
                except Exception:  # noqa: BLE001 - a client-visible hang
                    status = -1
                with lock:
                    statuses.append(status)

        threads = [
            threading.Thread(target=client, args=(c,)) for c in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # requests in flight
        victim = next(r for r in pool._replicas if r.alive())
        os.kill(victim.process.pid, signal.SIGKILL)
        print(f"  killed replica {victim.index} (pid {victim.process.pid})")
        for thread in threads:
            thread.join(180.0)

        total = CLIENTS * REQUESTS_PER_CLIENT
        check(len(statuses) == total, f"all {total} concurrent requests answered")
        check(
            all(s == 200 for s in statuses),
            f"no 5xx through a replica's death: {sorted(set(statuses))}",
        )
        ready = handle.request("GET", "/readyz")[0]
        check(ready == 200, "/readyz green after the replica was killed")

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and pool.restarts < 1:
            time.sleep(0.1)
        metrics = handle.request("GET", "/metrics")[1]
        check(
            metrics["pool"]["restarts"] >= 1,
            f"pool rebuilt the dead replica (restarts="
            f"{metrics['pool']['restarts']})",
        )
        check(
            metrics["pool"]["replicas"] == REPLICAS,
            f"pool still reports {REPLICAS} replicas",
        )
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and not all(
            r.alive() for r in pool._replicas
        ):
            time.sleep(0.1)
        check(all(r.alive() for r in pool._replicas), "every replica live again")
    finally:
        handle.stop(timeout=60.0)
    check(
        list_segments(prefix) == [],
        "zero shared-memory segments after the pool drained",
    )


def http_get(port, path, timeout=5.0):
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as conn:
        conn.sendall(
            f"GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n".encode()
        )
        raw = b""
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            raw += chunk
    return int(raw.split(b" ", 2)[1])


def http_infer(port, sample, timeout=30.0):
    body = json.dumps({"input": sample.tolist(), "deadline_ms": 60_000}).encode()
    head = (
        f"POST /v1/infer HTTP/1.1\r\nHost: x\r\nContent-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode()
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as conn:
        conn.sendall(head + body)
        raw = b""
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            raw += chunk
    return int(raw.split(b" ", 2)[1])


def free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def phase_sigterm():
    print(f"phase 2: subprocess --serve-workers {REPLICAS} SIGTERM drain")
    segments_before = set(list_segments(SEGMENT_PREFIX))
    port = free_port()
    env = dict(os.environ, PYTHONPATH="src")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", str(port), "--timesteps", str(TIMESTEPS),
            "--input-shape", "2,8,8", "--drain-timeout", "10",
            "--serve-workers", str(REPLICAS),
        ],
        cwd=Path(__file__).resolve().parent.parent,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        ready = False
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if process.poll() is not None:
                break
            try:
                if http_get(port, "/readyz") == 200:
                    ready = True
                    break
            except OSError:
                time.sleep(0.2)
        check(ready, "CLI pool server came up and reported ready")

        rng = np.random.default_rng(2)
        statuses = []
        lock = threading.Lock()

        def client():
            for _ in range(5):
                x = rng.normal(size=SHAPE).astype(np.float32)
                try:
                    status = http_infer(port, x)
                except OSError:
                    # Connection refused after the listener closed is a
                    # clean drain outcome, not a failure.
                    status = 0
                with lock:
                    statuses.append(status)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.15)  # requests in flight
        process.send_signal(signal.SIGTERM)
        for thread in threads:
            thread.join(60.0)
        returncode = process.wait(timeout=60.0)

        check(returncode == 0, f"SIGTERM drain exited 0 (got {returncode})")
        check(statuses.count(200) >= 1, "in-flight work completed during drain")
        bad = [s for s in statuses if s not in (200, 503, 0)]
        check(not bad, f"every response during drain was definite (bad: {bad})")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)
    leftovers = sorted(set(list_segments(SEGMENT_PREFIX)) - segments_before)
    check(
        not leftovers,
        f"no repro-pool segments left in /dev/shm (leaked: {leftovers})",
    )


def main():
    phase_replica_kill()
    phase_sigterm()
    print("serving pool smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
