"""Design-methodology bench: the title's promise, made executable.

Sweeps the SIA architecture space with the same models that reproduce
Tables III/IV, extracts the Pareto frontier, and situates the paper's
shipped 8x8/16-lane/100 MHz point in it.
"""

from repro.eval import render_table
from repro.hw.dse import DesignSpaceExplorer, SweepSpec, paper_design_point


def test_design_space_exploration(benchmark):
    explorer = DesignSpaceExplorer()
    points = benchmark.pedantic(
        lambda: explorer.sweep(SweepSpec()), rounds=1, iterations=1
    )
    front = explorer.pareto_front(points)  # gops vs area vs power
    paper = paper_design_point()

    print("\n--- Design-space exploration (Pareto front, PYNQ-Z2) ---")
    rows = [
        {
            "design": p.label,
            "gops": p.gops,
            "gops_per_watt": p.gops_per_watt,
            "gops_per_dsp": p.gops_per_dsp,
            "luts": p.luts,
            "dsps": p.dsps,
            "watts": p.power_watts,
        }
        for p in front
    ]
    print(render_table(rows, ["design", "gops", "gops_per_watt", "gops_per_dsp",
                              "luts", "dsps", "watts"]))
    feasible = [p for p in points if p.fits]
    print(f"candidates: {len(points)}  feasible: {len(feasible)}  on front: {len(front)}")
    print(f"paper point: {paper.label} -> {paper.gops} GOPS, "
          f"{paper.gops_per_watt} GOPS/W, fits={paper.fits}")

    assert paper.fits
    assert len(front) >= 3
    # The frontier must trade throughput against area/power.
    assert front[0].gops < front[-1].gops
    assert front[0].luts <= front[-1].luts
    # The fastest feasible candidate is always on the front.
    best_gops = max(p.gops for p in feasible)
    assert any(p.gops == best_gops for p in front)
