"""Fig. 8: average spike rate per layer, converted VGG-11.

Paper: per-layer rates ~0.1-0.4, overall ~0.16, no depth decay.
"""

import numpy as np

from repro.eval import spike_rate_experiment

PAPER_OVERALL = 0.16


def test_fig8_vgg11_spike_rates(vgg_curve, synthetic_dataset, benchmark):
    stats = benchmark.pedantic(
        lambda: spike_rate_experiment(
            vgg_curve, synthetic_dataset, timesteps=8, max_samples=128
        ),
        rounds=1,
        iterations=1,
    )
    print("\n--- Fig. 8 (VGG-11 per-layer spike rates) ---")
    print(f"paper overall average: ~{PAPER_OVERALL}")
    print(f"measured overall average: {stats.overall:.4f}")
    print(stats.layer_table())

    assert len(stats.per_layer) == 8
    assert 0.02 <= stats.overall <= 0.45
    shallow = np.mean(stats.per_layer[:4])
    deep = np.mean(stats.per_layer[4:])
    assert deep > 0.3 * shallow
