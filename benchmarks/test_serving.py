"""Serving load benchmark: throughput, tail latency, failure semantics.

Drives a real :class:`repro.serve.app.InferenceServer` (ephemeral port,
tiny calibrated demo SNN, AutoEngine backend) through the full
robustness gauntlet and emits ``BENCH_serving.json``:

1. **Serial baseline** — requests one at a time; every response is
   checked bit-identical against a direct run on the server's own
   engine (same plan cache, same kernels), which pins down that the
   serving path adds *no* numerical drift.
2. **Concurrent micro-batched load** — the same requests fired from
   many client threads; the deadline-aware coalescer amortises per-run
   overhead across the batch, and the ratio of the two phases'
   request rates is the tracked ``batching_throughput_gain``.
3. **2x overload with mixed deadlines** — more concurrent work than
   the bounded queue admits, some of it with unmeetable budgets:
   every response must be a definite 200/429/504, never a hang and
   never an unhandled 500.
4. **Hung worker** — the engine is wedged mid-request; the worker
   timeout abandons the slot, the circuit breaker trips (fast 503s),
   the substrate heals, and the half-open probe recovers it.
5. **Degraded timesteps** — with the ceiling forced down, the served
   logits must equal the cumulative per-step logits of a full-T run
   at the degraded step (prefix consistency).
6. **Graceful drain** — stop() with a request in flight: the request
   completes, the drain flushes.
7. **Process pool scale-out** — two fresh servers over a *shared plan
   file*: a single in-process worker, then a 3-replica
   ``--serve-workers`` pool.  Serial responses must be bit-identical
   across the two (the shm transport and fork replication are
   invisible in the numbers), no ``/dev/shm`` segment may survive the
   pool's drain, and on a >=4-core runner the pool must deliver
   ``pool_scaling_gain >= 2.0`` over the single worker.  On smaller
   runners the gain is recorded but not gated (``gate_eligible``).

Ratio metrics only feed the trend gate (compare_bench.py); counts and
booleans are asserted here and schema-checked in CI.
"""

import json
import os
import platform
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import nn
from repro.serve import ServeConfig, ServerHandle, build_demo_network
from repro.serve.shm import list_segments
from repro.utils.io import atomic_write_json

from bench_schema import assert_serving_schema

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

SHAPE = (2, 8, 8)
TIMESTEPS = 8
SERIAL_REQUESTS = 10
CONCURRENCY = 6
REQUESTS_PER_CLIENT = 5

POOL_REPLICAS = 3
#: Cores below which the >=2x pool scaling floor is recorded, not
#: gated — process parallelism cannot beat one worker on one core.
POOL_GATE_MIN_CORES = 4
MIN_POOL_SCALING_GAIN = 2.0


class BenchStall(nn.Module):
    """Pass-through that wedges the engine while armed."""

    stall_seconds = 0.0

    def forward(self, x):
        if type(self).stall_seconds:
            time.sleep(type(self).stall_seconds)
        return x


def build_server():
    core, shape = build_demo_network(input_shape=SHAPE, classes=10, seed=0)
    model = nn.Sequential(BenchStall(), core)
    config = ServeConfig(
        port=0,
        engine="auto",
        timesteps=TIMESTEPS,
        max_batch_size=8,
        max_queue_depth=8,
        gather_window_seconds=5e-3,
        hang_timeout_seconds=0.5,
        breaker_failure_threshold=2,
        breaker_reset_seconds=0.3,
        drain_timeout_seconds=15.0,
        estimator_initial_unit=2e-4,
        estimator_overhead=1e-3,
    )
    return ServerHandle(model, shape, config)


def make_samples(n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=SHAPE).astype(np.float32) for _ in range(n)]


def run_serial_phase(handle):
    """One-at-a-time requests; bit-check each against the engine."""
    samples = make_samples(SERIAL_REQUESTS, seed=1)
    started = time.perf_counter()
    responses = []
    for x in samples:
        status, body = handle.infer(x, deadline_ms=60_000)
        assert status == 200, (status, body)
        assert body["degraded"] is False
        responses.append(np.asarray(body["logits"], dtype=np.float32))
    elapsed = time.perf_counter() - started
    worker = handle.server.worker
    identical = True
    for x, served in zip(samples, responses):
        direct = worker.submit(x[None, ...], TIMESTEPS).result(60.0)
        if not np.array_equal(served, direct.logits[0]):
            identical = False
    return SERIAL_REQUESTS / elapsed, identical


def run_concurrent_phase(handle):
    """CONCURRENCY client threads, generous deadlines: micro-batching."""
    per_client = make_samples(CONCURRENCY * REQUESTS_PER_CLIENT, seed=2)
    statuses = []
    lock = threading.Lock()

    def client(worker_id):
        for i in range(REQUESTS_PER_CLIENT):
            x = per_client[worker_id * REQUESTS_PER_CLIENT + i]
            status, _ = handle.infer(x, deadline_ms=60_000, timeout=60.0)
            with lock:
                statuses.append(status)

    threads = [
        threading.Thread(target=client, args=(c,)) for c in range(CONCURRENCY)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120.0)
    elapsed = time.perf_counter() - started
    total = CONCURRENCY * REQUESTS_PER_CLIENT
    assert len(statuses) == total
    assert all(s == 200 for s in statuses), statuses
    return total / elapsed


def run_overload_phase(handle):
    """2x the queue bound, mixed deadlines: definite answers only."""
    attempted = 2 * (handle.server.config.max_queue_depth + 8)
    samples = make_samples(attempted, seed=3)
    outcomes = []
    lock = threading.Lock()

    def client(i):
        # A third of the load carries a hopeless budget (504 material);
        # the rest is generous and either serves (200) or sheds (429).
        deadline = 2.0 if i % 3 == 0 else 60_000.0
        try:
            status, _ = handle.infer(samples[i], deadline_ms=deadline, timeout=60.0)
        except Exception:  # noqa: BLE001 - a client-visible hang/crash
            status = -1
        with lock:
            outcomes.append(status)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(attempted)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120.0)
    counts = {
        "attempted": attempted,
        "ok": outcomes.count(200),
        "shed": outcomes.count(429),
        "deadline_rejected": outcomes.count(504),
        "unhandled": sum(
            1 for s in outcomes if s not in (200, 429, 504)
        ),
    }
    assert counts["unhandled"] == 0, outcomes
    assert counts["ok"] >= 1
    assert counts["shed"] + counts["deadline_rejected"] >= 1, (
        "2x overload must shed or reject something"
    )
    return counts


def run_hung_worker_phase(handle):
    """Wedge the engine; breaker trips; heal; half-open probe recovers."""
    x = make_samples(1, seed=4)[0]
    BenchStall.stall_seconds = 30.0
    try:
        failures = 0
        for _ in range(3):
            status, _ = handle.infer(x, deadline_ms=60_000, timeout=60.0)
            if status == 503:
                failures += 1
        assert failures >= 2, "hung worker must surface as 503s"
    finally:
        BenchStall.stall_seconds = 0.0
    recovered = False
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        time.sleep(0.2)
        status, _ = handle.infer(x, deadline_ms=60_000, timeout=60.0)
        if status == 200:
            recovered = True
            break
    metrics = handle.request("GET", "/metrics")[1]
    assert recovered, "breaker never recovered after the substrate healed"
    assert metrics["breaker"]["trips"] >= 1
    assert metrics["breaker"]["recoveries"] >= 1
    assert metrics["worker"]["restarts"] >= 1
    return {
        "trips": metrics["breaker"]["trips"],
        "recoveries": metrics["breaker"]["recoveries"],
        "worker_restarts": metrics["worker"]["restarts"],
        "recovered": recovered,
    }


def run_degraded_phase(handle):
    """Force a lower T ceiling; served logits = full-T per-step prefix."""
    x = make_samples(1, seed=5)[0]
    degrade = handle.server.batcher.degrade
    degrade.current = TIMESTEPS // 2
    try:
        status, body = handle.infer(x, deadline_ms=60_000, timeout=60.0)
        assert status == 200 and body["degraded"] is True
        assert body["timesteps_executed"] == TIMESTEPS // 2
        served = np.asarray(body["logits"], dtype=np.float32)
    finally:
        degrade.current = TIMESTEPS
    full = handle.server.worker.submit(
        x[None, ...], TIMESTEPS, per_step=True
    ).result(60.0)
    consistent = np.array_equal(served, full.per_step[TIMESTEPS // 2 - 1][0])
    assert consistent, "degraded answer is not a prefix of the full-T run"
    return consistent


def run_drain_phase(handle):
    """stop() with a request in flight: it completes, drain flushes."""
    x = make_samples(1, seed=6)[0]
    BenchStall.stall_seconds = 0.2
    outcome = {}

    def slow_request():
        outcome["status"], outcome["body"] = handle.infer(
            x, deadline_ms=60_000, timeout=60.0
        )

    thread = threading.Thread(target=slow_request)
    thread.start()
    time.sleep(0.05)
    handle.stop(timeout=60.0)
    thread.join(60.0)
    BenchStall.stall_seconds = 0.0
    inflight_completed = outcome.get("status") == 200
    assert inflight_completed, outcome
    return {"flushed": True, "inflight_completed": inflight_completed}


def _pool_server(serve_workers, plan_path):
    """A fresh demo server; all pool-phase servers share ``plan_path``
    so every one executes the identical compiled plans."""
    core, shape = build_demo_network(input_shape=SHAPE, classes=10, seed=0)
    config = ServeConfig(
        port=0,
        engine="auto",
        timesteps=TIMESTEPS,
        max_batch_size=8,
        max_queue_depth=64,
        gather_window_seconds=5e-3,
        hang_timeout_seconds=30.0,
        drain_timeout_seconds=30.0,
        serve_workers=serve_workers,
        plan_path=plan_path,
    )
    return ServerHandle(core, shape, config)


def _measure_rps(handle, samples):
    """CONCURRENCY client threads over ``samples``; all must 200."""
    statuses = []
    lock = threading.Lock()
    per_client = len(samples) // CONCURRENCY

    def client(worker_id):
        for i in range(per_client):
            x = samples[worker_id * per_client + i]
            status, _ = handle.infer(x, deadline_ms=120_000, timeout=120.0)
            with lock:
                statuses.append(status)

    threads = [
        threading.Thread(target=client, args=(c,)) for c in range(CONCURRENCY)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(180.0)
    elapsed = time.perf_counter() - started
    assert len(statuses) == per_client * CONCURRENCY
    assert all(s == 200 for s in statuses), statuses
    return len(statuses) / elapsed


def run_pool_phase():
    """Single worker vs POOL_REPLICAS-process pool on a shared plan file."""
    cores = os.cpu_count() or 1
    gate_eligible = cores >= POOL_GATE_MIN_CORES
    serial_samples = make_samples(SERIAL_REQUESTS, seed=7)
    load_samples = make_samples(CONCURRENCY * REQUESTS_PER_CLIENT, seed=8)

    with tempfile.TemporaryDirectory() as tmp:
        plan_path = str(Path(tmp) / "plans.json")

        single = _pool_server(1, plan_path)
        try:
            single_serial = []
            for x in serial_samples:
                status, body = single.infer(x, deadline_ms=120_000, timeout=120.0)
                assert status == 200, (status, body)
                single_serial.append(
                    np.asarray(body["logits"], dtype=np.float32)
                )
            single_rps = _measure_rps(single, load_samples)
        finally:
            single.stop(timeout=60.0)

        pool = _pool_server(POOL_REPLICAS, plan_path)
        prefix = pool.server.worker.ring.prefix
        try:
            pool_metrics = pool.request("GET", "/metrics")[1]
            assert pool_metrics["pool"]["replicas"] == POOL_REPLICAS
            start_method = pool_metrics["pool"]["start_method"]
            bit_identical = True
            for x, expect in zip(serial_samples, single_serial):
                status, body = pool.infer(x, deadline_ms=120_000, timeout=120.0)
                assert status == 200, (status, body)
                served = np.asarray(body["logits"], dtype=np.float32)
                if not np.array_equal(served, expect):
                    bit_identical = False
            pool_rps = _measure_rps(pool, load_samples)
        finally:
            pool.stop(timeout=60.0)
        leaked = len(list_segments(prefix))

    gain = pool_rps / single_rps
    assert bit_identical, (
        "pool responses diverged bitwise from the single-worker path"
    )
    assert leaked == 0, f"{leaked} shared-memory segment(s) leaked"
    if gate_eligible:
        assert gain >= MIN_POOL_SCALING_GAIN, (
            f"pool gain {gain:.2f}x < {MIN_POOL_SCALING_GAIN}x on a "
            f"{cores}-core runner"
        )
    return {
        "replicas": POOL_REPLICAS,
        "cores": cores,
        "gate_eligible": gate_eligible,
        "start_method": start_method,
        "single_worker_rps": round(single_rps, 3),
        "pool_rps": round(pool_rps, 3),
        "pool_scaling_gain": round(gain, 3),
        "bit_identical_vs_single_worker": bool(bit_identical),
        "leaked_segments": leaked,
    }


def test_serving_load_and_failure_semantics():
    handle = build_server()
    try:
        sequential_rps, bit_identical = run_serial_phase(handle)
        assert bit_identical, "serving path changed the logits bit pattern"
        concurrent_rps = run_concurrent_phase(handle)
        snapshot = handle.request("GET", "/metrics")[1]
        overload = run_overload_phase(handle)
        breaker = run_hung_worker_phase(handle)
        degraded_ok = run_degraded_phase(handle)
        final_metrics = handle.request("GET", "/metrics")[1]
    except BaseException:
        BenchStall.stall_seconds = 0.0
        handle.stop()
        raise
    drain = run_drain_phase(handle)
    pool = run_pool_phase()

    gain = concurrent_rps / sequential_rps
    record = {
        "benchmark": "serving_load",
        "scenario": {
            "model": "demo",
            "input_shape": list(SHAPE),
            "timesteps": TIMESTEPS,
            "engine": "auto",
            "max_batch": 8,
            "serial_requests": SERIAL_REQUESTS,
            "concurrency": CONCURRENCY,
            "concurrent_requests": CONCURRENCY * REQUESTS_PER_CLIENT,
        },
        "throughput": {
            "sequential_rps": round(sequential_rps, 3),
            "concurrent_rps": round(concurrent_rps, 3),
            "batching_throughput_gain": round(gain, 3),
        },
        "latency_ms": {
            "p50": snapshot["latency_ms"]["p50"],
            "p99": snapshot["latency_ms"]["p99"],
        },
        "robustness": {
            "overload": overload,
            "breaker": breaker,
            "bit_identical_serial_responses": bool(bit_identical),
            "degraded_prefix_consistent": bool(degraded_ok),
            "drain": drain,
        },
        "pool": pool,
        "counters": final_metrics["counters"],
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    assert_serving_schema(record)
    atomic_write_json(BENCH_PATH, record, fsync=True)
    print(
        f"\nserving: serial {sequential_rps:.1f} req/s, concurrent "
        f"{concurrent_rps:.1f} req/s (gain {gain:.2f}x), p50 "
        f"{record['latency_ms']['p50']:.1f}ms p99 "
        f"{record['latency_ms']['p99']:.1f}ms, breaker trips "
        f"{breaker['trips']}, pool x{POOL_REPLICAS} "
        f"{pool['pool_scaling_gain']:.2f}x on {pool['cores']} core(s) "
        f"({'gated' if pool['gate_eligible'] else 'recorded'}) "
        f"-> {BENCH_PATH}"
    )


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-v", "-s"]))
