"""Ablation: direct surrogate-gradient training vs ANN-to-SNN conversion.

The paper's introduction motivates conversion by noting that directly
trained / converted SNNs in the prior art "require hundreds of time
steps to match the accuracy of ANNs", while the proposed pipeline needs
< 8.  This ablation trains a small SNN directly with surrogate
gradients (BPTT) and runs the conversion pipeline on a matched budget,
comparing accuracy at the paper's 8-timestep operating point.
"""

from repro.data import SyntheticCIFAR
from repro.pipeline import TrainConfig, run_conversion_pipeline
from repro.snn import SurrogateSNN, evaluate_surrogate_snn, train_surrogate_snn


def test_ablation_surrogate_vs_conversion(benchmark):
    ds = SyntheticCIFAR(
        num_train=600, num_test=200, noise=1.0, class_overlap=0.55, seed=10
    )

    # Conversion pipeline (the paper's approach).
    conversion = run_conversion_pipeline(
        "vgg11",
        ds,
        width=0.125,
        levels=2,
        timesteps=8,
        max_timesteps=8,
        ann_config=TrainConfig(epochs=3),
        finetune_config=TrainConfig(epochs=2, lr=5e-4),
    )

    # Direct surrogate-gradient training (the contrast baseline), on a
    # comparable wall-clock budget (BPTT over T makes epochs ~T x
    # costlier, hence the smaller model and epoch count).
    surrogate = SurrogateSNN(num_classes=10, channels=(16, 32), seed=0)
    benchmark.pedantic(
        lambda: train_surrogate_snn(
            surrogate, ds.train_x, ds.train_y, epochs=3, timesteps=4, lr=2e-3
        ),
        rounds=1,
        iterations=1,
    )
    surrogate_acc = {
        t: evaluate_surrogate_snn(surrogate, ds.test_x, ds.test_y, timesteps=t)
        for t in (4, 8)
    }

    print("\n--- Ablation: conversion vs direct surrogate training (T=8) ---")
    print(f"conversion pipeline: ANN={conversion.ann_accuracy:.4f} "
          f"-> SNN(T=8)={conversion.snn_accuracy:.4f}")
    print(f"surrogate training:  SNN(T=4)={surrogate_acc[4]:.4f} "
          f"SNN(T=8)={surrogate_acc[8]:.4f}")

    # Both must learn; conversion should at least match direct training
    # at the low-latency operating point (the paper's premise).
    assert surrogate_acc[8] > 0.2, "surrogate baseline failed to learn at all"
    assert conversion.snn_accuracy >= surrogate_acc[8] - 0.05
