"""Snapshot a ``BENCH_*.json`` artifact into ``benchmarks/history/``.

Usage::

    python benchmarks/record_history.py [label] [bench_path]

History records are the *committed* baselines the perf trend gate
(``compare_bench.py``) measures new runs against, so taking one is a
deliberate step — typically once per PR after the benchmark has run —
never a side effect of the benchmark itself (the gate picks the
lexically newest record; auto-snapshotting every run would make it
compare each record against itself).

The snapshot is validated against the schema first and written
atomically and durably (temp file + fsync + rename), named
``<date>-<label>-<kind>.json`` — ``engines`` for the wall-clock
artifact, ``serving`` for the serving-load one — so records of each
kind sort chronologically and the gate can glob per kind.
"""

from __future__ import annotations

import datetime
import json
import sys
from pathlib import Path

from bench_schema import assert_bench_schema

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.utils.io import atomic_write_json  # noqa: E402

#: record["benchmark"] -> history filename suffix
KIND_SUFFIXES = {"engines_wall_clock": "engines", "serving_load": "serving"}


def record(label: str = "manual", bench_path: Path | None = None) -> Path:
    root = Path(__file__).resolve().parent.parent
    bench_path = bench_path or root / "BENCH_engines.json"
    payload = json.loads(bench_path.read_text())
    assert_bench_schema(payload)
    suffix = KIND_SUFFIXES[payload["benchmark"]]
    history = Path(__file__).resolve().parent / "history"
    history.mkdir(parents=True, exist_ok=True)
    stamp = datetime.date.today().isoformat()
    out = history / f"{stamp}-{label}-{suffix}.json"
    atomic_write_json(out, payload, fsync=True)
    return out


def main(argv: list) -> int:
    if len(argv) > 2:
        print("usage: record_history.py [label] [bench_path]", file=sys.stderr)
        return 2
    label = argv[0] if argv else "manual"
    bench = Path(argv[1]) if len(argv) > 1 else None
    try:
        out = record(label, bench)
    except FileNotFoundError as error:
        print(f"no benchmark record to snapshot: {error}", file=sys.stderr)
        return 1
    except (json.JSONDecodeError, AssertionError) as error:
        print(f"refusing to snapshot an invalid record: {error}", file=sys.stderr)
        return 1
    print(f"recorded {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
