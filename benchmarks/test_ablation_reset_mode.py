"""Ablation: reset-by-subtraction vs reset-to-zero.

The paper (§II) uses reset-by-subtraction "as this approach has
demonstrated better classification accuracy".  This ablation runs the
same fine-tuned network through conversion with both reset modes and
compares accuracy over timesteps.
"""

from repro.data import SyntheticCIFAR
from repro.pipeline import TrainConfig, build_quantized_twin, run_conversion_pipeline
from repro.snn import SpikingNetwork, convert_to_snn
from repro.snn.neurons import ResetMode


def _accuracy_with_reset(quant_model, ds, reset):
    twin = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2, seed=0)
    twin.load_state_dict(quant_model.state_dict())
    convert_to_snn(twin, reset=reset)
    snn = SpikingNetwork(twin, timesteps=8)
    return snn.accuracy_per_step(ds.test_x, ds.test_y, timesteps=12)


def test_ablation_reset_by_subtraction_beats_reset_to_zero(benchmark):
    ds = SyntheticCIFAR(
        num_train=800, num_test=300, noise=1.0, class_overlap=0.55, seed=5
    )
    # The properly-ordered pipeline (train -> calibrate -> fine-tune)
    # produces the shared quantised model both reset modes convert from.
    result = run_conversion_pipeline(
        "vgg11",
        ds,
        width=0.125,
        levels=2,
        timesteps=8,
        max_timesteps=8,
        ann_config=TrainConfig(epochs=4),
        finetune_config=TrainConfig(epochs=3, lr=5e-4),
    )
    base = result.quant_model

    subtract = benchmark.pedantic(
        lambda: _accuracy_with_reset(base, ds, ResetMode.SUBTRACT),
        rounds=1,
        iterations=1,
    )
    zero = _accuracy_with_reset(base, ds, ResetMode.ZERO)

    print("\n--- Ablation: reset mode (VGG-11, accuracy vs T) ---")
    print(f"quantised ANN accuracy: {result.quant_accuracy:.4f}")
    print("T:         " + " ".join(f"{t:5d}" for t in range(1, 13)))
    print("subtract:  " + " ".join(f"{a:.3f}" for a in subtract))
    print("zero:      " + " ".join(f"{a:.3f}" for a in zero))

    # Paper's claim: subtraction converts better.  Compare the settled
    # region (T >= 6) to avoid early-step noise.
    settled_subtract = sum(subtract[5:]) / len(subtract[5:])
    settled_zero = sum(zero[5:]) / len(zero[5:])
    assert settled_subtract >= settled_zero - 0.02
    assert max(subtract) >= max(zero) - 0.01
    # Both must actually work (a silent network would sit at chance).
    assert settled_subtract > 0.5
