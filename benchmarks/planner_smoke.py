#!/usr/bin/env python
"""CI smoke for Planner v2: predict-mode serving plus a mid-run re-plan.

Usage::

    PYTHONPATH=src python benchmarks/planner_smoke.py

One scenario, exit 0 only if every check holds:

1. **Organic calibration** — an auto engine races a small two-conv SNN
   across several timestep keys; the cost model must become
   ``plan_ready`` purely from those measured races (no synthetic
   observations).
2. **Predict-mode serving** — the engine is handed to a live server;
   the serve-shaped key is cold, so its first plan must come from the
   cost model (``plan_source == "cost-model"``) and ``/metrics`` must
   expose the planner section with fit residuals.
3. **Mid-run re-plan under drift** — the client's traffic shifts
   amplitude, moving downstream spike densities far past the drift
   threshold while the plan key stays the same.  The worker must
   re-plan *inside* a run (``replans_seen`` in ``/metrics``), keep
   every response a 200 (no 5xx, no hang), keep ``/readyz`` green
   throughout, and the re-planned run's logits must be bit-identical
   to a frozen-plan control run — the re-plan is allowed to change
   wall clock, never arithmetic.

Standalone on purpose (plain script, not pytest): CI runs it as its
own job so a planner regression is visible as a named failing step.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro import nn  # noqa: E402
from repro.serve import ServeConfig, ServerHandle  # noqa: E402
from repro.snn import SpikingNetwork, convert_to_snn  # noqa: E402
from repro.snn.engines import AutoEngine, ExecutionPlan  # noqa: E402
from repro.tensor import Tensor, no_grad  # noqa: E402

SHAPE = (2, 12, 12)
SERVE_TIMESTEPS = 6
DRIFT_THRESHOLD = 0.3
DRIFT_SCALE = 2.5  # amplitude swing that moves spike densities ~33%


def check(condition, message):
    if not condition:
        print(f"SMOKE FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"  ok: {message}")


def build_model(shape=SHAPE, classes=4, seed=0):
    """A two-conv SNN whose second conv is spike-fed (raceable).

    The demo network's only conv sees the constant input frame, which
    never races the sparse kernels — so the cost model would starve.
    Conv2 here is fed by conv1's spike train, making every calibration
    contribute real (backend, ops, ms) observations.
    """
    c, h, w = shape
    rng = np.random.default_rng(seed)
    model = nn.Sequential(
        nn.Conv2d(c, 8, 3, padding=1, rng=np.random.default_rng(seed + 1)),
        nn.BatchNorm2d(8),
        nn.QuantReLU(levels=4, init_step=1.0),
        nn.Conv2d(8, 8, 3, padding=1, rng=np.random.default_rng(seed + 2)),
        nn.BatchNorm2d(8),
        nn.QuantReLU(levels=4, init_step=1.0),
        nn.AvgPool2d(2),
        nn.Flatten(),
        nn.Linear(8 * (h // 2) * (w // 2), classes, rng=np.random.default_rng(seed + 3)),
    )
    model.train()
    with no_grad():
        for _ in range(4):
            model(Tensor(rng.normal(size=(8,) + shape).astype(np.float32)))
    model.eval()
    return convert_to_snn(model)


def main():
    print("phase 1: organic cost-model calibration from measured races")
    model = build_model()
    engine = AutoEngine(drift_threshold=DRIFT_THRESHOLD)
    rng = np.random.default_rng(5)
    warm = rng.normal(size=(4,) + SHAPE).astype(np.float32)
    for t in range(2, 8):
        SpikingNetwork(model, timesteps=t, engine=engine).forward(warm)
    check(
        engine.cost_model.plan_ready(),
        f"cost model fit from races alone ({len(engine.cost_model)} observations)",
    )
    raced_calibrations = engine.calibration_runs

    sample = rng.normal(size=SHAPE).astype(np.float32)
    config = ServeConfig(
        port=0,
        engine=engine,  # pre-calibrated instance rides into the worker
        timesteps=SERVE_TIMESTEPS,
        max_batch_size=1,  # serial clients -> batch-1 runs, one plan key
        default_deadline_ms=60_000.0,
    )
    statuses = []
    with ServerHandle(model, SHAPE, config) as handle:
        print("phase 2: predict-mode serving on a cold key")
        for _ in range(3):
            status, body = handle.infer(sample, timeout=60.0)
            statuses.append(status)
        check(statuses == [200, 200, 200], "baseline requests all 200")
        check(
            engine.calibration_runs == raced_calibrations + 1,
            "cold serve key calibrated exactly once (then cached)",
        )
        serve_batch = sample[np.newaxis].astype(np.float32)
        plan = engine.plan_for(serve_batch.shape, SERVE_TIMESTEPS)
        check(plan is not None, "serve-shaped plan cached")
        check(
            plan.source == "cost-model",
            f"cold key planned by prediction, not racing (got {plan.source!r})",
        )
        frozen_json = plan.to_json()

        metrics = handle.request("GET", "/metrics")[1]
        planner = metrics.get("planner")
        check(planner is not None, "/metrics exposes the planner section")
        check(planner["cost_model"]["plan_ready"] is True, "metrics report model ready")
        check(
            any(p["source"] == "cost-model" for p in planner["plans"]),
            "metrics show the predicted plan",
        )
        check(metrics["worker"]["replans_seen"] == 0, "no re-plan before drift")
        check(handle.request("GET", "/readyz")[0] == 200, "/readyz green pre-drift")

        print("phase 3: density drift -> mid-run re-plan, bit-identical")
        drifted = (sample * DRIFT_SCALE).astype(np.float32)
        status, body = handle.infer(drifted, timeout=60.0)
        statuses.append(status)
        check(status == 200, "drifted request served 200")
        served_logits = np.asarray(body["logits"], dtype=np.float64)

        check(handle.request("GET", "/readyz")[0] == 200, "/readyz green across the re-plan")
        metrics = handle.request("GET", "/metrics")[1]
        check(
            metrics["worker"]["replans_seen"] >= 1,
            f"mid-run re-plan fired (replans_seen={metrics['worker']['replans_seen']})",
        )
        check(
            any(p["source"] == "re-planned" for p in metrics["planner"]["plans"]),
            "re-planned plan visible in /metrics",
        )

        for _ in range(3):
            status, _ = handle.infer(drifted, timeout=60.0)
            statuses.append(status)
        check(
            all(s == 200 for s in statuses),
            f"no 5xx across the whole stream ({statuses})",
        )
        check(handle.request("GET", "/readyz")[0] == 200, "/readyz green post-drift")

    # Control: the same drifted batch under the frozen pre-drift plan,
    # re-planning disabled.  The swap guarantee is that a mid-run
    # re-plan only moves between bitwise-identical kernels, so the
    # served logits must match this run exactly.
    control_engine = AutoEngine(
        drift_threshold=DRIFT_THRESHOLD, midrun_replan=False
    )
    control_engine.bind(model)
    drift_batch = (sample * DRIFT_SCALE)[np.newaxis].astype(np.float32)
    key = AutoEngine._plan_key(drift_batch, SERVE_TIMESTEPS)
    control_engine._plans.put(key, ExecutionPlan.from_json(frozen_json))
    control = SpikingNetwork(
        model, timesteps=SERVE_TIMESTEPS, engine=control_engine
    ).forward(drift_batch)
    check(
        np.array_equal(served_logits, np.asarray(control[0], dtype=np.float64)),
        "re-planned logits bit-identical to frozen-plan control",
    )

    print("planner smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
