#!/usr/bin/env python
"""Gate a freshly emitted ``BENCH_*.json`` against committed history.

Usage::

    python benchmarks/compare_bench.py BENCH_engines.json [history_dir]
    python benchmarks/compare_bench.py BENCH_serving.json [history_dir]

Each PR that moves performance commits a dated record under
``benchmarks/history/``; this script compares the fresh artifact
against the newest record *of the same kind* (``<date>-<label>-
engines.json`` vs ``...-serving.json``) and exits nonzero when a
tracked metric regresses beyond the noise band, so a perf regression
fails CI instead of silently eroding the story.

For *wall clock* only ratio metrics are compared — speedups,
auto-vs-best-fixed, the serving layer's batching throughput gain —
never absolute milliseconds or req/s: ratios of measurements taken on
the same box in the same run are stable across machines whose absolute
speeds differ.  Absolute ``synaptic_ops`` counts ARE gated, though:
op billing is deterministic (same model, same seeds), so a count that
moves means either the billing accounting or the benchmark scenario
changed — both of which must be deliberate and re-snapshotted, never
silent.  The same applies to the record's shape: when a perf PR grows
``BENCH_engines.json`` (new sections, new scenarios) without
committing a fresh dated record under ``benchmarks/history/``, the
gate fails with a reminder to run ``record_history.py`` — history that
no longer matches what the benchmark emits gates nothing.  Pure stdlib
on purpose: it runs before/without the test environment.
"""

import json
import sys
from pathlib import Path

# Shared-CI-box timing jitter: a tracked ratio may wobble by this
# factor run to run without any code change; beyond it is a regression.
NOISE_BAND = 1.30

# Hard floors/ceilings that hold regardless of what history says —
# the acceptance criteria the benchmarks themselves assert.
MIN_BATCHED_SPEEDUP = 3.0
MIN_DVS_EVENT_SPEEDUP = 1.0
MAX_AUTO_RATIO = 1.1
# Coalescing must clearly beat serial dispatch for the batching layer
# to justify existing; measured ~5x on a single-core box, so 1.5 is a
# conservative floor well outside timing noise.
MIN_BATCHING_GAIN = 1.5
# Planner v2 gates: a cost-model-predicted cold start must at least
# halve calibration wall clock, and the predicted plan must execute
# within the same bound a raced plan is held to.
MIN_CALIBRATION_SPEEDUP = 2.0
MAX_MODEL_PLAN_RATIO = 1.1

# Absolute synaptic_ops drift allowed vs history.  Billing is
# deterministic, but summation-order differences between BLAS builds
# can flip a membrane sitting within an ulp of threshold and ripple a
# handful of spikes downstream.
OPS_TOLERANCE = 0.02

SNAPSHOT_REMINDER = (
    "if this change is intentional, snapshot the fresh record with "
    "`python benchmarks/record_history.py <label>` and commit the dated "
    "file under benchmarks/history/ in the same PR"
)


def _engines_metrics(record):
    """The tracked (name, value, higher_is_better) triples."""
    metrics = [
        ("batched_speedup_vs_dense", record["batched_speedup_vs_dense"], True),
        ("auto_vs_best_fixed", record["auto_vs_best_fixed"], False),
        (
            "dvs.event_batched_speedup_vs_batched",
            record["dvs"]["event_batched_speedup_vs_batched"],
            True,
        ),
        ("dvs.auto_vs_best_fixed", record["dvs"]["auto_vs_best_fixed"], False),
    ]
    planner = record.get("planner")
    if planner is not None:  # records predating Planner v2 lack the section
        metrics.extend(
            [
                (
                    "planner.calibration_speedup",
                    planner["calibration_speedup"],
                    True,
                ),
                (
                    "planner.model_plan_vs_best_fixed",
                    planner["model_plan_vs_best_fixed"],
                    False,
                ),
            ]
        )
    return metrics


def _engines_floors(record):
    """(name, value, bound, ok) rows for the history-free hard bounds."""
    rows = []
    for name, value, higher in _engines_metrics(record):
        if name == "batched_speedup_vs_dense":
            rows.append((name, value, MIN_BATCHED_SPEEDUP, value >= MIN_BATCHED_SPEEDUP))
        elif name == "dvs.event_batched_speedup_vs_batched":
            rows.append((name, value, MIN_DVS_EVENT_SPEEDUP, value > MIN_DVS_EVENT_SPEEDUP))
        elif name == "planner.calibration_speedup":
            rows.append(
                (name, value, MIN_CALIBRATION_SPEEDUP, value >= MIN_CALIBRATION_SPEEDUP)
            )
        elif name == "planner.model_plan_vs_best_fixed":
            rows.append(
                (name, value, MAX_MODEL_PLAN_RATIO, value <= MAX_MODEL_PLAN_RATIO)
            )
        else:
            rows.append((name, value, MAX_AUTO_RATIO, value <= MAX_AUTO_RATIO))
    return rows


def _engines_ops(record):
    """Absolute synaptic-op counts for the *fixed* engines.

    Fixed backends bill deterministically (same model, same seeds), so
    these are gated near-exactly.  The auto engine is excluded: its ops
    follow whichever plan the timing races picked on this box, which is
    legitimately machine-dependent.
    """
    rows = []
    for name, entry in sorted(record["engines"].items()):
        if name == "auto":
            continue
        rows.append((f"engines.{name}.synaptic_ops", int(entry["synaptic_ops"])))
    for name, entry in sorted(record["dvs"]["engines"].items()):
        if name == "auto":
            continue
        rows.append(
            (f"dvs.engines.{name}.synaptic_ops", int(entry["synaptic_ops"]))
        )
    return rows


def _serving_ops(record):
    return []  # the serving record carries no op counts


def _serving_metrics(record):
    gain = record["throughput"]["batching_throughput_gain"]
    return [("throughput.batching_throughput_gain", gain, True)]


def _serving_floors(record):
    gain = record["throughput"]["batching_throughput_gain"]
    return [
        (
            "throughput.batching_throughput_gain",
            gain,
            MIN_BATCHING_GAIN,
            gain >= MIN_BATCHING_GAIN,
        )
    ]


#: record["benchmark"] -> (metrics fn, floors fn, ops fn, history suffix)
KINDS = {
    "engines_wall_clock": (_engines_metrics, _engines_floors, _engines_ops, "engines"),
    "serving_load": (_serving_metrics, _serving_floors, _serving_ops, "serving"),
}


def latest_history(history_dir, suffix):
    records = sorted(history_dir.glob(f"*-{suffix}.json"))
    return records[-1] if records else None


def compare(current, baseline, metrics_fn):
    """Return a list of failure strings comparing current vs baseline."""
    failures = []
    base = {name: value for name, value, _ in metrics_fn(baseline)}
    for name, value, higher in metrics_fn(current):
        reference = base.get(name)
        if reference is None:
            continue
        if higher:
            bound = reference / NOISE_BAND
            ok = value >= bound
            direction = ">="
        else:
            bound = reference * NOISE_BAND
            ok = value <= bound
            direction = "<="
        status = "ok" if ok else "REGRESSION"
        print(
            f"  {name}: {value:.3f} (history {reference:.3f}, "
            f"need {direction} {bound:.3f}) {status}"
        )
        if not ok:
            failures.append(
                f"{name} regressed: {value:.3f} vs history {reference:.3f} "
                f"(noise band {NOISE_BAND}x)"
            )
    return failures


def compare_ops(current, baseline, ops_fn):
    """Gate absolute op counts: deterministic, so near-exact equality."""
    failures = []
    base = dict(ops_fn(baseline))
    for name, value in ops_fn(current):
        reference = base.get(name)
        if reference is None:
            continue
        if reference == 0:
            ok = value == 0
        else:
            ok = abs(value - reference) <= OPS_TOLERANCE * reference
        status = "ok" if ok else "DRIFT"
        print(
            f"  {name}: {value} (history {reference}, "
            f"tolerance {OPS_TOLERANCE:.0%}) {status}"
        )
        if not ok:
            failures.append(
                f"{name} moved: {value} vs history {reference} (beyond "
                f"{OPS_TOLERANCE:.0%}) — billing or scenario changed; "
                f"{SNAPSHOT_REMINDER}"
            )
    return failures


def stale_history(current, baseline, metrics_fn, ops_fn):
    """A failure string when the fresh record tracks things history lacks.

    A perf PR that grows the benchmark (new sections like ``planner``,
    new scenarios, new engines) makes the committed history stale: the
    new metrics would silently escape the regression gate on every
    future run.  Detect it from the tracked names themselves — anything
    the fresh record gates that the newest history record does not know
    about means ``record_history.py`` was not re-run.
    """
    current_names = {name for name, *_ in metrics_fn(current)}
    current_names.update(name for name, _ in ops_fn(current))
    base_names = {name for name, *_ in metrics_fn(baseline)}
    base_names.update(name for name, _ in ops_fn(baseline))
    new = sorted(current_names - base_names)
    if new:
        return (
            f"history record predates tracked metrics {new}; "
            f"{SNAPSHOT_REMINDER}"
        )
    return None


def main(argv):
    if len(argv) not in (2, 3):
        print(
            "usage: compare_bench.py <BENCH_*.json> [history_dir]",
            file=sys.stderr,
        )
        return 2
    current_path = Path(argv[1])
    history_dir = (
        Path(argv[2])
        if len(argv) == 3
        else Path(__file__).resolve().parent / "history"
    )
    if not current_path.exists():
        print(f"compare failed: {current_path} does not exist", file=sys.stderr)
        return 1
    current = json.loads(current_path.read_text())
    kind = current.get("benchmark")
    if kind not in KINDS:
        print(
            f"compare failed: unknown benchmark kind {kind!r} in "
            f"{current_path}",
            file=sys.stderr,
        )
        return 1
    metrics_fn, floors_fn, ops_fn, suffix = KINDS[kind]

    failures = []
    print(f"hard bounds on {current_path}:")
    for name, value, bound, ok in floors_fn(current):
        print(f"  {name}: {value:.3f} (bound {bound}) {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(f"{name}={value:.3f} violates hard bound {bound}")

    baseline_path = latest_history(history_dir, suffix)
    if baseline_path is None:
        print(f"no {suffix} history in {history_dir}; hard bounds only")
    else:
        baseline = json.loads(baseline_path.read_text())
        print(f"vs {baseline_path.name}:")
        stale = stale_history(current, baseline, metrics_fn, ops_fn)
        if stale is not None:
            print(f"  STALE HISTORY: {stale}")
            failures.append(stale)
        failures.extend(compare(current, baseline, metrics_fn))
        failures.extend(compare_ops(current, baseline, ops_fn))

    if failures:
        for failure in failures:
            print(f"perf gate: {failure}", file=sys.stderr)
        return 1
    print("perf gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
