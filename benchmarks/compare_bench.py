#!/usr/bin/env python
"""Gate the current ``BENCH_engines.json`` against committed history.

Usage::

    python benchmarks/compare_bench.py BENCH_engines.json [history_dir]

Each PR that moves engine performance commits a dated record under
``benchmarks/history/``; this script compares the freshly emitted
artifact against the newest such record and exits nonzero when a
tracked metric regresses beyond the noise band, so a perf regression
fails CI instead of silently eroding the wall-clock story.

Only *ratio* metrics are compared — speedups and auto-vs-best-fixed —
never absolute milliseconds: the interleaved best-of-k measurement
makes ratios stable across machines whose absolute speeds differ.
Pure stdlib on purpose: it runs before/without the test environment.
"""

import json
import sys
from pathlib import Path

# Shared-CI-box timing jitter: a tracked ratio may wobble by this
# factor run to run without any code change; beyond it is a regression.
NOISE_BAND = 1.30

# Hard floors/ceilings that hold regardless of what history says —
# the acceptance criteria the benchmark itself asserts.
MIN_BATCHED_SPEEDUP = 3.0
MIN_DVS_EVENT_SPEEDUP = 1.0
MAX_AUTO_RATIO = 1.1


def _metrics(record):
    """The tracked (name, value, higher_is_better) triples."""
    return [
        ("batched_speedup_vs_dense", record["batched_speedup_vs_dense"], True),
        ("auto_vs_best_fixed", record["auto_vs_best_fixed"], False),
        (
            "dvs.event_batched_speedup_vs_batched",
            record["dvs"]["event_batched_speedup_vs_batched"],
            True,
        ),
        ("dvs.auto_vs_best_fixed", record["dvs"]["auto_vs_best_fixed"], False),
    ]


def _floors(record):
    """(name, value, bound, ok) rows for the history-free hard bounds."""
    rows = []
    for name, value, higher in _metrics(record):
        if name == "batched_speedup_vs_dense":
            rows.append((name, value, MIN_BATCHED_SPEEDUP, value >= MIN_BATCHED_SPEEDUP))
        elif name == "dvs.event_batched_speedup_vs_batched":
            rows.append((name, value, MIN_DVS_EVENT_SPEEDUP, value > MIN_DVS_EVENT_SPEEDUP))
        else:
            rows.append((name, value, MAX_AUTO_RATIO, value <= MAX_AUTO_RATIO))
    return rows


def latest_history(history_dir):
    records = sorted(history_dir.glob("*.json"))
    return records[-1] if records else None


def compare(current, baseline):
    """Return a list of failure strings comparing current vs baseline."""
    failures = []
    base = {name: value for name, value, _ in _metrics(baseline)}
    for name, value, higher in _metrics(current):
        reference = base.get(name)
        if reference is None:
            continue
        if higher:
            bound = reference / NOISE_BAND
            ok = value >= bound
            direction = ">="
        else:
            bound = reference * NOISE_BAND
            ok = value <= bound
            direction = "<="
        status = "ok" if ok else "REGRESSION"
        print(
            f"  {name}: {value:.3f} (history {reference:.3f}, "
            f"need {direction} {bound:.3f}) {status}"
        )
        if not ok:
            failures.append(
                f"{name} regressed: {value:.3f} vs history {reference:.3f} "
                f"(noise band {NOISE_BAND}x)"
            )
    return failures


def main(argv):
    if len(argv) not in (2, 3):
        print(
            "usage: compare_bench.py <BENCH_engines.json> [history_dir]",
            file=sys.stderr,
        )
        return 2
    current_path = Path(argv[1])
    history_dir = (
        Path(argv[2])
        if len(argv) == 3
        else Path(__file__).resolve().parent / "history"
    )
    if not current_path.exists():
        print(f"compare failed: {current_path} does not exist", file=sys.stderr)
        return 1
    current = json.loads(current_path.read_text())

    failures = []
    print(f"hard bounds on {current_path}:")
    for name, value, bound, ok in _floors(current):
        print(f"  {name}: {value:.3f} (bound {bound}) {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(f"{name}={value:.3f} violates hard bound {bound}")

    baseline_path = latest_history(history_dir)
    if baseline_path is None:
        print(f"no history in {history_dir}; hard bounds only")
    else:
        baseline = json.loads(baseline_path.read_text())
        print(f"vs {baseline_path.name}:")
        failures.extend(compare(current, baseline))

    if failures:
        for failure in failures:
            print(f"perf gate: {failure}", file=sys.stderr)
        return 1
    print("perf gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
